//! Figure 4 — the Evening News as a document and as a CMIF template.
//!
//! Regenerates both halves of the figure: the "TV image" side as a
//! storyboard (what each channel shows, where, at a sampled instant) and the
//! "template" side as the structure views. Measures building the document,
//! scheduling it, and rendering the views.

use std::time::Duration;

use cmif::format::conventional_view;
use cmif::news::evening_news;
use cmif::pipeline::constraint::DeviceProfile;
use cmif::pipeline::pipeline::PipelineBuilder;
use cmif::pipeline::presentation::map_presentation;
use cmif::pipeline::viewer::{render_storyboard, storyboard, table_of_contents};
use cmif::scheduler::{ConstraintGraph, ScheduleOptions};
use cmif_bench::{banner, news_fixture};
use criterion::{criterion_group, criterion_main, Criterion};

fn bench_evening_news(c: &mut Criterion) {
    let (doc, store) = news_fixture();
    let run = PipelineBuilder::new(DeviceProfile::workstation())
        .run(&doc, &store)
        .unwrap();
    let mid_frames: Vec<_> = run
        .storyboard
        .iter()
        .filter(|f| f.at.as_millis() == 16_000)
        .cloned()
        .collect();
    banner(
        "Figure 4a: the Evening News screen at t = 16 s",
        &render_storyboard(&mid_frames),
    );
    banner(
        "Figure 4b: the Evening News as a CMIF template",
        &conventional_view(&doc).unwrap(),
    );

    let mut group = c.benchmark_group("fig04_evening_news");
    group.bench_function("build_document", |b| b.iter(|| evening_news().unwrap()));
    group.bench_function("schedule", |b| {
        b.iter(|| {
            ConstraintGraph::derive(&doc, &doc.catalog, &ScheduleOptions::default())
                .unwrap()
                .solve(&doc, &doc.catalog)
                .unwrap()
        })
    });
    let solved = ConstraintGraph::derive(&doc, &doc.catalog, &ScheduleOptions::default())
        .unwrap()
        .solve(&doc, &doc.catalog)
        .unwrap();
    let presentation = map_presentation(&doc).unwrap();
    group.bench_function("render_views", |b| {
        b.iter(|| {
            let toc = table_of_contents(&doc, &solved.schedule).unwrap();
            let frames =
                storyboard(&doc, &solved.schedule, &presentation, None, 4_000, &store).unwrap();
            (toc, frames)
        })
    });
    group.finish();
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_evening_news
}
criterion_main!(benches);
