//! Extension — the session-based scheduling engine under concurrent load.
//!
//! The paper's Figure 1 ends in a player for *one* document; the ROADMAP
//! north-star is a server multiplexing many. This bench regenerates the
//! engine scaling artifact (documents per second as the worker pool grows)
//! and measures batch throughput at 1, 8 and 64 concurrent documents.
//!
//! Expected shape: per-document work is independent (derive → relax → play
//! a session) and workers never hold the queue lock while playing, so an
//! 8-worker engine clears a 64-document backlog several times faster than a
//! single worker; the acceptance bar for this PR is >2x docs/sec at 8
//! workers vs 1. That bar only makes sense on a multi-core host — the
//! banner prints the detected parallelism so a ~1.0x column on a single-CPU
//! container reads as the hardware limit it is, not as a queue bottleneck.
//!
//! The `bounded_backlog` targets price the *admission* path instead: a
//! saturated producer pushing the same 64 documents through
//! `max_backlog` 1/8/64, so the blocking `submit` (capacity-condvar
//! park/unpark per document) is measured and gated in CI alongside the
//! unbounded throughput targets.

use std::sync::Arc;
use std::time::{Duration, Instant};

use cmif::core::tree::Document;
use cmif::scheduler::{Engine, EngineConfig, JitterModel};
use cmif::synthetic::SyntheticNews;
use cmif_bench::banner;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

/// A small mixed batch: story counts 1..=3, one seeded jitter model each.
/// Documents are built once and shared as `Arc`s — the engine's submission
/// path clones pointers, never trees.
fn batch(size: usize) -> Vec<(Arc<Document>, JitterModel)> {
    (0..size)
        .map(|i| {
            let doc = SyntheticNews::with_stories(1 + i % 3)
                .build()
                .expect("synthetic news builds");
            (Arc::new(doc), JitterModel::uniform(120, i as u64))
        })
        .collect()
}

/// Plays the whole batch through an engine and returns the wall time.
/// `submit` blocks when the engine's queue is bounded and full, so on a
/// bounded engine this measures the producer-throttled admission path.
fn play_batch(engine: &Engine, docs: &[(Arc<Document>, JitterModel)]) -> Duration {
    let started = Instant::now();
    for (doc, jitter) in docs {
        engine
            .submit(Arc::clone(doc), jitter.clone())
            .expect("engine is open");
    }
    let outcomes = engine.drain();
    assert_eq!(outcomes.len(), docs.len());
    assert!(outcomes.iter().all(|o| o.is_ok()));
    started.elapsed()
}

fn bench_engine(c: &mut Criterion) {
    // Regenerate the artifact: docs/sec for a 64-document backlog as the
    // worker pool grows.
    let docs = batch(64);
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let mut lines =
        format!("host parallelism: {cores} core(s)\nworkers   docs/sec   speedup vs 1 worker\n");
    let mut baseline = None;
    for workers in [1usize, 2, 4, 8] {
        let engine = Engine::new(EngineConfig {
            workers,
            ..EngineConfig::default()
        });
        // Warm one batch, then time the better of two runs (the queue is
        // steady-state either way; this damps scheduler noise).
        play_batch(&engine, &docs);
        let elapsed = play_batch(&engine, &docs).min(play_batch(&engine, &docs));
        let docs_per_sec = docs.len() as f64 / elapsed.as_secs_f64();
        let baseline_rate = *baseline.get_or_insert(docs_per_sec);
        lines.push_str(&format!(
            "{workers:<9} {docs_per_sec:<10.0} {:.2}x\n",
            docs_per_sec / baseline_rate
        ));
        engine.shutdown();
    }
    banner(
        "ext: engine throughput, 64 concurrent documents (docs/sec vs workers)",
        &lines,
    );

    let mut group = c.benchmark_group("ext_engine");
    for concurrency in [1usize, 8, 64] {
        let docs = batch(concurrency);
        let engine = Engine::new(EngineConfig {
            workers: 8,
            ..EngineConfig::default()
        });
        group.bench_with_input(
            BenchmarkId::new("play_documents", concurrency),
            &docs,
            |b, docs| {
                b.iter(|| play_batch(&engine, docs));
            },
        );
        engine.shutdown();
    }

    // Saturated producer: 64 documents forced through a *bounded* queue on
    // 2 workers. At backlog 1 the producer spends most of its time parked
    // on the capacity condvar — the target prices the blocking admission
    // path itself (park/unpark per document), which the unbounded targets
    // above never touch; at 64 the bound never binds and the number should
    // track `play_documents/64` modulo the worker count.
    let docs = batch(64);
    for backlog in [1usize, 8, 64] {
        let engine = Engine::new(EngineConfig {
            workers: 2,
            max_backlog: Some(backlog),
            ..EngineConfig::default()
        });
        group.bench_with_input(
            BenchmarkId::new("bounded_backlog", backlog),
            &docs,
            |b, docs| {
                b.iter(|| play_batch(&engine, docs));
            },
        );
        engine.shutdown();
    }
    group.finish();
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_engine
}
criterion_main!(benches);
