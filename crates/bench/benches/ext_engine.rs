//! Extension — the session-based scheduling engine under concurrent load.
//!
//! The paper's Figure 1 ends in a player for *one* document; the ROADMAP
//! north-star is a server multiplexing many. This bench regenerates the
//! engine scaling artifact (documents per second as the worker pool grows)
//! and measures batch throughput at 1, 8 and 64 concurrent documents.
//!
//! Expected shape: per-document work is independent (derive → relax → play
//! a session) and workers never hold the queue lock while playing, so an
//! 8-worker engine clears a 64-document backlog several times faster than a
//! single worker; the acceptance bar for this PR is >2x docs/sec at 8
//! workers vs 1. That bar only makes sense on a multi-core host — the
//! banner prints the detected parallelism so a ~1.0x column on a single-CPU
//! container reads as the hardware limit it is, not as a queue bottleneck.
//!
//! The `bounded_backlog` targets price the *admission* path instead: a
//! saturated producer pushing the same 64 documents through
//! `max_backlog` 1/8/64, so the blocking `submit` (capacity-condvar
//! park/unpark per document) is measured and gated in CI alongside the
//! unbounded throughput targets.
//!
//! The `tenants` targets price the multi-tenant plane: the same 256
//! documents spread round-robin over 1, 16 and 256 tenants, admitted with
//! `submit_batch` and dispatched by the weighted-fair stride scheduler.
//! The acceptance bar is *flatness*, not speed: per-submission admission
//! p99 at 256 tenants must stay within 2x of the single-tenant p99 (the
//! tenant plane is a HashMap lookup plus an O(log T) heap push — growing
//! the tenant table must not grow the admission constant). The banner
//! prints the measured p99s and the work-stealing split, and the whole
//! probe is written to `BENCH_ext_engine.json` at the repo root so the
//! perf trajectory is versioned next to the code instead of expiring with
//! CI artifacts.

use std::sync::Arc;
use std::time::{Duration, Instant};

use cmif::core::tree::Document;
use cmif::scheduler::{Engine, EngineConfig, JitterModel, Submission, TenantId};
use cmif::synthetic::SyntheticNews;
use cmif_bench::trajectory::{self, TrajectoryRun};
use cmif_bench::{banner, ratio};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

/// A small mixed batch: story counts 1..=3, one seeded jitter model each.
/// Documents are built once and shared as `Arc`s — the engine's submission
/// path clones pointers, never trees.
fn batch(size: usize) -> Vec<(Arc<Document>, JitterModel)> {
    (0..size)
        .map(|i| {
            let doc = SyntheticNews::with_stories(1 + i % 3)
                .build()
                .expect("synthetic news builds");
            (Arc::new(doc), JitterModel::uniform(120, i as u64))
        })
        .collect()
}

/// Plays the whole batch through an engine and returns the wall time.
/// `submit` blocks when the engine's queue is bounded and full, so on a
/// bounded engine this measures the producer-throttled admission path.
fn play_batch(engine: &Engine, docs: &[(Arc<Document>, JitterModel)]) -> Duration {
    let started = Instant::now();
    for (doc, jitter) in docs {
        engine
            .submit(Arc::clone(doc), jitter.clone())
            .expect("engine is open");
    }
    let outcomes = engine.drain();
    assert_eq!(outcomes.len(), docs.len());
    assert!(outcomes.iter().all(|o| o.is_ok()));
    started.elapsed()
}

/// One submission per document, tagged round-robin across `tenants` ids.
fn tagged(docs: &[(Arc<Document>, JitterModel)], tenants: usize) -> Vec<Submission> {
    docs.iter()
        .enumerate()
        .map(|(i, (doc, jitter))| {
            Submission::new(Arc::clone(doc), jitter.clone())
                .tenant(TenantId::new((i % tenants.max(1)) as u64))
        })
        .collect()
}

/// Admits the batch in one queue transaction and drains the engine.
fn play_batch_tagged(engine: &Engine, docs: &[(Arc<Document>, JitterModel)], tenants: usize) {
    engine
        .submit_batch(tagged(docs, tenants))
        .expect("engine is open and unquota'd");
    let outcomes = engine.drain();
    assert_eq!(outcomes.len(), docs.len());
    assert!(outcomes.iter().all(|o| o.is_ok()));
}

/// Result of one admission-latency probe at a fixed tenant count.
struct TenantProbe {
    tenants: usize,
    docs_per_sec: f64,
    p50_us: f64,
    p99_us: f64,
    max_us: f64,
    steal_ratio: f64,
}

/// Times every individual `admit` call at `tenants` distinct tenant ids and
/// reports the latency distribution plus the end-to-end rate. This is the
/// flatness probe: admission cost must not scale with the tenant table.
fn probe_admission(docs: &[(Arc<Document>, JitterModel)], tenants: usize) -> TenantProbe {
    let engine = Engine::new(EngineConfig {
        workers: 4,
        refill_batch: 4,
        ..EngineConfig::default()
    });
    // Warm the tenant table and the worker pool once.
    play_batch_tagged(&engine, docs, tenants);

    let submissions = tagged(docs, tenants);
    let started = Instant::now();
    let mut latencies: Vec<Duration> = submissions
        .into_iter()
        .map(|submission| {
            let admit_started = Instant::now();
            engine.admit(submission).expect("engine is open");
            admit_started.elapsed()
        })
        .collect();
    let outcomes = engine.drain();
    let elapsed = started.elapsed();
    assert_eq!(outcomes.len(), docs.len());

    latencies.sort_unstable();
    let micros = |q: f64| -> f64 {
        let index = ((latencies.len() as f64 * q).ceil() as usize).clamp(1, latencies.len()) - 1;
        latencies[index].as_secs_f64() * 1e6
    };
    let stats = engine.queue_stats();
    engine.shutdown();
    TenantProbe {
        tenants,
        docs_per_sec: docs.len() as f64 / elapsed.as_secs_f64(),
        p50_us: micros(0.50),
        p99_us: micros(0.99),
        max_us: micros(1.0),
        steal_ratio: stats.steal_ratio(),
    }
}

/// Times admission only (not playback) for a loop of single `admit` calls
/// vs one `submit_batch`, on a fresh engine each.
fn probe_batch_speedup(docs: &[(Arc<Document>, JitterModel)], tenants: usize) -> (f64, f64, f64) {
    let time_admissions = |as_batch: bool| -> f64 {
        let engine = Engine::new(EngineConfig {
            workers: 2,
            ..EngineConfig::default()
        });
        // Warm-up round, then best-of-two timed rounds.
        play_batch_tagged(&engine, docs, tenants);
        let mut best = f64::INFINITY;
        for _ in 0..2 {
            let submissions = tagged(docs, tenants);
            let started = Instant::now();
            if as_batch {
                engine.submit_batch(submissions).expect("engine is open");
            } else {
                for submission in submissions {
                    engine.admit(submission).expect("engine is open");
                }
            }
            best = best.min(started.elapsed().as_secs_f64());
            engine.drain();
        }
        engine.shutdown();
        best
    };
    let loop_secs = time_admissions(false);
    let batch_secs = time_admissions(true);
    (
        loop_secs * 1e6,
        batch_secs * 1e6,
        ratio(loop_secs, batch_secs),
    )
}

fn bench_engine(c: &mut Criterion) {
    // Regenerate the artifact: docs/sec for a 64-document backlog as the
    // worker pool grows.
    let docs = batch(64);
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let mut lines =
        format!("host parallelism: {cores} core(s)\nworkers   docs/sec   speedup vs 1 worker\n");
    let mut baseline = None;
    for workers in [1usize, 2, 4, 8] {
        let engine = Engine::new(EngineConfig {
            workers,
            ..EngineConfig::default()
        });
        // Warm one batch, then time the better of two runs (the queue is
        // steady-state either way; this damps scheduler noise).
        play_batch(&engine, &docs);
        let elapsed = play_batch(&engine, &docs).min(play_batch(&engine, &docs));
        let docs_per_sec = docs.len() as f64 / elapsed.as_secs_f64();
        let baseline_rate = *baseline.get_or_insert(docs_per_sec);
        lines.push_str(&format!(
            "{workers:<9} {docs_per_sec:<10.0} {:.2}x\n",
            docs_per_sec / baseline_rate
        ));
        engine.shutdown();
    }
    banner(
        "ext: engine throughput, 64 concurrent documents (docs/sec vs workers)",
        &lines,
    );

    // Multi-tenant probe: 256 documents spread over 1/16/256 tenants. The
    // JSON trajectory records what the banner prints.
    let tenant_docs = batch(256);
    let mut run = TrajectoryRun::now("cargo bench ext_engine");
    let mut lines = format!(
        "host parallelism: {cores} core(s)\n\
         tenants   docs/sec   admit p50 µs   admit p99 µs   admit max µs   steal%\n"
    );
    let mut probes = Vec::new();
    for tenants in [1usize, 16, 256] {
        let probe = probe_admission(&tenant_docs, tenants);
        lines.push_str(&format!(
            "{:<9} {:<10.0} {:<14.1} {:<14.1} {:<14.1} {:.1}\n",
            probe.tenants,
            probe.docs_per_sec,
            probe.p50_us,
            probe.p99_us,
            probe.max_us,
            probe.steal_ratio * 100.0,
        ));
        run = run
            .metric(
                format!("tenants/{tenants}/docs_per_sec"),
                probe.docs_per_sec,
            )
            .metric(format!("tenants/{tenants}/p99_admission_us"), probe.p99_us);
        probes.push(probe);
    }
    let p99_spread = ratio(
        probes.last().map(|p| p.p99_us).unwrap_or(0.0),
        probes.first().map(|p| p.p99_us).unwrap_or(0.0),
    );
    lines.push_str(&format!(
        "p99 admission spread 1 → 256 tenants: {p99_spread:.2}x (acceptance bar: within 2x)\n"
    ));
    run = run
        .metric("tenants/p99_spread_1_to_256", p99_spread)
        .metric(
            "steal_ratio",
            probes.last().map(|p| p.steal_ratio).unwrap_or(0.0),
        );

    let (loop_us, batch_us, speedup) = probe_batch_speedup(&tenant_docs, 16);
    lines.push_str(&format!(
        "admitting 256 docs, 16 tenants: loop-of-admit {loop_us:.0} µs, \
         submit_batch {batch_us:.0} µs ({speedup:.2}x)\n"
    ));
    run = run.metric("batch_admission_speedup", speedup);
    banner(
        "ext: multi-tenant admission (p99 flatness across tenant counts)",
        &lines,
    );
    match trajectory::record_run("ext_engine", run) {
        Ok(path) => println!("perf trajectory appended to {}", path.display()),
        Err(e) => eprintln!("could not write the perf trajectory: {e}"),
    }

    let mut group = c.benchmark_group("ext_engine");
    for concurrency in [1usize, 8, 64] {
        let docs = batch(concurrency);
        let engine = Engine::new(EngineConfig {
            workers: 8,
            ..EngineConfig::default()
        });
        group.bench_with_input(
            BenchmarkId::new("play_documents", concurrency),
            &docs,
            |b, docs| {
                b.iter(|| play_batch(&engine, docs));
            },
        );
        engine.shutdown();
    }

    // Saturated producer: 64 documents forced through a *bounded* queue on
    // 2 workers. At backlog 1 the producer spends most of its time parked
    // on the capacity condvar — the target prices the blocking admission
    // path itself (park/unpark per document), which the unbounded targets
    // above never touch; at 64 the bound never binds and the number should
    // track `play_documents/64` modulo the worker count.
    let docs = batch(64);
    for backlog in [1usize, 8, 64] {
        let engine = Engine::new(EngineConfig {
            workers: 2,
            max_backlog: Some(backlog),
            ..EngineConfig::default()
        });
        group.bench_with_input(
            BenchmarkId::new("bounded_backlog", backlog),
            &docs,
            |b, docs| {
                b.iter(|| play_batch(&engine, docs));
            },
        );
        engine.shutdown();
    }

    // The gated tenants targets: same 256 documents, one `submit_batch`
    // admission, fair dispatch over 1/16/256 tenants. The tenant plane must
    // be invisible here — a regression on `tenants/256` relative to
    // `tenants/1` means the stride heap or the tenant table leaked into the
    // per-document constant.
    for tenants in [1usize, 16, 256] {
        let engine = Engine::new(EngineConfig {
            workers: 4,
            refill_batch: 4,
            ..EngineConfig::default()
        });
        group.bench_with_input(
            BenchmarkId::new("tenants", tenants),
            &tenant_docs,
            |b, docs| {
                b.iter(|| play_batch_tagged(&engine, docs, tenants));
            },
        );
        engine.shutdown();
    }
    group.finish();
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_engine
}
criterion_main!(benches);
