//! Machine-readable perf trajectories: `BENCH_<name>.json` files kept
//! *in the repository*, so the performance history survives outside the
//! 90-day CI artifact window (the ROADMAP gap: the trajectory was empty).
//!
//! A trajectory file holds one JSON object with the bench name and an
//! append-only `runs` array; each run is a flat `metric name → number`
//! map plus a little provenance (unix time, host core count, git-visible
//! label). Benches append with [`record_run`]; `bench_delta --trajectory`
//! reads the history back and renders the metric evolution.
//!
//! The workspace has no serde, so the format is written by hand and read
//! by a minimal recursive-descent JSON parser ([`JsonValue`]) that accepts
//! anything the writer produces (and standard JSON generally). A corrupt
//! or missing file is treated as an empty history, never an error — losing
//! one trajectory append is better than failing a bench run.

use std::fmt::Write as _;
use std::fs;
use std::path::{Path, PathBuf};
use std::time::{SystemTime, UNIX_EPOCH};

/// One recorded bench run: provenance plus a flat metric map.
#[derive(Debug, Clone, PartialEq)]
pub struct TrajectoryRun {
    /// Seconds since the unix epoch when the run was recorded.
    pub unix_seconds: u64,
    /// Host parallelism the run saw (throughput numbers are meaningless
    /// without it).
    pub host_cores: u64,
    /// Free-form label (e.g. "local" or a CI ref).
    pub label: String,
    /// Metric name → value, in insertion order.
    pub metrics: Vec<(String, f64)>,
}

impl TrajectoryRun {
    /// A run stamped with the current time and host parallelism.
    pub fn now(label: impl Into<String>) -> TrajectoryRun {
        TrajectoryRun {
            unix_seconds: SystemTime::now()
                .duration_since(UNIX_EPOCH)
                .map(|d| d.as_secs())
                .unwrap_or(0),
            host_cores: std::thread::available_parallelism()
                .map(|n| n.get() as u64)
                .unwrap_or(1),
            label: label.into(),
            metrics: Vec::new(),
        }
    }

    /// Adds one metric (replacing an earlier one of the same name).
    pub fn metric(mut self, name: impl Into<String>, value: f64) -> TrajectoryRun {
        let name = name.into();
        self.metrics.retain(|(n, _)| *n != name);
        self.metrics.push((name, value));
        self
    }

    /// Looks a metric up by name.
    pub fn get(&self, name: &str) -> Option<f64> {
        self.metrics
            .iter()
            .find(|(n, _)| n == name)
            .map(|&(_, v)| v)
    }
}

/// A whole trajectory file: the bench it belongs to and its run history.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Trajectory {
    /// The bench the file belongs to (e.g. `ext_engine`).
    pub bench: String,
    /// Recorded runs, oldest first.
    pub runs: Vec<TrajectoryRun>,
}

/// The repository root, derived from this crate's manifest location
/// (`crates/bench` → two levels up). Trajectory files live there so they
/// are committed next to ROADMAP.md, not buried in `target/`.
pub fn repo_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("crates/bench sits two levels below the repo root") // repo_lint: allow(compile-time path invariant)
        .to_path_buf()
}

/// The in-repo path of a bench's trajectory file.
pub fn trajectory_path(bench: &str) -> PathBuf {
    repo_root().join(format!("BENCH_{bench}.json"))
}

/// Loads a bench's trajectory. Missing or unreadable files are an empty
/// history.
pub fn load(bench: &str) -> Trajectory {
    load_from(&trajectory_path(bench), bench)
}

fn load_from(path: &Path, bench: &str) -> Trajectory {
    let fallback = Trajectory {
        bench: bench.to_string(),
        runs: Vec::new(),
    };
    let Ok(text) = fs::read_to_string(path) else {
        return fallback;
    };
    let Some(value) = JsonValue::parse(&text) else {
        return fallback;
    };
    let mut trajectory = fallback;
    if let Some(name) = value.get("bench").and_then(JsonValue::as_str) {
        trajectory.bench = name.to_string();
    }
    let Some(runs) = value.get("runs").and_then(JsonValue::as_array) else {
        return trajectory;
    };
    for run in runs {
        let mut parsed = TrajectoryRun {
            unix_seconds: run
                .get("unix_seconds")
                .and_then(JsonValue::as_f64)
                .unwrap_or(0.0) as u64,
            host_cores: run
                .get("host_cores")
                .and_then(JsonValue::as_f64)
                .unwrap_or(1.0) as u64,
            label: run
                .get("label")
                .and_then(JsonValue::as_str)
                .unwrap_or("")
                .to_string(),
            metrics: Vec::new(),
        };
        if let Some(JsonValue::Object(metrics)) = run.get("metrics") {
            for (name, value) in metrics {
                if let Some(number) = value.as_f64() {
                    parsed.metrics.push((name.clone(), number));
                }
            }
        }
        trajectory.runs.push(parsed);
    }
    trajectory
}

/// Appends `run` to the bench's in-repo trajectory file, creating it on
/// first use, and returns the path written. Existing history is preserved
/// (a corrupt file restarts the history rather than erroring).
pub fn record_run(bench: &str, run: TrajectoryRun) -> std::io::Result<PathBuf> {
    let path = trajectory_path(bench);
    let mut trajectory = load_from(&path, bench);
    trajectory.bench = bench.to_string();
    trajectory.runs.push(run);
    fs::write(&path, render(&trajectory))?;
    Ok(path)
}

/// Renders a trajectory as pretty-printed JSON (diff-friendly: one metric
/// per line, runs appended at the end).
pub fn render(trajectory: &Trajectory) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    let _ = writeln!(out, "  \"bench\": {},", quote(&trajectory.bench));
    out.push_str("  \"runs\": [");
    for (index, run) in trajectory.runs.iter().enumerate() {
        if index > 0 {
            out.push(',');
        }
        out.push_str("\n    {\n");
        let _ = writeln!(out, "      \"unix_seconds\": {},", run.unix_seconds);
        let _ = writeln!(out, "      \"host_cores\": {},", run.host_cores);
        let _ = writeln!(out, "      \"label\": {},", quote(&run.label));
        out.push_str("      \"metrics\": {");
        for (metric_index, (name, value)) in run.metrics.iter().enumerate() {
            if metric_index > 0 {
                out.push(',');
            }
            let _ = write!(out, "\n        {}: {}", quote(name), number(*value));
        }
        if !run.metrics.is_empty() {
            out.push_str("\n      ");
        }
        out.push_str("}\n    }");
    }
    if !trajectory.runs.is_empty() {
        out.push_str("\n  ");
    }
    out.push_str("]\n}\n");
    out
}

/// Renders a trajectory's history as a first→last table, one row per
/// metric, for `bench_delta --trajectory`.
pub fn render_history(trajectory: &Trajectory) -> String {
    let mut out = format!(
        "trajectory '{}': {} recorded run(s)\n",
        trajectory.bench,
        trajectory.runs.len()
    );
    let (Some(first), Some(last)) = (trajectory.runs.first(), trajectory.runs.last()) else {
        out.push_str("(no runs recorded yet — run `cargo bench` to append one)\n");
        return out;
    };
    let _ = writeln!(
        out,
        "{:<44} {:>12} {:>12} {:>9}",
        "metric", "first", "latest", "change"
    );
    for (name, latest) in &last.metrics {
        let change = match first.get(name) {
            Some(start) if start != 0.0 && trajectory.runs.len() > 1 => {
                format!("{:+.1}%", (latest - start) / start * 100.0)
            }
            _ => "-".to_string(),
        };
        let _ = writeln!(
            out,
            "{:<44} {:>12} {:>12} {:>9}",
            name,
            first.get(name).map(number).unwrap_or_else(|| "-".into()),
            number(*latest),
            change
        );
    }
    let _ = writeln!(
        out,
        "latest run: unix {} on {} core(s) ({})",
        last.unix_seconds, last.host_cores, last.label
    );
    out
}

fn quote(text: &str) -> String {
    let mut out = String::with_capacity(text.len() + 2);
    out.push('"');
    for c in text.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// JSON has no NaN/Infinity; clamp them to null-ish zero rather than
/// emitting an unparseable file.
fn number(value: f64) -> String {
    if !value.is_finite() {
        return "0".to_string();
    }
    // Enough precision to round-trip the metrics we record, without the
    // 17-digit noise full round-tripping would spray over diffs.
    let text = format!("{value:.6}");
    let trimmed = text.trim_end_matches('0').trim_end_matches('.');
    if trimmed.is_empty() {
        "0".to_string()
    } else {
        trimmed.to_string()
    }
}

/// A minimal JSON value, produced by [`JsonValue::parse`]. Sufficient for
/// the trajectory files this module writes, and standard JSON generally
/// (numbers become `f64`; `\uXXXX` escapes outside the BMP are not
/// combined into surrogate pairs).
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number.
    Number(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<JsonValue>),
    /// An object, in source order.
    Object(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Parses one JSON document; `None` on any syntax error.
    pub fn parse(text: &str) -> Option<JsonValue> {
        let mut parser = Parser {
            bytes: text.as_bytes(),
            at: 0,
        };
        parser.skip_whitespace();
        let value = parser.value()?;
        parser.skip_whitespace();
        if parser.at == parser.bytes.len() {
            Some(value)
        } else {
            None
        }
    }

    /// Object field lookup.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string inside, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::String(s) => Some(s),
            _ => None,
        }
    }

    /// The number inside, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Array(items) => Some(items),
            _ => None,
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    at: usize,
}

impl Parser<'_> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.at).copied()
    }

    fn skip_whitespace(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.at += 1;
        }
    }

    fn eat(&mut self, expected: u8) -> Option<()> {
        if self.peek() == Some(expected) {
            self.at += 1;
            Some(())
        } else {
            None
        }
    }

    fn literal(&mut self, text: &str, value: JsonValue) -> Option<JsonValue> {
        if self.bytes[self.at..].starts_with(text.as_bytes()) {
            self.at += text.len();
            Some(value)
        } else {
            None
        }
    }

    fn value(&mut self) -> Option<JsonValue> {
        self.skip_whitespace();
        match self.peek()? {
            b'{' => self.object(),
            b'[' => self.array(),
            b'"' => self.string().map(JsonValue::String),
            b't' => self.literal("true", JsonValue::Bool(true)),
            b'f' => self.literal("false", JsonValue::Bool(false)),
            b'n' => self.literal("null", JsonValue::Null),
            _ => self.number(),
        }
    }

    fn object(&mut self) -> Option<JsonValue> {
        self.eat(b'{')?;
        let mut fields = Vec::new();
        self.skip_whitespace();
        if self.peek() == Some(b'}') {
            self.at += 1;
            return Some(JsonValue::Object(fields));
        }
        loop {
            self.skip_whitespace();
            let key = self.string()?;
            self.skip_whitespace();
            self.eat(b':')?;
            let value = self.value()?;
            fields.push((key, value));
            self.skip_whitespace();
            match self.peek()? {
                b',' => self.at += 1,
                b'}' => {
                    self.at += 1;
                    return Some(JsonValue::Object(fields));
                }
                _ => return None,
            }
        }
    }

    fn array(&mut self) -> Option<JsonValue> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_whitespace();
        if self.peek() == Some(b']') {
            self.at += 1;
            return Some(JsonValue::Array(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_whitespace();
            match self.peek()? {
                b',' => self.at += 1,
                b']' => {
                    self.at += 1;
                    return Some(JsonValue::Array(items));
                }
                _ => return None,
            }
        }
    }

    fn string(&mut self) -> Option<String> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek()? {
                b'"' => {
                    self.at += 1;
                    return Some(out);
                }
                b'\\' => {
                    self.at += 1;
                    match self.peek()? {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b't' => out.push('\t'),
                        b'r' => out.push('\r'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self.bytes.get(self.at + 1..self.at + 5)?;
                            let code =
                                u32::from_str_radix(std::str::from_utf8(hex).ok()?, 16).ok()?;
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.at += 4;
                        }
                        _ => return None,
                    }
                    self.at += 1;
                }
                _ => {
                    // Consume one UTF-8 character (the input is a &str, so
                    // boundaries are valid; find the next one).
                    let rest = std::str::from_utf8(&self.bytes[self.at..]).ok()?;
                    let c = rest.chars().next()?;
                    out.push(c);
                    self.at += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Option<JsonValue> {
        let start = self.at;
        while matches!(
            self.peek(),
            Some(b'-' | b'+' | b'.' | b'e' | b'E' | b'0'..=b'9')
        ) {
            self.at += 1;
        }
        if start == self.at {
            return None;
        }
        std::str::from_utf8(&self.bytes[start..self.at])
            .ok()?
            .parse::<f64>()
            .ok()
            .map(JsonValue::Number)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn a_rendered_trajectory_round_trips_through_the_parser() {
        let trajectory = Trajectory {
            bench: "ext_engine".to_string(),
            runs: vec![
                TrajectoryRun {
                    unix_seconds: 1_700_000_000,
                    host_cores: 8,
                    label: "local".to_string(),
                    metrics: vec![
                        ("tenants/play/1.docs_per_sec".to_string(), 1234.5),
                        ("tenants/play/256.p99_admission_us".to_string(), 17.25),
                    ],
                },
                TrajectoryRun {
                    unix_seconds: 1_700_086_400,
                    host_cores: 1,
                    label: "ci \"quoted\"".to_string(),
                    metrics: vec![("steal_ratio".to_string(), 0.125)],
                },
            ],
        };
        let text = render(&trajectory);
        let value = JsonValue::parse(&text).expect("renderer emits valid JSON");
        assert_eq!(
            value.get("bench").and_then(JsonValue::as_str),
            Some("ext_engine")
        );
        let runs = value.get("runs").and_then(JsonValue::as_array).unwrap();
        assert_eq!(runs.len(), 2);
        assert_eq!(
            runs[0]
                .get("metrics")
                .and_then(|m| m.get("tenants/play/1.docs_per_sec"))
                .and_then(JsonValue::as_f64),
            Some(1234.5)
        );
        assert_eq!(
            runs[1].get("label").and_then(JsonValue::as_str),
            Some("ci \"quoted\"")
        );
    }

    #[test]
    fn load_and_record_append_history_in_a_temp_repo_file() {
        let dir = std::env::temp_dir().join(format!("cmif-trajectory-{}", std::process::id()));
        let _ = fs::create_dir_all(&dir);
        let path = dir.join("BENCH_test.json");
        let _ = fs::remove_file(&path);

        // Missing file → empty history.
        let empty = load_from(&path, "test");
        assert_eq!(empty.runs.len(), 0);

        // Two manual append cycles through the real writer/reader.
        for (index, rate) in [(0u64, 100.0), (1u64, 110.0)] {
            let mut trajectory = load_from(&path, "test");
            trajectory.bench = "test".to_string();
            trajectory.runs.push(TrajectoryRun {
                unix_seconds: index,
                host_cores: 4,
                label: "unit".to_string(),
                metrics: vec![("docs_per_sec".to_string(), rate)],
            });
            fs::write(&path, render(&trajectory)).unwrap();
        }
        let loaded = load_from(&path, "test");
        assert_eq!(loaded.runs.len(), 2);
        assert_eq!(loaded.runs[1].get("docs_per_sec"), Some(110.0));

        // Corrupt file → empty history, not a panic.
        fs::write(&path, "{ not json").unwrap();
        assert_eq!(load_from(&path, "test").runs.len(), 0);
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn parser_handles_standard_json_shapes() {
        let value = JsonValue::parse(
            r#"{"a": [1, -2.5, 1e3], "b": {"nested": true}, "c": null, "d": "xA"}"#,
        )
        .unwrap();
        let a = value.get("a").and_then(JsonValue::as_array).unwrap();
        assert_eq!(a[2].as_f64(), Some(1000.0));
        assert_eq!(
            value.get("b").and_then(|b| b.get("nested")),
            Some(&JsonValue::Bool(true))
        );
        assert_eq!(value.get("c"), Some(&JsonValue::Null));
        assert_eq!(value.get("d").and_then(JsonValue::as_str), Some("xA"));
        assert!(JsonValue::parse("{\"unterminated\": ").is_none());
        assert!(JsonValue::parse("[1, 2] trailing").is_none());
    }

    #[test]
    fn history_rendering_shows_first_to_latest_change() {
        let mut trajectory = Trajectory {
            bench: "ext_engine".to_string(),
            runs: Vec::new(),
        };
        let empty = render_history(&trajectory);
        assert!(empty.contains("no runs recorded yet"), "{empty}");
        trajectory.runs = vec![
            TrajectoryRun {
                unix_seconds: 1,
                host_cores: 1,
                label: "a".to_string(),
                metrics: vec![("docs_per_sec".to_string(), 100.0)],
            },
            TrajectoryRun {
                unix_seconds: 2,
                host_cores: 1,
                label: "b".to_string(),
                metrics: vec![
                    ("docs_per_sec".to_string(), 150.0),
                    ("brand_new".to_string(), 1.0),
                ],
            },
        ];
        let table = render_history(&trajectory);
        assert!(table.contains("+50.0%"), "{table}");
        assert!(table.contains("brand_new"), "{table}");
        assert!(table.contains("2 recorded run(s)"), "{table}");
    }

    #[test]
    fn trajectory_run_builder_replaces_duplicate_metrics() {
        let run = TrajectoryRun::now("test")
            .metric("rate", 1.0)
            .metric("rate", 2.0)
            .metric("other", f64::NAN);
        assert_eq!(run.get("rate"), Some(2.0));
        assert_eq!(run.metrics.len(), 2);
        // Non-finite values render as 0, keeping the file parseable.
        let rendered = render(&Trajectory {
            bench: "x".to_string(),
            runs: vec![run],
        });
        assert!(JsonValue::parse(&rendered).is_some());
    }
}
