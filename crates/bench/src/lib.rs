//! Shared helpers for the CMIF benchmark harness.
//!
//! Every bench target under `benches/` regenerates one artifact of the paper
//! (a figure, the building-block table, or a comparison the paper makes
//! qualitatively) and measures the operations behind it. The helpers here
//! keep the benches short: the Evening News fixture with captured media, and
//! an "artifact banner" so the regenerated content is visible in
//! `cargo bench` output and can be pasted into EXPERIMENTS.md.

use cmif::media::store::BlockStore;
use cmif::news::{capture_news_media, evening_news};
use cmif_core::tree::Document;

pub mod delta;
pub mod trajectory;

/// Prints a banner so regenerated artifacts are easy to find in the bench
/// output.
pub fn banner(title: &str, body: &str) {
    println!("\n==== {title} ====");
    println!("{body}");
}

/// The Evening News document plus a store holding its (synthetic) media.
pub fn news_fixture() -> (Document, BlockStore) {
    let store = BlockStore::new();
    // repo_lint: allow(static fixture; failing to build it is a bug in the fixture itself)
    capture_news_media(&store, 1991).expect("capture succeeds");
    // repo_lint: allow(static fixture; failing to build it is a bug in the fixture itself)
    let doc = evening_news().expect("the evening news builds");
    (doc, store)
}

/// Ratio helper used in shape summaries.
pub fn ratio(numerator: f64, denominator: f64) -> f64 {
    if denominator == 0.0 {
        return f64::INFINITY;
    }
    numerator / denominator
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixture_is_consistent() {
        let (doc, store) = news_fixture();
        assert_eq!(doc.channels.len(), 5);
        assert_eq!(store.len(), 7);
    }

    #[test]
    fn ratio_handles_zero() {
        assert_eq!(ratio(10.0, 2.0), 5.0);
        assert!(ratio(1.0, 0.0).is_infinite());
    }
}
