//! Source hygiene gate: no panicking escape hatches on fallible library
//! paths.
//!
//! Scans `crates/*/src` and the umbrella `src/` for `.unwrap()`,
//! `.expect(`, `todo!(` and `dbg!(` outside `#[cfg(test)]` items and
//! reports every hit; a non-empty report exits 1 so CI can gate on it.
//! Library code is expected to thread `Result` through to the caller —
//! the only sanctioned panics are invariant violations, and those must be
//! annotated in place with a trailing `// repo_lint: allow(reason)`
//! comment, which doubles as the audit trail of every deliberate panic
//! site in the workspace.
//!
//! Out of scope by construction: test modules (the whole point of the
//! `#[cfg(test)]` tracker), `benches/`, `examples/`, `tests/` and bin
//! sources other than this one (panicking on broken fixtures is the right
//! behavior there), and `crates/compat/*` (vendored stand-ins mimicking
//! third-party APIs, panicky surface included).

use std::fmt::Write as _;
use std::fs;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

/// One forbidden-pattern hit.
struct Violation {
    file: PathBuf,
    line: usize,
    pattern: &'static str,
    text: String,
}

/// The forbidden patterns. Assembled at runtime so this file does not
/// flag itself when scanned.
fn patterns() -> Vec<(&'static str, String)> {
    vec![
        ("unwrap", format!(".{}()", "unwrap")),
        ("expect", format!(".{}(", "expect")),
        ("todo", format!("{}!(", "todo")),
        ("dbg", format!("{}!(", "dbg")),
    ]
}

/// The marker that sanctions a hit on its line.
fn allow_marker() -> String {
    format!("// {}: allow", "repo_lint")
}

/// Per-file scanner state: brace depth, `#[cfg(test)]` regions, multi-line
/// comment/raw-string carry-over.
#[derive(Default)]
struct Scanner {
    depth: i32,
    /// Depth at which the innermost active `#[cfg(test)]` item opened;
    /// everything until the depth drops back is test code.
    test_region: Option<i32>,
    /// A `#[cfg(test)]` attribute was seen and its item not yet opened.
    pending_cfg_test: bool,
    in_block_comment: bool,
    /// Number of `#` marks of an open multi-line raw string.
    in_raw_string: Option<usize>,
}

impl Scanner {
    /// Strips comments and string contents from `line` (updating the
    /// multi-line state) and tracks brace depth, returning the sanitized
    /// code text — the only text patterns are matched against.
    fn sanitize(&mut self, line: &str) -> String {
        let bytes = line.as_bytes();
        let mut out = String::with_capacity(line.len());
        let mut i = 0;
        while i < bytes.len() {
            if let Some(hashes) = self.in_raw_string {
                // Look for `"###...` with exactly `hashes` marks.
                if bytes[i] == b'"'
                    && bytes[i + 1..].iter().take_while(|b| **b == b'#').count() >= hashes
                {
                    self.in_raw_string = None;
                    i += 1 + hashes;
                } else {
                    i += 1;
                }
                continue;
            }
            if self.in_block_comment {
                if bytes[i..].starts_with(b"*/") {
                    self.in_block_comment = false;
                    i += 2;
                } else {
                    i += 1;
                }
                continue;
            }
            match bytes[i] {
                b'/' if bytes[i + 1..].starts_with(b"/") => break, // line comment
                b'/' if bytes[i + 1..].starts_with(b"*") => {
                    self.in_block_comment = true;
                    i += 2;
                }
                b'r' | b'b' if is_raw_string_start(bytes, i) => {
                    let start = i + 1 + usize::from(bytes[i] == b'b');
                    let hashes = bytes[start..].iter().take_while(|b| **b == b'#').count();
                    self.in_raw_string = Some(hashes);
                    i = start + hashes + 1; // past the opening quote
                }
                b'"' => {
                    // Cooked string: skip to the unescaped closing quote.
                    i += 1;
                    while i < bytes.len() {
                        match bytes[i] {
                            b'\\' => i += 2,
                            b'"' => {
                                i += 1;
                                break;
                            }
                            _ => i += 1,
                        }
                    }
                }
                b'\'' => {
                    // Char literal or lifetime. A lifetime has no closing
                    // quote within a couple of characters; a char literal
                    // does — skip it, otherwise emit the tick as code.
                    if let Some(end) = char_literal_end(bytes, i) {
                        i = end;
                    } else {
                        out.push('\'');
                        i += 1;
                    }
                }
                b'{' => {
                    self.depth += 1;
                    out.push('{');
                    i += 1;
                }
                b'}' => {
                    self.depth -= 1;
                    if self.test_region.is_some_and(|entry| self.depth <= entry) {
                        self.test_region = None;
                    }
                    out.push('}');
                    i += 1;
                }
                c => {
                    out.push(c as char);
                    i += 1;
                }
            }
        }
        out
    }
}

/// True when `bytes[i..]` starts a raw (byte) string: `r"`, `r#`, `br"`,
/// `br#` — and is not just an identifier containing `r`.
fn is_raw_string_start(bytes: &[u8], i: usize) -> bool {
    let prev_is_ident = i > 0 && (bytes[i - 1].is_ascii_alphanumeric() || bytes[i - 1] == b'_');
    if prev_is_ident {
        return false;
    }
    let start = i + 1 + usize::from(bytes[i] == b'b' && bytes.get(i + 1) == Some(&b'r'));
    let start = if bytes[i] == b'b' { start } else { i + 1 };
    let hashes = bytes
        .get(start..)
        .map_or(0, |rest| rest.iter().take_while(|b| **b == b'#').count());
    bytes.get(start + hashes) == Some(&b'"')
        && (bytes[i] == b'r' || bytes.get(i + 1) == Some(&b'r'))
}

/// When `bytes[i] == b'\''` opens a char literal, the index just past its
/// closing quote; `None` for lifetimes.
fn char_literal_end(bytes: &[u8], i: usize) -> Option<usize> {
    let mut j = i + 1;
    if j >= bytes.len() {
        return None;
    }
    if bytes[j] == b'\\' {
        j += 2;
        while j < bytes.len() && bytes[j] != b'\'' {
            j += 1; // \u{...} escapes
        }
        return (j < bytes.len()).then_some(j + 1);
    }
    // A plain char literal closes immediately after one character.
    (bytes.get(j + 1) == Some(&b'\'')).then_some(j + 2)
}

/// Scans one file, appending violations.
fn scan_file(path: &Path, out: &mut Vec<Violation>) {
    let Ok(source) = fs::read_to_string(path) else {
        return;
    };
    let pats = patterns();
    let marker = allow_marker();
    let mut scanner = Scanner::default();
    // The allow marker sanctions its own line and the next one, so it can
    // trail a short line or precede the hit in a formatted method chain.
    let mut allow_next = false;
    for (number, line) in source.lines().enumerate() {
        let entry_region = scanner.test_region;
        let code = scanner.sanitize(line);
        if code.contains("cfg(test") {
            scanner.pending_cfg_test = true;
        }
        if scanner.pending_cfg_test {
            if code.contains('{') && scanner.test_region.is_none() {
                // The cfg(test) item opened on this line; its braces were
                // already counted, so the region entry depth is one below.
                scanner.test_region = Some(scanner.depth - 1);
                scanner.pending_cfg_test = false;
            } else if code.trim_end().ends_with(';') {
                scanner.pending_cfg_test = false; // braceless item, e.g. `use`
            }
        }
        let allowed = allow_next || line.contains(&marker);
        allow_next = line.contains(&marker);
        if entry_region.is_some() || scanner.test_region.is_some() || allowed {
            continue;
        }
        for (name, pattern) in &pats {
            if code.contains(pattern.as_str()) {
                out.push(Violation {
                    file: path.to_path_buf(),
                    line: number + 1,
                    pattern: name,
                    text: line.trim().to_string(),
                });
            }
        }
    }
}

/// Recursively collects `.rs` files under `dir`.
fn rust_files(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = fs::read_dir(dir) else {
        return;
    };
    let mut paths: Vec<_> = entries.flatten().map(|e| e.path()).collect();
    paths.sort();
    for path in paths {
        if path.is_dir() {
            rust_files(&path, out);
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
}

fn main() -> ExitCode {
    // Run from anywhere in the workspace: anchor on the manifest dir's
    // grandparent (crates/bench -> repo root).
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .map(Path::to_path_buf)
        .unwrap_or_default();

    let mut files = Vec::new();
    rust_files(&root.join("src"), &mut files);
    if let Ok(entries) = fs::read_dir(root.join("crates")) {
        let mut crates: Vec<_> = entries.flatten().map(|e| e.path()).collect();
        crates.sort();
        for crate_dir in crates {
            if crate_dir.file_name().is_some_and(|n| n == "compat") {
                continue; // vendored third-party stand-ins
            }
            rust_files(&crate_dir.join("src"), &mut files);
        }
    }
    // Bin sources panic on broken fixtures by design; this gate covers
    // library paths.
    files.retain(|p| !p.components().any(|c| c.as_os_str() == "bin"));

    let mut violations = Vec::new();
    for file in &files {
        scan_file(file, &mut violations);
    }

    if violations.is_empty() {
        println!(
            "repo_lint: {} files clean (no unsanctioned unwrap/expect/todo/dbg)",
            files.len()
        );
        return ExitCode::SUCCESS;
    }
    let mut report = String::new();
    for v in &violations {
        let shown = v.file.strip_prefix(&root).unwrap_or(&v.file);
        let _ = writeln!(
            report,
            "{}:{}: forbidden `{}` on a library path\n    {}",
            shown.display(),
            v.line,
            v.pattern,
            v.text
        );
    }
    eprintln!("{report}");
    eprintln!(
        "repo_lint: {} violation(s) in {} file(s); return the error to the caller \
         or annotate the invariant with `{}(reason)`",
        violations.len(),
        files.len(),
        allow_marker()
    );
    ExitCode::FAILURE
}
