//! CLI over [`cmif_bench::delta`]: compare two bench-baselines artifacts.
//!
//! ```text
//! bench_delta <previous.txt> <current.txt> \
//!     [--fail-prefix PREFIX[:FRACTION]]... [--threshold FRACTION]
//! bench_delta --trajectory BENCH
//! ```
//!
//! Prints the per-target delta table on stdout. `--fail-prefix` may be
//! repeated: the job exits non-zero if any target with one of the prefixes
//! regressed by more than that prefix's threshold. A prefix without its own
//! `:FRACTION` uses the global `--threshold` (default 0.25 = +25 %), so a
//! tight gate on throughput targets can ride next to a generous one on
//! noisier parsing targets.
//!
//! `--trajectory BENCH` reads the committed `BENCH_<BENCH>.json` perf
//! history at the repo root (appended by the benches themselves, e.g.
//! `cargo bench --bench ext_engine`) and prints each metric's first→latest
//! evolution. It can be combined with a delta comparison or used alone.

use std::process::ExitCode;

use cmif_bench::delta::{diff, regressions, render_table};
use cmif_bench::trajectory;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut paths = Vec::new();
    // (prefix, per-prefix threshold override)
    let mut fail_prefixes: Vec<(String, Option<f64>)> = Vec::new();
    let mut threshold = 0.25f64;
    let mut trajectories: Vec<String> = Vec::new();
    let mut iter = args.into_iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--trajectory" => match iter.next() {
                Some(bench) => trajectories.push(bench),
                None => {
                    eprintln!("--trajectory needs a bench name (e.g. ext_engine)");
                    return ExitCode::from(2);
                }
            },
            "--fail-prefix" => match iter.next() {
                Some(spec) => match spec.split_once(':') {
                    Some((prefix, fraction)) => match fraction.parse() {
                        Ok(fraction) => fail_prefixes.push((prefix.to_string(), Some(fraction))),
                        Err(_) => {
                            eprintln!("--fail-prefix {spec}: `{fraction}` is not a number");
                            return ExitCode::from(2);
                        }
                    },
                    None => fail_prefixes.push((spec, None)),
                },
                None => {
                    eprintln!("--fail-prefix needs a value");
                    return ExitCode::from(2);
                }
            },
            "--threshold" => match iter.next().and_then(|t| t.parse().ok()) {
                Some(t) => threshold = t,
                None => {
                    eprintln!("--threshold needs a numeric value");
                    return ExitCode::from(2);
                }
            },
            _ => paths.push(arg),
        }
    }
    for bench in &trajectories {
        println!("{}", trajectory::render_history(&trajectory::load(bench)));
    }
    if paths.is_empty() && !trajectories.is_empty() {
        // Trajectory-only invocation: nothing to diff.
        return ExitCode::SUCCESS;
    }
    let [previous_path, current_path] = paths.as_slice() else {
        eprintln!(
            "usage: bench_delta <previous.txt> <current.txt> \
             [--fail-prefix PREFIX[:FRACTION]]... [--threshold FRACTION] \
             | bench_delta --trajectory BENCH"
        );
        return ExitCode::from(2);
    };

    let previous = match std::fs::read_to_string(previous_path) {
        Ok(text) => text,
        Err(e) => {
            eprintln!("cannot read {previous_path}: {e}");
            return ExitCode::from(2);
        }
    };
    let current = match std::fs::read_to_string(current_path) {
        Ok(text) => text,
        Err(e) => {
            eprintln!("cannot read {current_path}: {e}");
            return ExitCode::from(2);
        }
    };

    let rows = diff(&previous, &current);
    println!("{}", render_table(&rows));

    let mut failed = false;
    for (prefix, override_threshold) in fail_prefixes {
        let threshold = override_threshold.unwrap_or(threshold);
        // A gate that guards zero targets is a format drift or a rename,
        // not a pass: refuse to green-light it.
        if !rows
            .iter()
            .any(|row| row.current.is_some() && row.name.starts_with(&prefix))
        {
            eprintln!(
                "no target in the current artifact matches prefix '{prefix}'; \
                 the regression gate would be ineffective (renamed targets or parse drift?)"
            );
            return ExitCode::from(2);
        }
        let offenders = regressions(&rows, &prefix, threshold);
        if offenders.is_empty() {
            println!(
                "no '{prefix}' target regressed more than {:.0}%",
                threshold * 100.0
            );
            continue;
        }
        failed = true;
        eprintln!(
            "{} target(s) with prefix '{prefix}' regressed more than {:.0}%:",
            offenders.len(),
            threshold * 100.0
        );
        for row in offenders {
            eprintln!(
                "  {}: {:+.1}%",
                row.name,
                row.relative_change().unwrap_or_default() * 100.0
            );
        }
    }
    if failed {
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
