//! CLI over [`cmif_bench::delta`]: compare two bench-baselines artifacts.
//!
//! ```text
//! bench_delta <previous.txt> <current.txt> [--fail-prefix PREFIX] [--threshold FRACTION]
//! ```
//!
//! Prints the per-target delta table on stdout. When `--fail-prefix` is
//! given, exits non-zero if any target with that prefix regressed by more
//! than the threshold (default 0.25 = +25 %).

use std::process::ExitCode;

use cmif_bench::delta::{diff, regressions, render_table};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut paths = Vec::new();
    let mut fail_prefix: Option<String> = None;
    let mut threshold = 0.25f64;
    let mut iter = args.into_iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--fail-prefix" => match iter.next() {
                Some(prefix) => fail_prefix = Some(prefix),
                None => {
                    eprintln!("--fail-prefix needs a value");
                    return ExitCode::from(2);
                }
            },
            "--threshold" => match iter.next().and_then(|t| t.parse().ok()) {
                Some(t) => threshold = t,
                None => {
                    eprintln!("--threshold needs a numeric value");
                    return ExitCode::from(2);
                }
            },
            _ => paths.push(arg),
        }
    }
    let [previous_path, current_path] = paths.as_slice() else {
        eprintln!(
            "usage: bench_delta <previous.txt> <current.txt> [--fail-prefix PREFIX] [--threshold FRACTION]"
        );
        return ExitCode::from(2);
    };

    let previous = match std::fs::read_to_string(previous_path) {
        Ok(text) => text,
        Err(e) => {
            eprintln!("cannot read {previous_path}: {e}");
            return ExitCode::from(2);
        }
    };
    let current = match std::fs::read_to_string(current_path) {
        Ok(text) => text,
        Err(e) => {
            eprintln!("cannot read {current_path}: {e}");
            return ExitCode::from(2);
        }
    };

    let rows = diff(&previous, &current);
    println!("{}", render_table(&rows));

    if let Some(prefix) = fail_prefix {
        // A gate that guards zero targets is a format drift or a rename,
        // not a pass: refuse to green-light it.
        if !rows
            .iter()
            .any(|row| row.current.is_some() && row.name.starts_with(&prefix))
        {
            eprintln!(
                "no target in the current artifact matches prefix '{prefix}'; \
                 the regression gate would be ineffective (renamed targets or parse drift?)"
            );
            return ExitCode::from(2);
        }
        let offenders = regressions(&rows, &prefix, threshold);
        if !offenders.is_empty() {
            eprintln!(
                "{} target(s) with prefix '{prefix}' regressed more than {:.0}%:",
                offenders.len(),
                threshold * 100.0
            );
            for row in offenders {
                eprintln!(
                    "  {}: {:+.1}%",
                    row.name,
                    row.relative_change().unwrap_or_default() * 100.0
                );
            }
            return ExitCode::FAILURE;
        }
        println!(
            "no '{prefix}' target regressed more than {:.0}%",
            threshold * 100.0
        );
    }
    ExitCode::SUCCESS
}
