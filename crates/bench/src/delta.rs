//! Baseline diffing for the `bench-baselines` CI job.
//!
//! The job uploads every run's `cargo bench` output as a workflow artifact;
//! this module parses two such artifacts (the previous run's and the
//! current one's), lines the targets up by name and renders a per-target
//! delta table. Regressions beyond a threshold on selected targets (the
//! `ext_engine` throughput bars) fail the job — the "diff consecutive
//! artifacts" follow-up the ROADMAP recorded after PR 2.
//!
//! The parser understands the line format of the offline criterion shim:
//!
//! ```text
//! group/name/param   time: [min 1.234 ms mean 2.345 ms]  (10 samples x 26 iters)
//! ```

use std::fmt::Write as _;

use criterion::format_seconds;

/// One parsed benchmark measurement.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchRecord {
    /// The full benchmark id (`group/function/parameter`).
    pub name: String,
    /// Mean per-iteration time in seconds.
    pub mean_seconds: f64,
}

/// A time literal like `1.234 ms`, `5.6 µs`, `789.0 ns` or `1.2 s`.
fn parse_time(text: &str) -> Option<f64> {
    let mut parts = text.split_whitespace();
    let value: f64 = parts.next()?.parse().ok()?;
    let scale = match parts.next()? {
        "s" => 1.0,
        "ms" => 1e-3,
        "µs" | "us" => 1e-6,
        "ns" => 1e-9,
        _ => return None,
    };
    Some(value * scale)
}

/// Parses a whole bench-baselines artifact into its measurements. Banner
/// lines and other non-measurement output are skipped.
pub fn parse_report(text: &str) -> Vec<BenchRecord> {
    let mut records = Vec::new();
    for line in text.lines() {
        let Some((name_part, rest)) = line.split_once(" time: [min ") else {
            continue;
        };
        let Some((min_and_mean, _)) = rest.split_once(']') else {
            continue;
        };
        let Some((_, mean_text)) = min_and_mean.split_once(" mean ") else {
            continue;
        };
        if let Some(mean_seconds) = parse_time(mean_text.trim()) {
            records.push(BenchRecord {
                name: name_part.trim().to_string(),
                mean_seconds,
            });
        }
    }
    records
}

/// One row of the delta table: a target present in either artifact.
#[derive(Debug, Clone, PartialEq)]
pub struct DeltaRow {
    /// The benchmark id.
    pub name: String,
    /// Mean seconds in the previous artifact, if the target existed.
    pub previous: Option<f64>,
    /// Mean seconds in the current artifact, if the target still exists.
    pub current: Option<f64>,
}

impl DeltaRow {
    /// Relative change `(current - previous) / previous`; `None` unless the
    /// target appears in both artifacts.
    pub fn relative_change(&self) -> Option<f64> {
        match (self.previous, self.current) {
            (Some(prev), Some(cur)) if prev > 0.0 => Some((cur - prev) / prev),
            _ => None,
        }
    }
}

/// Lines two artifacts up by target name, preserving the current artifact's
/// order and appending targets that disappeared.
pub fn diff(previous: &str, current: &str) -> Vec<DeltaRow> {
    let old_records = parse_report(previous);
    let new_records = parse_report(current);
    let mut rows: Vec<DeltaRow> = new_records
        .iter()
        .map(|new| DeltaRow {
            name: new.name.clone(),
            previous: old_records
                .iter()
                .find(|old| old.name == new.name)
                .map(|old| old.mean_seconds),
            current: Some(new.mean_seconds),
        })
        .collect();
    for old in &old_records {
        if !new_records.iter().any(|new| new.name == old.name) {
            rows.push(DeltaRow {
                name: old.name.clone(),
                previous: Some(old.mean_seconds),
                current: None,
            });
        }
    }
    rows
}

/// Renders the per-target delta table.
pub fn render_table(rows: &[DeltaRow]) -> String {
    let mut out = format!(
        "{:<60} {:>12} {:>12} {:>9}\n",
        "target", "previous", "current", "delta"
    );
    for row in rows {
        let previous = row
            .previous
            .map(format_seconds)
            .unwrap_or_else(|| "(new)".into());
        let current = row
            .current
            .map(format_seconds)
            .unwrap_or_else(|| "(gone)".into());
        let delta = row
            .relative_change()
            .map(|c| format!("{:+.1}%", c * 100.0))
            .unwrap_or_else(|| "-".into());
        let _ = writeln!(
            out,
            "{:<60} {previous:>12} {current:>12} {delta:>9}",
            row.name
        );
    }
    out
}

/// The rows whose target name starts with `prefix` and whose mean regressed
/// by more than `threshold` (e.g. 0.25 for +25 %).
pub fn regressions<'a>(rows: &'a [DeltaRow], prefix: &str, threshold: f64) -> Vec<&'a DeltaRow> {
    rows.iter()
        .filter(|row| row.name.starts_with(prefix))
        .filter(|row| row.relative_change().is_some_and(|c| c > threshold))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    const OLD: &str = "\
==== some banner ====\n\
not a measurement line\n\
ext_engine/play_documents/8      time: [min 1.000 ms mean 2.000 ms]  (10 samples x 10 iters)\n\
fig01_pipeline/evening_news      time: [min 10.000 ms mean 12.000 ms]  (10 samples x 5 iters)\n\
gone_target/x                    time: [min 1.0 µs mean 2.0 µs]  (10 samples x 5 iters)\n";

    const NEW: &str = "\
ext_engine/play_documents/8      time: [min 1.500 ms mean 3.000 ms]  (10 samples x 10 iters)\n\
fig01_pipeline/evening_news      time: [min 9.000 ms mean 11.000 ms]  (10 samples x 5 iters)\n\
fresh_target/y                   time: [min 100.0 ns mean 200.0 ns]  (10 samples x 5 iters)\n";

    #[test]
    fn parses_the_shim_line_format_across_units() {
        let records = parse_report(OLD);
        assert_eq!(records.len(), 3);
        assert_eq!(records[0].name, "ext_engine/play_documents/8");
        assert!((records[0].mean_seconds - 2e-3).abs() < 1e-9);
        assert!((records[2].mean_seconds - 2e-6).abs() < 1e-12);
    }

    #[test]
    fn diff_tracks_new_gone_and_changed_targets() {
        let rows = diff(OLD, NEW);
        let by_name = |n: &str| rows.iter().find(|r| r.name == n).unwrap();
        let regressed = by_name("ext_engine/play_documents/8");
        assert!((regressed.relative_change().unwrap() - 0.5).abs() < 1e-9);
        let improved = by_name("fig01_pipeline/evening_news");
        assert!(improved.relative_change().unwrap() < 0.0);
        assert_eq!(by_name("fresh_target/y").previous, None);
        assert_eq!(by_name("gone_target/x").current, None);
    }

    #[test]
    fn only_matching_prefixes_beyond_threshold_regress() {
        let rows = diff(OLD, NEW);
        // +50 % on ext_engine trips a 25 % threshold...
        assert_eq!(regressions(&rows, "ext_engine", 0.25).len(), 1);
        // ...but not a 60 % threshold, and other groups never do.
        assert!(regressions(&rows, "ext_engine", 0.60).is_empty());
        assert!(regressions(&rows, "fig01_pipeline", 0.25).is_empty());
    }

    #[test]
    fn table_renders_every_row() {
        let rows = diff(OLD, NEW);
        let table = render_table(&rows);
        assert!(table.contains("(new)"));
        assert!(table.contains("(gone)"));
        assert!(table.contains("+50.0%"));
        assert_eq!(table.lines().count(), rows.len() + 1);
    }
}
