//! Serializer: writes a [`Document`] in the human-readable interchange form.
//!
//! The output is the canonical textual form of a CMIF document. It is what
//! gets transported between environments, diffed by humans, and parsed back
//! by [`crate::parser`]; `write_document` followed by `parse_document` is
//! the round-trip the property tests exercise.
//!
//! # Streaming
//!
//! [`write_document_to`] streams straight into any [`io::Write`] — a file,
//! a socket, a `Vec<u8>` — formatting every value in place with no
//! per-value `String`. [`write_document`] is the convenience wrapper that
//! collects the stream into one `String` for callers that want the text in
//! memory.

use std::fmt;
use std::io;

use cmif_core::arc::SyncArc;
use cmif_core::descriptor::DataDescriptor;
use cmif_core::node::{ImmediateData, NodeId, NodeKind};
use cmif_core::time::MaxDelay;
use cmif_core::tree::Document;
use cmif_core::value::AttrValue;

use crate::error::Result;

/// Serializes a whole document into a `String`.
pub fn write_document(doc: &Document) -> Result<String> {
    let mut out = Vec::new();
    write_document_to(doc, &mut out)?;
    Ok(String::from_utf8_lossy(&out).into_owned())
}

/// Streams a whole document into a writer in the canonical textual form.
///
/// This is the text half of the wire interface (see [`crate::wire`]): the
/// exact bytes `write_document` would collect, but delivered incrementally
/// so a large document never materializes as one contiguous `String`.
pub fn write_document_to<W: io::Write>(doc: &Document, out: &mut W) -> Result<()> {
    out.write_all(b"(cmif\n")?;

    if !doc.meta.is_empty() {
        out.write_all(b"  (meta\n")?;
        for (key, value) in &doc.meta {
            out.write_all(b"    (")?;
            out.write_all(key.as_bytes())?;
            out.write_all(b" ")?;
            write_value(out, value)?;
            out.write_all(b")\n")?;
        }
        out.write_all(b"  )\n")?;
    }

    if !doc.channels.is_empty() {
        out.write_all(b"  (channels\n")?;
        for channel in doc.channels.iter() {
            out.write_all(b"    (channel ")?;
            write_ident_or_string(out, channel.name.as_str())?;
            write!(out, " {}", channel.medium)?;
            for (key, value) in &channel.extra {
                write!(out, " ({key} ")?;
                write_value(out, value)?;
                out.write_all(b")")?;
            }
            out.write_all(b")\n")?;
        }
        out.write_all(b"  )\n")?;
    }

    if !doc.styles.is_empty() {
        out.write_all(b"  (styles\n")?;
        for style in doc.styles.iter() {
            out.write_all(b"    (style ")?;
            write_ident_or_string(out, &style.name)?;
            if !style.parents.is_empty() {
                out.write_all(b" (parents")?;
                for parent in &style.parents {
                    out.write_all(b" ")?;
                    write_ident_or_string(out, parent)?;
                }
                out.write_all(b")")?;
            }
            if !style.attrs.is_empty() {
                out.write_all(b" (attrs")?;
                for attr in &style.attrs {
                    write!(out, " ({} ", attr.name)?;
                    write_value(out, &attr.value)?;
                    out.write_all(b")")?;
                }
                out.write_all(b")")?;
            }
            out.write_all(b")\n")?;
        }
        out.write_all(b"  )\n")?;
    }

    if !doc.catalog.is_empty() {
        out.write_all(b"  (descriptors\n")?;
        // The catalog iterates in symbol-id (intern) order; sort by key text
        // so the canonical output stays alphabetical and diff-stable.
        let mut descriptors: Vec<&DataDescriptor> = doc.catalog.iter().collect();
        descriptors.sort_by_key(|d| d.key.as_str());
        for descriptor in descriptors {
            write_descriptor(out, descriptor)?;
        }
        out.write_all(b"  )\n")?;
    }

    let root = doc.root()?;
    write_node(doc, root, 1, out)?;
    out.write_all(b")\n")?;
    Ok(())
}

fn write_descriptor<W: io::Write>(out: &mut W, d: &DataDescriptor) -> Result<()> {
    out.write_all(b"    (descriptor ")?;
    write_ident_or_string(out, d.key.as_str())?;
    write!(out, " {} ", d.medium)?;
    write_ident_or_string(out, &d.format)?;
    write!(out, " (size {})", d.size_bytes)?;
    if let Some(duration) = d.duration {
        write!(out, " (duration {})", duration.as_millis())?;
    }
    if let Some((w, h)) = d.resolution {
        write!(out, " (resolution {w} {h})")?;
    }
    if let Some(bits) = d.color_depth {
        write!(out, " (color_depth {bits})")?;
    }
    if let Some(fps) = d.rates.frames_per_second {
        write!(out, " (fps {fps})")?;
    }
    if let Some(sr) = d.rates.samples_per_second {
        write!(out, " (sample_rate {sr})")?;
    }
    if let Some(bps) = d.rates.bytes_per_second {
        write!(out, " (byte_rate {bps})")?;
    }
    if d.resources.bandwidth_bps != 0
        || d.resources.decode_cost != 0
        || d.resources.memory_bytes != 0
    {
        write!(
            out,
            " (resources {} {} {})",
            d.resources.bandwidth_bps, d.resources.decode_cost, d.resources.memory_bytes
        )?;
    }
    if let Some(location) = &d.location {
        out.write_all(b" (location ")?;
        write_quoted(out, location)?;
        out.write_all(b")")?;
    }
    if !d.extra.is_empty() {
        out.write_all(b" (extra")?;
        // Like the catalog itself, extras are keyed by Symbol (intern
        // order); emit them alphabetically so the canonical text is stable
        // across processes with different intern histories.
        let mut extras: Vec<_> = d.extra.iter().collect();
        extras.sort_by_key(|(key, _)| key.as_str());
        for (key, value) in extras {
            write!(out, " ({key} ")?;
            write_value(out, value)?;
            out.write_all(b")")?;
        }
        out.write_all(b")")?;
    }
    out.write_all(b")\n")?;
    Ok(())
}

/// Writes `2 * depth` spaces of indentation without allocating.
fn write_indent<W: io::Write>(out: &mut W, depth: usize) -> io::Result<()> {
    const SPACES: &[u8; 64] = &[b' '; 64];
    let mut remaining = depth.saturating_mul(2);
    while remaining > 0 {
        let chunk = remaining.min(SPACES.len());
        out.write_all(&SPACES[..chunk])?;
        remaining -= chunk;
    }
    Ok(())
}

fn write_node<W: io::Write>(doc: &Document, id: NodeId, depth: usize, out: &mut W) -> Result<()> {
    let node = doc.node(id)?;
    write_indent(out, depth)?;
    write!(out, "({}", node.kind.keyword())?;

    for attr in node.attrs.iter() {
        out.write_all(b"\n")?;
        write_indent(out, depth)?;
        write!(out, "  ({} ", attr.name)?;
        write_value(out, &attr.value)?;
        out.write_all(b")")?;
    }

    for arc in doc.arcs_of(id) {
        out.write_all(b"\n")?;
        write_indent(out, depth)?;
        out.write_all(b"  ")?;
        write_arc_to(out, arc)?;
    }

    match &node.kind {
        NodeKind::Imm(ImmediateData::Text(text)) => {
            out.write_all(b"\n")?;
            write_indent(out, depth)?;
            out.write_all(b"  (data ")?;
            write_quoted(out, text)?;
            out.write_all(b")")?;
        }
        NodeKind::Imm(ImmediateData::Binary(bytes)) => {
            out.write_all(b"\n")?;
            write_indent(out, depth)?;
            out.write_all(b"  (bindata \"")?;
            write_hex(out, bytes)?;
            out.write_all(b"\")")?;
        }
        NodeKind::Seq | NodeKind::Par => {
            for child in &node.children {
                out.write_all(b"\n")?;
                write_node(doc, *child, depth + 1, out)?;
            }
        }
        NodeKind::Ext => {}
    }
    out.write_all(b")")?;
    Ok(())
}

/// Serializes one synchronization arc in the tabular form of Figure 9.
pub fn write_arc(arc: &SyncArc) -> String {
    let mut out = Vec::new();
    // Writing to a Vec cannot fail; a broken arc still renders its fields.
    let _ = write_arc_to(&mut out, arc);
    String::from_utf8_lossy(&out).into_owned()
}

/// Streams one synchronization arc into a writer. The node paths are
/// formatted and quoted in place — no per-arc `String`s.
pub fn write_arc_to<W: io::Write>(out: &mut W, arc: &SyncArc) -> Result<()> {
    write!(
        out,
        "(sync_arc {} {} {} {} {} {} {} {} ",
        arc.anchor,
        arc.strictness,
        arc.source_anchor,
        Quoted(&arc.source),
        arc.offset.value,
        arc.offset.unit,
        Quoted(&arc.destination),
        arc.min_delay.as_millis(),
    )?;
    match arc.max_delay {
        MaxDelay::Unbounded => out.write_all(b"inf)")?,
        MaxDelay::Bounded(d) => write!(out, "{})", d.as_millis())?,
    }
    Ok(())
}

/// Renders an attribute value in source form.
pub fn value_text(value: &AttrValue) -> String {
    let mut out = Vec::new();
    let _ = write_value(&mut out, value);
    String::from_utf8_lossy(&out).into_owned()
}

/// Streams an attribute value in source form: numbers and reals format
/// straight into the writer, strings escape in place.
pub fn write_value<W: io::Write>(out: &mut W, value: &AttrValue) -> Result<()> {
    match value {
        AttrValue::Id(s) => write_ident_or_string(out, s.as_str())?,
        AttrValue::Number(n) => write!(out, "{n}")?,
        AttrValue::Real(x) => {
            if x.fract() == 0.0 {
                // Keep reals distinguishable from integers on round-trip.
                write!(out, "{x:.1}")?;
            } else {
                write!(out, "{x}")?;
            }
        }
        AttrValue::Str(s) => write_quoted(out, s)?,
        AttrValue::Ref(s) => write!(out, "&{s}")?,
        AttrValue::List(items) => {
            out.write_all(b"(")?;
            for (index, item) in items.iter().enumerate() {
                if index > 0 {
                    out.write_all(b" ")?;
                }
                write_value(out, item)?;
            }
            out.write_all(b")")?;
        }
    }
    Ok(())
}

/// True when `s` can be written as a bare identifier and still lex back to
/// the same value.
fn ident_safe(s: &str) -> bool {
    !s.is_empty()
        && !s.contains(|c: char| {
            c.is_whitespace() || c == '(' || c == ')' || c == '"' || c == ';' || c == '&'
        })
        && s.parse::<f64>().is_err()
}

fn write_ident_or_string<W: io::Write>(out: &mut W, s: &str) -> io::Result<()> {
    if ident_safe(s) {
        out.write_all(s.as_bytes())
    } else {
        write_quoted(out, s)
    }
}

/// Writes `s` as a quoted string literal, escaping in chunks: runs of
/// escape-free bytes go out as one `write_all`, not char by char.
fn write_quoted<W: io::Write>(out: &mut W, s: &str) -> io::Result<()> {
    out.write_all(b"\"")?;
    let bytes = s.as_bytes();
    let mut plain_from = 0;
    for (index, b) in bytes.iter().enumerate() {
        let escape: &[u8] = match b {
            b'"' => b"\\\"",
            b'\\' => b"\\\\",
            b'\n' => b"\\n",
            b'\t' => b"\\t",
            _ => continue,
        };
        out.write_all(&bytes[plain_from..index])?;
        out.write_all(escape)?;
        plain_from = index + 1;
    }
    out.write_all(&bytes[plain_from..])?;
    out.write_all(b"\"")
}

/// Adapts a `Display` value for quoted output: the value formats straight
/// through an escaping shim into the surrounding formatter — no
/// intermediate `String` (the old writer allocated one per arc path).
struct Quoted<T>(T);

impl<T: fmt::Display> fmt::Display for Quoted<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        use fmt::Write as _;
        f.write_char('"')?;
        write!(Escaper(f), "{}", self.0)?;
        f.write_char('"')
    }
}

/// A `fmt::Write` shim that escapes `"` `\` `\n` `\t` on the way through.
struct Escaper<'a, 'b>(&'a mut fmt::Formatter<'b>);

impl fmt::Write for Escaper<'_, '_> {
    fn write_str(&mut self, s: &str) -> fmt::Result {
        let mut plain_from = 0;
        for (index, c) in s.char_indices() {
            let escape = match c {
                '"' => "\\\"",
                '\\' => "\\\\",
                '\n' => "\\n",
                '\t' => "\\t",
                _ => continue,
            };
            self.0.write_str(&s[plain_from..index])?;
            self.0.write_str(escape)?;
            plain_from = index + c.len_utf8();
        }
        self.0.write_str(&s[plain_from..])
    }
}

/// Hex-encodes binary immediate data.
pub fn hex_encode(bytes: &[u8]) -> String {
    let mut out = Vec::with_capacity(bytes.len() * 2);
    let _ = write_hex(&mut out, bytes);
    String::from_utf8_lossy(&out).into_owned()
}

fn write_hex<W: io::Write>(out: &mut W, bytes: &[u8]) -> io::Result<()> {
    const DIGITS: &[u8; 16] = b"0123456789abcdef";
    // Hex-encode through a small stack buffer: one write per chunk instead
    // of one per byte.
    let mut buf = [0u8; 128];
    for chunk in bytes.chunks(buf.len() / 2) {
        let mut len = 0;
        for b in chunk {
            buf[len] = DIGITS[(b >> 4) as usize];
            buf[len + 1] = DIGITS[(b & 0x0f) as usize];
            len += 2;
        }
        out.write_all(&buf[..len])?;
    }
    Ok(())
}

/// Decodes hex-encoded binary immediate data.
pub fn hex_decode(text: &str) -> Option<Vec<u8>> {
    if text.len() % 2 != 0 {
        return None;
    }
    let mut out = Vec::with_capacity(text.len() / 2);
    let bytes = text.as_bytes();
    for pair in bytes.chunks(2) {
        let hi = (pair[0] as char).to_digit(16)?;
        let lo = (pair[1] as char).to_digit(16)?;
        out.push((hi * 16 + lo) as u8);
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cmif_core::prelude::*;

    fn sample_doc() -> Document {
        DocumentBuilder::new("Evening News")
            .meta("author", AttrValue::Str("CWI".into()))
            .channel("audio", MediaKind::Audio)
            .channel("caption", MediaKind::Text)
            .descriptor(
                DataDescriptor::new("story-audio", MediaKind::Audio, "pcm8")
                    .with_size(64_000)
                    .with_duration(TimeMs::from_secs(8))
                    .with_rates(RateInfo::audio(8_000, 8_000))
                    .with_location("store://host/story-audio"),
            )
            .style(StyleDef::new("caption-style").with_attr(Attr::new(
                AttrName::TFormatting,
                AttrValue::list([AttrValue::list([
                    AttrValue::Id("font".into()),
                    AttrValue::Id("helvetica".into()),
                ])]),
            )))
            .root_seq(|news| {
                news.par("story-1", |scene| {
                    scene.ext("voice", "audio", "story-audio");
                    scene.ext_with("caption-1", "caption", "story-audio", |n| {
                        n.duration_ms(3000);
                        n.arc(SyncArc::hard_start("../voice", ""));
                    });
                    scene.imm_text("label", "caption", "Story 1: Paintings", 2000);
                });
            })
            .build()
            .unwrap()
    }

    #[test]
    fn writes_all_sections() {
        let text = write_document(&sample_doc()).unwrap();
        assert!(text.starts_with("(cmif\n"));
        assert!(text.contains("(meta"));
        assert!(text.contains("(channels"));
        assert!(text.contains("(channel audio audio)"));
        assert!(text.contains("(styles"));
        assert!(text.contains("(descriptors"));
        assert!(text.contains("(descriptor story-audio audio pcm8"));
        assert!(text.contains("(seq"));
        assert!(text.contains("(par"));
        assert!(text.contains("(ext"));
        assert!(text.contains("(imm"));
        assert!(text.contains("(sync_arc begin must begin"));
        assert!(text.contains("(data \"Story 1: Paintings\")"));
    }

    #[test]
    fn streaming_and_collected_output_are_identical() {
        let doc = sample_doc();
        let collected = write_document(&doc).unwrap();
        let mut streamed = Vec::new();
        write_document_to(&doc, &mut streamed).unwrap();
        assert_eq!(collected.as_bytes(), streamed.as_slice());
    }

    #[test]
    fn io_failures_surface_as_format_errors() {
        /// A sink that refuses every byte.
        struct Broken;
        impl io::Write for Broken {
            fn write(&mut self, _: &[u8]) -> io::Result<usize> {
                Err(io::Error::other("sink closed"))
            }
            fn flush(&mut self) -> io::Result<()> {
                Ok(())
            }
        }
        let err = write_document_to(&sample_doc(), &mut Broken).unwrap_err();
        assert!(matches!(err, crate::FormatError::Io { .. }));
        assert!(err.to_string().contains("sink closed"));
    }

    #[test]
    fn empty_document_cannot_be_written() {
        assert!(write_document(&Document::new()).is_err());
    }

    #[test]
    fn value_text_forms() {
        assert_eq!(value_text(&AttrValue::Id("abc".into())), "abc");
        assert_eq!(value_text(&AttrValue::Number(-4)), "-4");
        assert_eq!(value_text(&AttrValue::Real(2.0)), "2.0");
        assert_eq!(value_text(&AttrValue::Real(2.5)), "2.5");
        assert_eq!(value_text(&AttrValue::Str("a b".into())), "\"a b\"");
        assert_eq!(value_text(&AttrValue::Ref("x".into())), "&x");
        assert_eq!(
            value_text(&AttrValue::list([
                AttrValue::Number(1),
                AttrValue::Id("s".into())
            ])),
            "(1 s)"
        );
    }

    #[test]
    fn idents_needing_quotes_are_quoted() {
        assert_eq!(value_text(&AttrValue::Id("plain".into())), "plain");
        // An Id that *looks* numeric must be quoted or it would come back as
        // a number.
        fn ident_or_string(s: &str) -> String {
            let mut out = Vec::new();
            write_ident_or_string(&mut out, s).unwrap();
            String::from_utf8(out).unwrap()
        }
        assert_eq!(ident_or_string("42"), "\"42\"");
        assert_eq!(ident_or_string(""), "\"\"");
        assert_eq!(ident_or_string("two words"), "\"two words\"");
    }

    #[test]
    fn quoting_escapes_specials() {
        let mut out = Vec::new();
        write_quoted(&mut out, "a\"b\\c\nd").unwrap();
        assert_eq!(String::from_utf8(out).unwrap(), "\"a\\\"b\\\\c\\nd\"");
        // The Display-adapter path escapes identically.
        assert_eq!(format!("{}", Quoted("a\"b\\c\nd")), "\"a\\\"b\\\\c\\nd\"");
        assert_eq!(format!("{}", Quoted("tab\there")), "\"tab\\there\"");
    }

    #[test]
    fn hex_round_trip() {
        let data = vec![0u8, 1, 127, 255, 16];
        let text = hex_encode(&data);
        assert_eq!(text, "00017fff10");
        assert_eq!(hex_decode(&text).unwrap(), data);
        assert!(hex_decode("abc").is_none());
        assert!(hex_decode("zz").is_none());
        // Payloads longer than the chunk buffer still encode correctly.
        let long: Vec<u8> = (0..=255u8).collect();
        assert_eq!(hex_decode(&hex_encode(&long)).unwrap(), long);
    }

    #[test]
    fn arc_serialization_mentions_all_fields() {
        let arc = SyncArc::hard_start("/news/audio", "graphic")
            .with_offset(MediaTime::seconds(2))
            .with_window(
                DelayMs::from_millis(-100),
                MaxDelay::Bounded(DelayMs::from_millis(250)),
            );
        let text = write_arc(&arc);
        assert_eq!(
            text,
            "(sync_arc begin must begin \"/news/audio\" 2 s \"graphic\" -100 250)"
        );
        let unbounded = SyncArc::relaxed_start("", "x");
        assert!(write_arc(&unbounded).ends_with("0 inf)"));
    }
}
