//! Serializer: writes a [`Document`] in the human-readable interchange form.
//!
//! The output is the canonical textual form of a CMIF document. It is what
//! gets transported between environments, diffed by humans, and parsed back
//! by [`crate::parser`]; `write_document` followed by `parse_document` is
//! the round-trip the property tests exercise.

use std::fmt::Write as _;

use cmif_core::arc::SyncArc;
use cmif_core::descriptor::DataDescriptor;
use cmif_core::error::Result as CoreResult;
use cmif_core::node::{ImmediateData, NodeId, NodeKind};
use cmif_core::time::MaxDelay;
use cmif_core::tree::Document;
use cmif_core::value::AttrValue;

/// Serializes a whole document.
pub fn write_document(doc: &Document) -> CoreResult<String> {
    let mut out = String::new();
    out.push_str("(cmif\n");

    if !doc.meta.is_empty() {
        out.push_str("  (meta\n");
        for (key, value) in &doc.meta {
            let _ = writeln!(out, "    ({} {})", key, value_text(value));
        }
        out.push_str("  )\n");
    }

    if !doc.channels.is_empty() {
        out.push_str("  (channels\n");
        for channel in doc.channels.iter() {
            let _ = write!(
                out,
                "    (channel {} {}",
                ident_or_string(channel.name.as_str()),
                channel.medium
            );
            for (key, value) in &channel.extra {
                let _ = write!(out, " ({} {})", key, value_text(value));
            }
            out.push_str(")\n");
        }
        out.push_str("  )\n");
    }

    if !doc.styles.is_empty() {
        out.push_str("  (styles\n");
        for style in doc.styles.iter() {
            let _ = write!(out, "    (style {}", ident_or_string(&style.name));
            if !style.parents.is_empty() {
                let _ = write!(out, " (parents");
                for parent in &style.parents {
                    let _ = write!(out, " {}", ident_or_string(parent));
                }
                out.push(')');
            }
            if !style.attrs.is_empty() {
                let _ = write!(out, " (attrs");
                for attr in &style.attrs {
                    let _ = write!(out, " ({} {})", attr.name, value_text(&attr.value));
                }
                out.push(')');
            }
            out.push_str(")\n");
        }
        out.push_str("  )\n");
    }

    if !doc.catalog.is_empty() {
        out.push_str("  (descriptors\n");
        // The catalog iterates in symbol-id (intern) order; sort by key text
        // so the canonical output stays alphabetical and diff-stable.
        let mut descriptors: Vec<&DataDescriptor> = doc.catalog.iter().collect();
        descriptors.sort_by_key(|d| d.key.as_str());
        for descriptor in descriptors {
            out.push_str(&write_descriptor(descriptor));
        }
        out.push_str("  )\n");
    }

    let root = doc.root()?;
    write_node(doc, root, 1, &mut out)?;
    out.push_str(")\n");
    Ok(out)
}

fn write_descriptor(d: &DataDescriptor) -> String {
    let mut out = String::new();
    let _ = write!(
        out,
        "    (descriptor {} {} {}",
        ident_or_string(d.key.as_str()),
        d.medium,
        ident_or_string(&d.format)
    );
    let _ = write!(out, " (size {})", d.size_bytes);
    if let Some(duration) = d.duration {
        let _ = write!(out, " (duration {})", duration.as_millis());
    }
    if let Some((w, h)) = d.resolution {
        let _ = write!(out, " (resolution {w} {h})");
    }
    if let Some(bits) = d.color_depth {
        let _ = write!(out, " (color_depth {bits})");
    }
    if let Some(fps) = d.rates.frames_per_second {
        let _ = write!(out, " (fps {fps})");
    }
    if let Some(sr) = d.rates.samples_per_second {
        let _ = write!(out, " (sample_rate {sr})");
    }
    if let Some(bps) = d.rates.bytes_per_second {
        let _ = write!(out, " (byte_rate {bps})");
    }
    if d.resources.bandwidth_bps != 0
        || d.resources.decode_cost != 0
        || d.resources.memory_bytes != 0
    {
        let _ = write!(
            out,
            " (resources {} {} {})",
            d.resources.bandwidth_bps, d.resources.decode_cost, d.resources.memory_bytes
        );
    }
    if let Some(location) = &d.location {
        let _ = write!(out, " (location {})", quoted(location));
    }
    if !d.extra.is_empty() {
        let _ = write!(out, " (extra");
        // Like the catalog itself, extras are keyed by Symbol (intern
        // order); emit them alphabetically so the canonical text is stable
        // across processes with different intern histories.
        let mut extras: Vec<_> = d.extra.iter().collect();
        extras.sort_by_key(|(key, _)| key.as_str());
        for (key, value) in extras {
            let _ = write!(out, " ({} {})", key, value_text(value));
        }
        out.push(')');
    }
    out.push_str(")\n");
    out
}

fn write_node(doc: &Document, id: NodeId, depth: usize, out: &mut String) -> CoreResult<()> {
    let indent = "  ".repeat(depth);
    let node = doc.node(id)?;
    let _ = write!(out, "{indent}({}", node.kind.keyword());

    for attr in node.attrs.iter() {
        let _ = write!(
            out,
            "\n{indent}  ({} {})",
            attr.name,
            value_text(&attr.value)
        );
    }

    for arc in doc.arcs_of(id) {
        let _ = write!(out, "\n{indent}  {}", write_arc(arc));
    }

    match &node.kind {
        NodeKind::Imm(ImmediateData::Text(text)) => {
            let _ = write!(out, "\n{indent}  (data {})", quoted(text));
        }
        NodeKind::Imm(ImmediateData::Binary(bytes)) => {
            let _ = write!(out, "\n{indent}  (bindata \"{}\")", hex_encode(bytes));
        }
        NodeKind::Seq | NodeKind::Par => {
            for child in &node.children {
                out.push('\n');
                write_node(doc, *child, depth + 1, out)?;
            }
        }
        NodeKind::Ext => {}
    }
    let _ = write!(out, ")");
    Ok(())
}

/// Serializes one synchronization arc in the tabular form of Figure 9.
pub fn write_arc(arc: &SyncArc) -> String {
    let max = match arc.max_delay {
        MaxDelay::Unbounded => "inf".to_string(),
        MaxDelay::Bounded(d) => d.as_millis().to_string(),
    };
    format!(
        "(sync_arc {} {} {} {} {} {} {} {} {})",
        arc.anchor,
        arc.strictness,
        arc.source_anchor,
        quoted(&arc.source.to_string()),
        arc.offset.value,
        arc.offset.unit,
        quoted(&arc.destination.to_string()),
        arc.min_delay.as_millis(),
        max
    )
}

/// Renders an attribute value in source form.
pub fn value_text(value: &AttrValue) -> String {
    match value {
        AttrValue::Id(s) => ident_or_string(s.as_str()),
        AttrValue::Number(n) => n.to_string(),
        AttrValue::Real(x) => {
            if x.fract() == 0.0 {
                // Keep reals distinguishable from integers on round-trip.
                format!("{x:.1}")
            } else {
                format!("{x}")
            }
        }
        AttrValue::Str(s) => quoted(s),
        AttrValue::Ref(s) => format!("&{s}"),
        AttrValue::List(items) => {
            let body: Vec<String> = items.iter().map(value_text).collect();
            format!("({})", body.join(" "))
        }
    }
}

fn ident_or_string(s: &str) -> String {
    let ident_safe = !s.is_empty()
        && !s.contains(|c: char| {
            c.is_whitespace() || c == '(' || c == ')' || c == '"' || c == ';' || c == '&'
        })
        && s.parse::<f64>().is_err();
    if ident_safe {
        s.to_string()
    } else {
        quoted(s)
    }
}

fn quoted(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            other => out.push(other),
        }
    }
    out.push('"');
    out
}

/// Hex-encodes binary immediate data.
pub fn hex_encode(bytes: &[u8]) -> String {
    let mut out = String::with_capacity(bytes.len() * 2);
    for b in bytes {
        let _ = write!(out, "{b:02x}");
    }
    out
}

/// Decodes hex-encoded binary immediate data.
pub fn hex_decode(text: &str) -> Option<Vec<u8>> {
    if text.len() % 2 != 0 {
        return None;
    }
    let mut out = Vec::with_capacity(text.len() / 2);
    let bytes = text.as_bytes();
    for pair in bytes.chunks(2) {
        let hi = (pair[0] as char).to_digit(16)?;
        let lo = (pair[1] as char).to_digit(16)?;
        out.push((hi * 16 + lo) as u8);
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cmif_core::prelude::*;

    fn sample_doc() -> Document {
        DocumentBuilder::new("Evening News")
            .meta("author", AttrValue::Str("CWI".into()))
            .channel("audio", MediaKind::Audio)
            .channel("caption", MediaKind::Text)
            .descriptor(
                DataDescriptor::new("story-audio", MediaKind::Audio, "pcm8")
                    .with_size(64_000)
                    .with_duration(TimeMs::from_secs(8))
                    .with_rates(RateInfo::audio(8_000, 8_000))
                    .with_location("store://host/story-audio"),
            )
            .style(StyleDef::new("caption-style").with_attr(Attr::new(
                AttrName::TFormatting,
                AttrValue::list([AttrValue::list([
                    AttrValue::Id("font".into()),
                    AttrValue::Id("helvetica".into()),
                ])]),
            )))
            .root_seq(|news| {
                news.par("story-1", |scene| {
                    scene.ext("voice", "audio", "story-audio");
                    scene.ext_with("caption-1", "caption", "story-audio", |n| {
                        n.duration_ms(3000);
                        n.arc(SyncArc::hard_start("../voice", ""));
                    });
                    scene.imm_text("label", "caption", "Story 1: Paintings", 2000);
                });
            })
            .build()
            .unwrap()
    }

    #[test]
    fn writes_all_sections() {
        let text = write_document(&sample_doc()).unwrap();
        assert!(text.starts_with("(cmif\n"));
        assert!(text.contains("(meta"));
        assert!(text.contains("(channels"));
        assert!(text.contains("(channel audio audio)"));
        assert!(text.contains("(styles"));
        assert!(text.contains("(descriptors"));
        assert!(text.contains("(descriptor story-audio audio pcm8"));
        assert!(text.contains("(seq"));
        assert!(text.contains("(par"));
        assert!(text.contains("(ext"));
        assert!(text.contains("(imm"));
        assert!(text.contains("(sync_arc begin must begin"));
        assert!(text.contains("(data \"Story 1: Paintings\")"));
    }

    #[test]
    fn empty_document_cannot_be_written() {
        assert!(write_document(&Document::new()).is_err());
    }

    #[test]
    fn value_text_forms() {
        assert_eq!(value_text(&AttrValue::Id("abc".into())), "abc");
        assert_eq!(value_text(&AttrValue::Number(-4)), "-4");
        assert_eq!(value_text(&AttrValue::Real(2.0)), "2.0");
        assert_eq!(value_text(&AttrValue::Real(2.5)), "2.5");
        assert_eq!(value_text(&AttrValue::Str("a b".into())), "\"a b\"");
        assert_eq!(value_text(&AttrValue::Ref("x".into())), "&x");
        assert_eq!(
            value_text(&AttrValue::list([
                AttrValue::Number(1),
                AttrValue::Id("s".into())
            ])),
            "(1 s)"
        );
    }

    #[test]
    fn idents_needing_quotes_are_quoted() {
        assert_eq!(value_text(&AttrValue::Id("plain".into())), "plain");
        // An Id that *looks* numeric must be quoted or it would come back as
        // a number.
        assert_eq!(ident_or_string("42"), "\"42\"");
        assert_eq!(ident_or_string(""), "\"\"");
        assert_eq!(ident_or_string("two words"), "\"two words\"");
    }

    #[test]
    fn quoting_escapes_specials() {
        assert_eq!(quoted("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
    }

    #[test]
    fn hex_round_trip() {
        let data = vec![0u8, 1, 127, 255, 16];
        let text = hex_encode(&data);
        assert_eq!(text, "00017fff10");
        assert_eq!(hex_decode(&text).unwrap(), data);
        assert!(hex_decode("abc").is_none());
        assert!(hex_decode("zz").is_none());
    }

    #[test]
    fn arc_serialization_mentions_all_fields() {
        let arc = SyncArc::hard_start("/news/audio", "graphic")
            .with_offset(MediaTime::seconds(2))
            .with_window(
                DelayMs::from_millis(-100),
                MaxDelay::Bounded(DelayMs::from_millis(250)),
            );
        let text = write_arc(&arc);
        assert_eq!(
            text,
            "(sync_arc begin must begin \"/news/audio\" 2 s \"graphic\" -100 250)"
        );
        let unbounded = SyncArc::relaxed_start("", "x");
        assert!(write_arc(&unbounded).ends_with("0 inf)"));
    }
}
