//! One wire interface over both interchange forms.
//!
//! A CMIF document travels either as canonical text ([`crate::writer`]) or
//! as the compact binary form ([`crate::binary`]). Transports should not
//! care which: the [`WireFormat`] trait reads a document from any
//! [`io::Read`] and writes it to any [`io::Write`], auto-detecting the
//! form by its leading bytes. Binary documents start with
//! [`BINARY_MAGIC`]; text documents start with `(`, whitespace or a `;`
//! comment — the first magic byte is outside ASCII, so the two can never
//! be confused.

use std::io;

use cmif_core::tree::Document;

use crate::binary::{decode_document, encode_document_to, MAGIC};
use crate::error::{FormatError, Position, Result, Span};
use crate::parser::parse_document;
use crate::writer::write_document_to;

/// The magic bytes that open every binary wire document (re-exported from
/// [`crate::binary`] for format detection).
pub const BINARY_MAGIC: [u8; 4] = MAGIC;

/// Which interchange form a document is (or should be) carried in.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum WireEncoding {
    /// The human-readable canonical s-expression text.
    Text,
    /// The compact, checksummed binary form — the default on the wire.
    #[default]
    Binary,
}

impl WireEncoding {
    /// Detects the encoding of raw wire bytes by their leading magic.
    ///
    /// Anything that does not open with [`BINARY_MAGIC`] is treated as
    /// text; the text parser then produces its own positioned error if the
    /// bytes are not a document at all.
    pub fn detect(bytes: &[u8]) -> WireEncoding {
        if bytes.len() >= BINARY_MAGIC.len() && bytes[..BINARY_MAGIC.len()] == BINARY_MAGIC {
            WireEncoding::Binary
        } else {
            WireEncoding::Text
        }
    }

    /// Serializes `doc` in this encoding, streaming into `w`.
    pub fn encode<W: io::Write>(&self, doc: &Document, w: &mut W) -> Result<()> {
        match self {
            WireEncoding::Text => write_document_to(doc, w),
            WireEncoding::Binary => encode_document_to(doc, w),
        }
    }

    /// A short human-readable label (`"text"` / `"binary"`).
    pub fn label(&self) -> &'static str {
        match self {
            WireEncoding::Text => "text",
            WireEncoding::Binary => "binary",
        }
    }
}

impl std::fmt::Display for WireEncoding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// The wire interface: anything that can be read off a transport stream
/// and written back onto one.
pub trait WireFormat: Sized {
    /// Reads one value from a stream, auto-detecting its wire form.
    fn from_read<R: io::Read>(reader: &mut R) -> Result<Self>;

    /// Writes the value onto a stream in its wire form.
    fn write_to<W: io::Write>(&self, writer: &mut W) -> Result<()>;
}

/// Decodes a document from raw wire bytes, reporting which form it was in.
///
/// Both decode paths validate the document structurally — a transported
/// document must arrive presentable.
pub fn read_document_bytes(bytes: &[u8]) -> Result<(Document, WireEncoding)> {
    match WireEncoding::detect(bytes) {
        WireEncoding::Binary => Ok((decode_document(bytes)?, WireEncoding::Binary)),
        WireEncoding::Text => {
            let text = std::str::from_utf8(bytes).map_err(|e| FormatError::Wire {
                context: "text document",
                message: format!("not valid UTF-8: {e}"),
                at: {
                    let at = Position::new(0, 0, e.valid_up_to());
                    Span::new(at, at)
                },
            })?;
            Ok((parse_document(text)?, WireEncoding::Text))
        }
    }
}

/// Serializes a document into a fresh byte buffer in the given encoding.
pub fn document_to_bytes(doc: &Document, encoding: WireEncoding) -> Result<Vec<u8>> {
    let mut out = Vec::new();
    encoding.encode(doc, &mut out)?;
    Ok(out)
}

impl WireFormat for Document {
    /// Reads a document in either wire form (detected by magic bytes).
    fn from_read<R: io::Read>(reader: &mut R) -> Result<Document> {
        let mut bytes = Vec::new();
        reader.read_to_end(&mut bytes)?;
        Ok(read_document_bytes(&bytes)?.0)
    }

    /// Writes the document in the default wire form (binary).
    fn write_to<W: io::Write>(&self, writer: &mut W) -> Result<()> {
        WireEncoding::Binary.encode(self, writer)
    }
}

/// A document paired with the wire encoding it arrived in (or should leave
/// in). Lets a store fetch from one peer and republish to another without
/// silently changing the representation on the wire.
#[derive(Debug, Clone, PartialEq)]
pub struct WireDocument {
    /// The decoded document.
    pub document: Document,
    /// The form the document was read in, and will be written in.
    pub encoding: WireEncoding,
}

impl WireDocument {
    /// Wraps a document with an explicit target encoding.
    pub fn new(document: Document, encoding: WireEncoding) -> WireDocument {
        WireDocument { document, encoding }
    }
}

impl WireFormat for WireDocument {
    /// Reads a document and records which form it was in.
    fn from_read<R: io::Read>(reader: &mut R) -> Result<WireDocument> {
        let mut bytes = Vec::new();
        reader.read_to_end(&mut bytes)?;
        let (document, encoding) = read_document_bytes(&bytes)?;
        Ok(WireDocument { document, encoding })
    }

    /// Writes the document back in the same form it was read in.
    fn write_to<W: io::Write>(&self, writer: &mut W) -> Result<()> {
        self.encoding.encode(&self.document, writer)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::writer::write_document;
    use cmif_core::prelude::*;

    fn sample_doc() -> Document {
        DocumentBuilder::new("wire demo")
            .channel("caption", MediaKind::Text)
            .root_seq(|root| {
                root.imm_text("hello", "caption", "Hello, CMIF", 1000);
            })
            .build()
            .unwrap()
    }

    #[test]
    fn detection_by_magic_bytes() {
        let doc = sample_doc();
        let binary = document_to_bytes(&doc, WireEncoding::Binary).unwrap();
        let text = document_to_bytes(&doc, WireEncoding::Text).unwrap();
        assert_eq!(WireEncoding::detect(&binary), WireEncoding::Binary);
        assert_eq!(WireEncoding::detect(&text), WireEncoding::Text);
        assert_eq!(WireEncoding::detect(b""), WireEncoding::Text);
        assert_eq!(WireEncoding::detect(b"(cmif"), WireEncoding::Text);
    }

    #[test]
    fn document_round_trips_through_the_trait() {
        let doc = sample_doc();
        let mut buf = Vec::new();
        doc.write_to(&mut buf).unwrap();
        // The default wire form is binary.
        assert_eq!(WireEncoding::detect(&buf), WireEncoding::Binary);
        let again = Document::from_read(&mut buf.as_slice()).unwrap();
        assert_eq!(
            write_document(&doc).unwrap(),
            write_document(&again).unwrap()
        );
    }

    #[test]
    fn both_forms_decode_to_the_same_document() {
        let doc = sample_doc();
        let text = document_to_bytes(&doc, WireEncoding::Text).unwrap();
        let binary = document_to_bytes(&doc, WireEncoding::Binary).unwrap();
        assert!(binary.len() < text.len(), "binary must be the smaller form");
        let (from_text, e1) = read_document_bytes(&text).unwrap();
        let (from_binary, e2) = read_document_bytes(&binary).unwrap();
        assert_eq!(e1, WireEncoding::Text);
        assert_eq!(e2, WireEncoding::Binary);
        assert_eq!(
            write_document(&from_text).unwrap(),
            write_document(&from_binary).unwrap()
        );
    }

    #[test]
    fn wire_document_preserves_its_encoding() {
        let doc = sample_doc();
        let text = document_to_bytes(&doc, WireEncoding::Text).unwrap();
        let wired = WireDocument::from_read(&mut text.as_slice()).unwrap();
        assert_eq!(wired.encoding, WireEncoding::Text);
        let mut back = Vec::new();
        wired.write_to(&mut back).unwrap();
        // Round-tripping through the recorded encoding is a fixed point.
        assert_eq!(back, text);
    }

    #[test]
    fn invalid_utf8_text_is_a_wire_error() {
        let err = read_document_bytes(&[b'(', 0xFF, 0xFE]).unwrap_err();
        assert!(matches!(err, FormatError::Wire { .. }));
        assert!(err.span().is_some());
    }

    #[test]
    fn garbage_never_panics() {
        assert!(read_document_bytes(b"not a document").is_err());
        assert!(read_document_bytes(&[0xC3, 0x00]).is_err());
        assert!(Document::from_read(&mut &b"\xc3MIF"[..]).is_err());
    }
}
