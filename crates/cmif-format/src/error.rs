//! Error types for the CMIF interchange format.

use std::fmt;

use cmif_core::error::CoreError;

// Positions and spans moved down into `cmif-core` (every layer's
// diagnostics point into source text now, not just format errors); they are
// re-exported here so `cmif_format::{Position, Span}` keeps working.
pub use cmif_core::span::{Position, Span};

/// Result alias used throughout `cmif-format`.
pub type Result<T> = std::result::Result<T, FormatError>;

/// Errors raised while reading or writing the interchange format.
#[derive(Debug, Clone, PartialEq)]
pub enum FormatError {
    /// An unexpected character was found while tokenizing.
    UnexpectedChar {
        /// The offending character.
        found: char,
        /// Where it was found.
        at: Position,
    },
    /// A string literal was not terminated before the end of input.
    UnterminatedString {
        /// Where the string started.
        at: Position,
    },
    /// A numeric literal could not be parsed.
    BadNumber {
        /// The literal text.
        text: String,
        /// Where it was found.
        at: Position,
    },
    /// A closing parenthesis had no matching opening parenthesis, or the
    /// input ended with unclosed lists.
    UnbalancedParens {
        /// Where the imbalance was detected.
        at: Position,
    },
    /// The input ended before a complete expression was read.
    UnexpectedEof,
    /// Extra content was found after the top-level document expression.
    TrailingContent {
        /// Where the extra content begins.
        at: Position,
    },
    /// An expression did not have the shape the parser expected.
    Malformed {
        /// What the parser was parsing.
        context: &'static str,
        /// Description of what went wrong.
        message: String,
        /// Where the offending expression begins.
        at: Position,
    },
    /// The document violated a core structural rule while being assembled.
    Core(CoreError),
}

impl FormatError {
    /// The source position the error is anchored on, when it has one.
    ///
    /// Lexer and parser errors always do; [`FormatError::UnexpectedEof`]
    /// and wrapped core errors have no position.
    pub fn position(&self) -> Option<Position> {
        match self {
            FormatError::UnexpectedChar { at, .. }
            | FormatError::UnterminatedString { at }
            | FormatError::BadNumber { at, .. }
            | FormatError::UnbalancedParens { at }
            | FormatError::TrailingContent { at }
            | FormatError::Malformed { at, .. } => Some(*at),
            FormatError::UnexpectedEof | FormatError::Core(_) => None,
        }
    }
}

impl fmt::Display for FormatError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FormatError::UnexpectedChar { found, at } => {
                write!(f, "{at}: unexpected character `{found}`")
            }
            FormatError::UnterminatedString { at } => {
                write!(f, "{at}: unterminated string literal")
            }
            FormatError::BadNumber { text, at } => {
                write!(f, "{at}: malformed number `{text}`")
            }
            FormatError::UnbalancedParens { at } => {
                write!(f, "{at}: unbalanced parentheses")
            }
            FormatError::UnexpectedEof => write!(f, "unexpected end of input"),
            FormatError::TrailingContent { at } => {
                write!(f, "{at}: trailing content after the document expression")
            }
            FormatError::Malformed {
                context,
                message,
                at,
            } => {
                write!(f, "{at}: malformed {context}: {message}")
            }
            FormatError::Core(e) => write!(f, "document error: {e}"),
        }
    }
}

impl std::error::Error for FormatError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            FormatError::Core(e) => Some(e),
            _ => None,
        }
    }
}

impl From<CoreError> for FormatError {
    fn from(e: CoreError) -> Self {
        FormatError::Core(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn position_display() {
        assert_eq!(Position::new(3, 14, 120).to_string(), "3:14");
    }

    #[test]
    fn error_display_includes_position() {
        let err = FormatError::UnexpectedChar {
            found: '%',
            at: Position::new(2, 7, 31),
        };
        assert!(err.to_string().contains("2:7"));
        assert!(err.to_string().contains('%'));
        assert_eq!(err.position(), Some(Position::new(2, 7, 31)));
    }

    #[test]
    fn spans_slice_the_source() {
        let source = "(seq news)";
        let span = Span::new(Position::new(1, 2, 1), Position::new(1, 5, 4));
        assert_eq!(span.len(), 3);
        assert_eq!(span.text(source), Some("seq"));
        assert!(!span.is_empty());
    }

    #[test]
    fn positionless_errors_report_none() {
        assert_eq!(FormatError::UnexpectedEof.position(), None);
        assert_eq!(FormatError::Core(CoreError::EmptyDocument).position(), None);
    }

    #[test]
    fn core_errors_are_wrapped() {
        let err: FormatError = CoreError::EmptyDocument.into();
        assert!(matches!(err, FormatError::Core(_)));
        assert!(err.to_string().contains("document error"));
    }

    #[test]
    fn source_is_exposed_for_core_errors() {
        use std::error::Error;
        let err: FormatError = CoreError::EmptyDocument.into();
        assert!(err.source().is_some());
        assert!(FormatError::UnexpectedEof.source().is_none());
    }
}
