//! Error types for the CMIF interchange format.

use std::fmt;

use cmif_core::error::CoreError;

// Positions and spans moved down into `cmif-core` (every layer's
// diagnostics point into source text now, not just format errors); they are
// re-exported here so `cmif_format::{Position, Span}` keeps working.
pub use cmif_core::span::{Position, Span};

/// Result alias used throughout `cmif-format`.
pub type Result<T> = std::result::Result<T, FormatError>;

/// Errors raised while reading or writing the interchange format.
#[derive(Debug, Clone, PartialEq)]
pub enum FormatError {
    /// An unexpected character was found while tokenizing.
    UnexpectedChar {
        /// The offending character.
        found: char,
        /// Where it was found.
        at: Position,
    },
    /// A string literal was not terminated before the end of input.
    UnterminatedString {
        /// Where the string started.
        at: Position,
    },
    /// A numeric literal could not be parsed.
    BadNumber {
        /// The literal text.
        text: String,
        /// Where it was found.
        at: Position,
    },
    /// A closing parenthesis had no matching opening parenthesis, or the
    /// input ended with unclosed lists.
    UnbalancedParens {
        /// Where the imbalance was detected.
        at: Position,
    },
    /// The input ended before a complete expression was read.
    UnexpectedEof,
    /// Extra content was found after the top-level document expression.
    TrailingContent {
        /// Where the extra content begins.
        at: Position,
    },
    /// An expression did not have the shape the parser expected.
    Malformed {
        /// What the parser was parsing.
        context: &'static str,
        /// Description of what went wrong.
        message: String,
        /// Where the offending expression begins.
        at: Position,
    },
    /// The input nested deeper than the decoder's hard limit. Raised by
    /// both decoders: a parenthesis bomb in the text form and a list/node
    /// bomb in the binary form both stop here instead of overflowing the
    /// stack.
    TooDeep {
        /// Where the nesting crossed the limit.
        at: Position,
        /// The limit that was crossed (see [`crate::MAX_NESTING`]).
        limit: usize,
    },
    /// The binary wire payload could not be decoded. `at` spans the
    /// offending bytes of the input; for binary input the line/column of a
    /// position are zero and only the byte offset is meaningful.
    Wire {
        /// What the decoder was decoding.
        context: &'static str,
        /// Description of what went wrong.
        message: String,
        /// The byte range of the input the error is anchored on.
        at: Span,
    },
    /// The binary input ended before the declared structure was complete.
    Truncated {
        /// Where the decoder ran out of input (byte offsets).
        at: Span,
        /// How many more bytes the declared structure needed.
        needed: u64,
    },
    /// The binary payload's checksum did not match the header.
    ChecksumMismatch {
        /// The checksum the header declared.
        expected: u32,
        /// The checksum computed over the received payload.
        found: u32,
        /// The byte range of the checksum field in the header.
        at: Span,
    },
    /// The binary header declared a wire-format version this decoder does
    /// not speak.
    UnsupportedVersion {
        /// The declared version.
        found: u16,
        /// The byte range of the version field in the header.
        at: Span,
    },
    /// An I/O error while reading or writing a stream.
    Io {
        /// The underlying error, stringified (kept so `FormatError` stays
        /// `Clone + PartialEq`).
        message: String,
    },
    /// The document violated a core structural rule while being assembled.
    Core(CoreError),
}

impl FormatError {
    /// The source position the error is anchored on, when it has one.
    ///
    /// Lexer, parser and wire-decoder errors always do;
    /// [`FormatError::UnexpectedEof`], I/O errors and wrapped core errors
    /// have no position. For errors raised by the binary decoder the
    /// line/column are zero and only the byte offset is meaningful.
    pub fn position(&self) -> Option<Position> {
        match self {
            FormatError::UnexpectedChar { at, .. }
            | FormatError::UnterminatedString { at }
            | FormatError::BadNumber { at, .. }
            | FormatError::UnbalancedParens { at }
            | FormatError::TrailingContent { at }
            | FormatError::Malformed { at, .. }
            | FormatError::TooDeep { at, .. } => Some(*at),
            FormatError::Wire { at, .. }
            | FormatError::Truncated { at, .. }
            | FormatError::ChecksumMismatch { at, .. }
            | FormatError::UnsupportedVersion { at, .. } => Some(at.start),
            FormatError::UnexpectedEof | FormatError::Io { .. } | FormatError::Core(_) => None,
        }
    }

    /// The byte range of the input the error is anchored on, when it has
    /// one. Position-carrying text errors report an empty span at their
    /// position; wire errors span the offending bytes.
    pub fn span(&self) -> Option<Span> {
        match self {
            FormatError::Wire { at, .. }
            | FormatError::Truncated { at, .. }
            | FormatError::ChecksumMismatch { at, .. }
            | FormatError::UnsupportedVersion { at, .. } => Some(*at),
            other => other.position().map(|at| Span::new(at, at)),
        }
    }
}

impl fmt::Display for FormatError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FormatError::UnexpectedChar { found, at } => {
                write!(f, "{at}: unexpected character `{found}`")
            }
            FormatError::UnterminatedString { at } => {
                write!(f, "{at}: unterminated string literal")
            }
            FormatError::BadNumber { text, at } => {
                write!(f, "{at}: malformed number `{text}`")
            }
            FormatError::UnbalancedParens { at } => {
                write!(f, "{at}: unbalanced parentheses")
            }
            FormatError::UnexpectedEof => write!(f, "unexpected end of input"),
            FormatError::TrailingContent { at } => {
                write!(f, "{at}: trailing content after the document expression")
            }
            FormatError::Malformed {
                context,
                message,
                at,
            } => {
                write!(f, "{at}: malformed {context}: {message}")
            }
            FormatError::TooDeep { at, limit } => {
                write!(f, "{at}: input nests deeper than {limit} levels")
            }
            FormatError::Wire {
                context,
                message,
                at,
            } => {
                write!(
                    f,
                    "byte {}: malformed wire {context}: {message}",
                    at.start.offset
                )
            }
            FormatError::Truncated { at, needed } => {
                write!(
                    f,
                    "byte {}: input truncated ({needed} more byte(s) needed)",
                    at.start.offset
                )
            }
            FormatError::ChecksumMismatch {
                expected, found, ..
            } => {
                write!(
                    f,
                    "wire checksum mismatch: header says {expected:#010x}, payload is {found:#010x}"
                )
            }
            FormatError::UnsupportedVersion { found, .. } => {
                write!(f, "unsupported wire-format version {found}")
            }
            FormatError::Io { message } => write!(f, "i/o error: {message}"),
            FormatError::Core(e) => write!(f, "document error: {e}"),
        }
    }
}

impl std::error::Error for FormatError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            FormatError::Core(e) => Some(e),
            _ => None,
        }
    }
}

impl From<CoreError> for FormatError {
    fn from(e: CoreError) -> Self {
        FormatError::Core(e)
    }
}

impl From<std::io::Error> for FormatError {
    fn from(e: std::io::Error) -> Self {
        FormatError::Io {
            message: e.to_string(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn position_display() {
        assert_eq!(Position::new(3, 14, 120).to_string(), "3:14");
    }

    #[test]
    fn error_display_includes_position() {
        let err = FormatError::UnexpectedChar {
            found: '%',
            at: Position::new(2, 7, 31),
        };
        assert!(err.to_string().contains("2:7"));
        assert!(err.to_string().contains('%'));
        assert_eq!(err.position(), Some(Position::new(2, 7, 31)));
    }

    #[test]
    fn spans_slice_the_source() {
        let source = "(seq news)";
        let span = Span::new(Position::new(1, 2, 1), Position::new(1, 5, 4));
        assert_eq!(span.len(), 3);
        assert_eq!(span.text(source), Some("seq"));
        assert!(!span.is_empty());
    }

    #[test]
    fn positionless_errors_report_none() {
        assert_eq!(FormatError::UnexpectedEof.position(), None);
        assert_eq!(FormatError::Core(CoreError::EmptyDocument).position(), None);
        let io: FormatError = std::io::Error::other("disk on fire").into();
        assert_eq!(io.position(), None);
        assert!(io.to_string().contains("disk on fire"));
    }

    #[test]
    fn wire_errors_carry_byte_spans() {
        let at = Span::new(Position::new(0, 0, 12), Position::new(0, 0, 16));
        let err = FormatError::ChecksumMismatch {
            expected: 0xdead_beef,
            found: 0x1234_5678,
            at,
        };
        assert_eq!(err.span(), Some(at));
        assert_eq!(err.position(), Some(at.start));
        assert!(err.to_string().contains("0xdeadbeef"));

        let truncated = FormatError::Truncated {
            at: Span::new(Position::new(0, 0, 7), Position::new(0, 0, 7)),
            needed: 3,
        };
        assert_eq!(truncated.position().map(|p| p.offset), Some(7));
        assert!(truncated.to_string().contains("truncated"));

        // Text errors expose an empty span at their position.
        let text = FormatError::UnexpectedChar {
            found: '%',
            at: Position::new(2, 7, 31),
        };
        let span = text.span().expect("text errors have spans");
        assert_eq!(span.start.offset, 31);
        assert!(span.is_empty());
    }

    #[test]
    fn core_errors_are_wrapped() {
        let err: FormatError = CoreError::EmptyDocument.into();
        assert!(matches!(err, FormatError::Core(_)));
        assert!(err.to_string().contains("document error"));
    }

    #[test]
    fn source_is_exposed_for_core_errors() {
        use std::error::Error;
        let err: FormatError = CoreError::EmptyDocument.into();
        assert!(err.source().is_some());
        assert!(FormatError::UnexpectedEof.source().is_none());
    }
}
