//! Error types for the CMIF interchange format.

use std::fmt;

use cmif_core::error::CoreError;

/// Result alias used throughout `cmif-format`.
pub type Result<T> = std::result::Result<T, FormatError>;

/// A position in the source text (1-based line and column).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Position {
    /// 1-based line number.
    pub line: u32,
    /// 1-based column number.
    pub column: u32,
}

impl Position {
    /// Creates a position.
    pub fn new(line: u32, column: u32) -> Position {
        Position { line, column }
    }
}

impl fmt::Display for Position {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.line, self.column)
    }
}

/// Errors raised while reading or writing the interchange format.
#[derive(Debug, Clone, PartialEq)]
pub enum FormatError {
    /// An unexpected character was found while tokenizing.
    UnexpectedChar {
        /// The offending character.
        found: char,
        /// Where it was found.
        at: Position,
    },
    /// A string literal was not terminated before the end of input.
    UnterminatedString {
        /// Where the string started.
        at: Position,
    },
    /// A numeric literal could not be parsed.
    BadNumber {
        /// The literal text.
        text: String,
        /// Where it was found.
        at: Position,
    },
    /// A closing parenthesis had no matching opening parenthesis, or the
    /// input ended with unclosed lists.
    UnbalancedParens {
        /// Where the imbalance was detected.
        at: Position,
    },
    /// The input ended before a complete expression was read.
    UnexpectedEof,
    /// Extra content was found after the top-level document expression.
    TrailingContent {
        /// Where the extra content begins.
        at: Position,
    },
    /// An expression did not have the shape the parser expected.
    Malformed {
        /// What the parser was parsing.
        context: &'static str,
        /// Description of what went wrong.
        message: String,
        /// Where the offending expression begins.
        at: Position,
    },
    /// The document violated a core structural rule while being assembled.
    Core(CoreError),
}

impl fmt::Display for FormatError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FormatError::UnexpectedChar { found, at } => {
                write!(f, "{at}: unexpected character `{found}`")
            }
            FormatError::UnterminatedString { at } => {
                write!(f, "{at}: unterminated string literal")
            }
            FormatError::BadNumber { text, at } => {
                write!(f, "{at}: malformed number `{text}`")
            }
            FormatError::UnbalancedParens { at } => {
                write!(f, "{at}: unbalanced parentheses")
            }
            FormatError::UnexpectedEof => write!(f, "unexpected end of input"),
            FormatError::TrailingContent { at } => {
                write!(f, "{at}: trailing content after the document expression")
            }
            FormatError::Malformed { context, message, at } => {
                write!(f, "{at}: malformed {context}: {message}")
            }
            FormatError::Core(e) => write!(f, "document error: {e}"),
        }
    }
}

impl std::error::Error for FormatError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            FormatError::Core(e) => Some(e),
            _ => None,
        }
    }
}

impl From<CoreError> for FormatError {
    fn from(e: CoreError) -> Self {
        FormatError::Core(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn position_display() {
        assert_eq!(Position::new(3, 14).to_string(), "3:14");
    }

    #[test]
    fn error_display_includes_position() {
        let err = FormatError::UnexpectedChar { found: '%', at: Position::new(2, 7) };
        assert!(err.to_string().contains("2:7"));
        assert!(err.to_string().contains('%'));
    }

    #[test]
    fn core_errors_are_wrapped() {
        let err: FormatError = CoreError::EmptyDocument.into();
        assert!(matches!(err, FormatError::Core(_)));
        assert!(err.to_string().contains("document error"));
    }

    #[test]
    fn source_is_exposed_for_core_errors() {
        use std::error::Error;
        let err: FormatError = CoreError::EmptyDocument.into();
        assert!(err.source().is_some());
        assert!(FormatError::UnexpectedEof.source().is_none());
    }
}
