//! # cmif-format — the human-readable CMIF interchange format
//!
//! The paper stresses twice (§5, §6) that the CMIF document tree "is a
//! human-readable document that can be passed from one location to another
//! with or without the underlying data". This crate is that textual form:
//!
//! * [`writer::write_document`] serializes a [`cmif_core::tree::Document`]
//!   into a parenthesized, commented, diff-friendly text;
//! * [`parser::parse_document`] reads it back, rebuilding the channel and
//!   style dictionaries, the descriptor catalog, the node tree and the
//!   synchronization arcs;
//! * [`treeview`] renders the "conventional" and "embedded" tree views of
//!   Figure 5 and the per-channel columns of Figures 3 and 10.
//!
//! The format is intentionally small: s-expressions with identifiers,
//! numbers, strings and `&ref`s (see [`lexer`] and [`sexpr`]). Parsing a
//! document never touches media data — exactly the transportability
//! property the paper is after.
//!
//! ```
//! use cmif_format::{parse_document, write_document};
//!
//! # fn main() -> Result<(), cmif_format::FormatError> {
//! let source = r#"
//! (cmif
//!   (channels (channel caption text))
//!   (seq (name demo)
//!     (imm (name hello) (channel caption) (duration 1000)
//!       (data "Hello, CMIF"))))
//! "#;
//! let doc = parse_document(source)?;
//! let text = write_document(&doc)?;
//! let again = parse_document(&text)?;
//! assert_eq!(doc.leaves().len(), again.leaves().len());
//! # Ok(()) }
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod error;
pub mod lexer;
pub mod parser;
pub mod sexpr;
pub mod treeview;
pub mod writer;

pub use error::{FormatError, Position, Result, Span};
pub use parser::{parse_document, parse_document_unvalidated};
pub use treeview::{channel_view, conventional_view, embedded_view};
pub use writer::{write_arc, write_document};
