//! # cmif-format — the human-readable CMIF interchange format
//!
//! The paper stresses twice (§5, §6) that the CMIF document tree "is a
//! human-readable document that can be passed from one location to another
//! with or without the underlying data". This crate is that textual form:
//!
//! * [`writer::write_document`] serializes a [`cmif_core::tree::Document`]
//!   into a parenthesized, commented, diff-friendly text;
//! * [`parser::parse_document`] reads it back, rebuilding the channel and
//!   style dictionaries, the descriptor catalog, the node tree and the
//!   synchronization arcs;
//! * [`treeview`] renders the "conventional" and "embedded" tree views of
//!   Figure 5 and the per-channel columns of Figures 3 and 10.
//!
//! The format is intentionally small: s-expressions with identifiers,
//! numbers, strings and `&ref`s (see [`lexer`] and [`sexpr`]). Parsing a
//! document never touches media data — exactly the transportability
//! property the paper is after.
//!
//! Next to the text form lives the **binary wire form** ([`binary`]): a
//! versioned, checksummed, length-prefixed encoding of the same document
//! model that round-trips exactly with the canonical text. The [`wire`]
//! module ties the two together behind one [`WireFormat`] interface with
//! auto-detection by magic bytes, so transports never need to know which
//! form a peer sent.
//!
//! ```
//! use cmif_format::{parse_document, write_document};
//!
//! # fn main() -> Result<(), cmif_format::FormatError> {
//! let source = r#"
//! (cmif
//!   (channels (channel caption text))
//!   (seq (name demo)
//!     (imm (name hello) (channel caption) (duration 1000)
//!       (data "Hello, CMIF"))))
//! "#;
//! let doc = parse_document(source)?;
//! let text = write_document(&doc)?;
//! let again = parse_document(&text)?;
//! assert_eq!(doc.leaves().len(), again.leaves().len());
//! # Ok(()) }
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod binary;
pub mod error;
pub mod lexer;
pub mod parser;
pub mod sexpr;
pub mod treeview;
pub mod wire;
pub mod writer;

/// The deepest nesting either decoder will follow before raising
/// [`FormatError::TooDeep`].
///
/// Shared by the text reader (parenthesis depth) and the binary decoder
/// (node/value recursion): a depth bomb in either form becomes a typed
/// error instead of a stack overflow. 128 levels is far beyond any real
/// document — the paper's deepest example nests 4.
pub const MAX_NESTING: usize = 128;

pub use binary::{decode_document, decode_document_unvalidated, encode_document_to};
pub use error::{FormatError, Position, Result, Span};
pub use parser::{parse_document, parse_document_unvalidated};
pub use treeview::{channel_view, conventional_view, embedded_view};
pub use wire::{document_to_bytes, read_document_bytes, WireDocument, WireEncoding, WireFormat};
pub use writer::{write_arc, write_document, write_document_to};
