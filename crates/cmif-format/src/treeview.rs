//! Textual views of the CMIF tree (Figure 5) and of the channel layout
//! (Figure 3 / Figure 10).
//!
//! Figure 5 of the paper shows the same document tree twice: as a
//! "conventional" collection of nodes and branches and as an "embedded"
//! structure (nested boxes). [`conventional_view`] and [`embedded_view`]
//! render both forms as plain text so that tools (and the benches that
//! regenerate the figure) can display a document's structure without
//! touching any media data. [`channel_view`] renders the per-channel event
//! columns of Figures 3 and 10.

use cmif_core::descriptor::DescriptorResolver;
use cmif_core::error::Result;
use cmif_core::node::{NodeId, NodeKind};
use cmif_core::tree::Document;

/// Renders the tree in "conventional" form: one node per line, with
/// box-drawing branches, much like a directory listing.
pub fn conventional_view(doc: &Document) -> Result<String> {
    let mut out = String::new();
    let root = doc.root()?;
    render_conventional(doc, root, "", true, true, &mut out)?;
    Ok(out)
}

fn render_conventional(
    doc: &Document,
    id: NodeId,
    prefix: &str,
    is_last: bool,
    is_root: bool,
    out: &mut String,
) -> Result<()> {
    let node = doc.node(id)?;
    let label = node_label(doc, id)?;
    if is_root {
        out.push_str(&label);
        out.push('\n');
    } else {
        out.push_str(prefix);
        out.push_str(if is_last { "`-- " } else { "|-- " });
        out.push_str(&label);
        out.push('\n');
    }
    let child_prefix = if is_root {
        String::new()
    } else {
        format!("{prefix}{}", if is_last { "    " } else { "|   " })
    };
    let children = node.children.clone();
    for (i, child) in children.iter().enumerate() {
        render_conventional(
            doc,
            *child,
            &child_prefix,
            i + 1 == children.len(),
            false,
            out,
        )?;
    }
    Ok(())
}

/// Renders the tree in "embedded" form: nested brackets with indentation,
/// the structure-editor style of Figure 5(b).
pub fn embedded_view(doc: &Document) -> Result<String> {
    let mut out = String::new();
    let root = doc.root()?;
    render_embedded(doc, root, 0, &mut out)?;
    Ok(out)
}

fn render_embedded(doc: &Document, id: NodeId, depth: usize, out: &mut String) -> Result<()> {
    let node = doc.node(id)?;
    let indent = "  ".repeat(depth);
    let label = node_label(doc, id)?;
    if node.kind.is_leaf() {
        out.push_str(&format!("{indent}[{label}]\n"));
    } else {
        out.push_str(&format!("{indent}[{label}\n"));
        let children = node.children.clone();
        for child in children {
            render_embedded(doc, child, depth + 1, out)?;
        }
        out.push_str(&format!("{indent}]\n"));
    }
    Ok(())
}

/// Renders the per-channel event columns of Figures 3 and 10: one column
/// per declared channel, events listed top-to-bottom in document order.
pub fn channel_view(doc: &Document, resolver: &dyn DescriptorResolver) -> Result<String> {
    let mut out = String::new();
    let groups = doc.leaves_by_channel()?;
    // Preserve the channel dictionary's declaration order, then any
    // channels that only appear on nodes.
    let mut channel_order: Vec<cmif_core::symbol::Symbol> =
        doc.channels.iter().map(|c| c.name).collect();
    // Node-only channels follow the declared ones alphabetically (the
    // groups map iterates in intern order, which is not stable output).
    let mut undeclared: Vec<cmif_core::symbol::Symbol> = groups
        .keys()
        .filter(|name| !channel_order.contains(name))
        .copied()
        .collect();
    undeclared.sort_by_key(|name| name.as_str());
    channel_order.extend(undeclared);
    for channel in channel_order {
        let leaves = match groups.get(&channel) {
            Some(leaves) => leaves,
            None => continue,
        };
        out.push_str(&format!("channel {channel}:\n"));
        for leaf in leaves {
            let label = node_label(doc, *leaf)?;
            let duration = doc
                .duration_of(*leaf, resolver)?
                .map(|d| d.to_string())
                .unwrap_or_else(|| "?".to_string());
            out.push_str(&format!("  {label:<32} {duration}\n"));
        }
    }
    Ok(out)
}

/// One-line label for a node: kind, name, and leaf target.
fn node_label(doc: &Document, id: NodeId) -> Result<String> {
    let node = doc.node(id)?;
    let name = node.name().unwrap_or("(unnamed)");
    let detail = match &node.kind {
        NodeKind::Ext => match doc.file_of(id)? {
            Some(file) => format!(" -> {file}"),
            None => " -> ?".to_string(),
        },
        NodeKind::Imm(data) => format!(" ({} bytes inline)", data.len()),
        _ => String::new(),
    };
    Ok(format!("{} {}{}", node.kind.keyword(), name, detail))
}

#[cfg(test)]
mod tests {
    use super::*;
    use cmif_core::prelude::*;

    fn doc() -> Document {
        DocumentBuilder::new("news")
            .channel("audio", MediaKind::Audio)
            .channel("caption", MediaKind::Text)
            .descriptor(
                DataDescriptor::new("voice", MediaKind::Audio, "pcm8")
                    .with_duration(TimeMs::from_secs(5)),
            )
            .root_seq(|news| {
                news.par("story-1", |scene| {
                    scene.ext("speech", "audio", "voice");
                    scene.imm_text("line", "caption", "hello", 2000);
                });
                news.par("story-2", |scene| {
                    scene.ext("speech", "audio", "voice");
                });
            })
            .build()
            .unwrap()
    }

    #[test]
    fn conventional_view_shows_every_node() {
        let view = conventional_view(&doc()).unwrap();
        assert!(view.contains("seq news"));
        assert!(view.contains("|-- par story-1"));
        assert!(view.contains("`-- par story-2"));
        assert!(view.contains("ext speech -> voice"));
        assert!(view.contains("imm line"));
        assert_eq!(view.lines().count(), 6);
    }

    #[test]
    fn embedded_view_nests_brackets() {
        let view = embedded_view(&doc()).unwrap();
        assert!(view.starts_with("[seq news"));
        assert!(view.contains("  [par story-1"));
        assert!(view.contains("    [ext speech -> voice]"));
        // Opening and closing brackets balance.
        let opens = view.matches('[').count();
        let closes = view.matches(']').count();
        assert_eq!(opens, closes);
    }

    #[test]
    fn channel_view_groups_by_channel_in_dictionary_order() {
        let d = doc();
        let view = channel_view(&d, &d.catalog).unwrap();
        let audio_pos = view.find("channel audio:").unwrap();
        let caption_pos = view.find("channel caption:").unwrap();
        assert!(audio_pos < caption_pos);
        assert_eq!(view.matches("ext speech").count(), 2);
        assert!(view.contains("2s"));
        assert!(view.contains("5s"));
    }

    #[test]
    fn views_fail_on_empty_documents() {
        let empty = Document::new();
        assert!(conventional_view(&empty).is_err());
        assert!(embedded_view(&empty).is_err());
    }
}
