//! Parser: reads the human-readable interchange form back into a
//! [`Document`].
//!
//! The grammar accepted here is exactly what [`crate::writer`] produces,
//! plus the usual freedoms of an s-expression syntax (whitespace, comments,
//! section order). The parser validates delay windows and rebuilds the
//! channel dictionary, style dictionary and descriptor catalog, but does
//! *not* run the full structural validator — callers decide whether a
//! freshly transported document must already be presentable
//! ([`parse_document`] vs [`parse_document_unvalidated`]).

use cmif_core::arc::{Anchor, Strictness, SyncArc};
use cmif_core::attr::{Attr, AttrName};
use cmif_core::channel::{ChannelDef, MediaKind};
use cmif_core::descriptor::{DataDescriptor, ResourceNeeds};
use cmif_core::diag::SourceMap;
use cmif_core::node::{NodeId, NodeKind};
use cmif_core::path::NodePath;
use cmif_core::style::StyleDef;
use cmif_core::symbol::Symbol;
use cmif_core::time::{DelayMs, MaxDelay, MediaTime, MediaUnit, RateInfo, TimeMs};
use cmif_core::tree::Document;
use cmif_core::validate;
use cmif_core::value::AttrValue;

use crate::error::{FormatError, Result};
use crate::sexpr::{read_one, SExpr, SExprKind};
use crate::writer::hex_decode;

/// Parses a document and runs the structural validator on the result.
pub fn parse_document(source: &str) -> Result<Document> {
    let doc = parse_document_unvalidated(source)?;
    validate::validate(&doc)?;
    Ok(doc)
}

/// Parses a document without running the structural validator.
///
/// Useful for tools that operate on partial documents (e.g. a constraint
/// filter inspecting a document whose media channels the local device cannot
/// support).
pub fn parse_document_unvalidated(source: &str) -> Result<Document> {
    let expr = read_one(source)?;
    let (tag, body) = expr
        .as_tagged()
        .ok_or_else(|| expr.malformed("document", "expected a (cmif ...) expression"))?;
    if tag != "cmif" {
        return Err(expr.malformed("document", format!("expected tag `cmif`, found `{tag}`")));
    }

    let mut doc = Document::new();
    let mut sources = SourceMap::new(source);
    let mut root_expr = None;
    for section in body {
        let (section_tag, items) = section
            .as_tagged()
            .ok_or_else(|| section.malformed("section", "expected a tagged list"))?;
        match section_tag {
            "meta" => parse_meta(&mut doc, items)?,
            "channels" => parse_channels(&mut doc, items)?,
            "styles" => parse_styles(&mut doc, items)?,
            "descriptors" => parse_descriptors(&mut doc, items)?,
            "seq" | "par" | "ext" | "imm" => {
                if root_expr.is_some() {
                    return Err(section.malformed("document", "multiple root nodes"));
                }
                root_expr = Some(section);
            }
            other => return Err(section.malformed("section", format!("unknown section `{other}`"))),
        }
    }

    let root_expr = root_expr.ok_or(FormatError::UnexpectedEof)?;
    parse_node(&mut doc, &mut sources, None, root_expr)?;
    doc.sources = Some(std::sync::Arc::new(sources));
    Ok(doc)
}

fn parse_meta(doc: &mut Document, items: &[SExpr]) -> Result<()> {
    for item in items {
        let list = item
            .as_list()
            .ok_or_else(|| item.malformed("meta entry", "expected a (key value) pair"))?;
        if list.len() != 2 {
            return Err(item.malformed("meta entry", "expected exactly a key and a value"));
        }
        let key = list[0]
            .as_text()
            .ok_or_else(|| item.malformed("meta entry", "key must be an identifier"))?;
        doc.meta.insert(key.to_string(), expr_to_value(&list[1]));
    }
    Ok(())
}

fn parse_channels(doc: &mut Document, items: &[SExpr]) -> Result<()> {
    for item in items {
        let (tag, body) = item
            .as_tagged()
            .ok_or_else(|| item.malformed("channel", "expected (channel name medium ...)"))?;
        if tag != "channel" || body.len() < 2 {
            return Err(item.malformed("channel", "expected (channel name medium ...)"));
        }
        let name = body[0]
            .as_text()
            .ok_or_else(|| item.malformed("channel", "channel name must be text"))?;
        let medium_text = body[1]
            .as_text()
            .ok_or_else(|| item.malformed("channel", "channel medium must be an identifier"))?;
        let medium = MediaKind::parse(medium_text)
            .ok_or_else(|| item.malformed("channel", format!("unknown medium `{medium_text}`")))?;
        let mut def = ChannelDef::new(name, medium);
        for extra in &body[2..] {
            let pair = extra
                .as_list()
                .ok_or_else(|| extra.malformed("channel", "extras must be (key value) pairs"))?;
            if pair.len() != 2 {
                return Err(extra.malformed("channel", "extras must be (key value) pairs"));
            }
            let key = pair[0]
                .as_text()
                .ok_or_else(|| extra.malformed("channel", "extra key must be an identifier"))?;
            def = def.with_extra(Symbol::intern(key), expr_to_value(&pair[1]));
        }
        doc.channels.define(def)?;
    }
    Ok(())
}

fn parse_styles(doc: &mut Document, items: &[SExpr]) -> Result<()> {
    for item in items {
        let (tag, body) = item
            .as_tagged()
            .ok_or_else(|| item.malformed("style", "expected (style name ...)"))?;
        if tag != "style" || body.is_empty() {
            return Err(item.malformed("style", "expected (style name ...)"));
        }
        let name = body[0]
            .as_text()
            .ok_or_else(|| item.malformed("style", "style name must be text"))?;
        let mut def = StyleDef::new(name);
        for part in &body[1..] {
            let (part_tag, part_body) = part
                .as_tagged()
                .ok_or_else(|| part.malformed("style", "expected (parents ...) or (attrs ...)"))?;
            match part_tag {
                "parents" => {
                    for parent in part_body {
                        let parent_name = parent.as_text().ok_or_else(|| {
                            parent.malformed("style", "parent names must be identifiers")
                        })?;
                        def = def.with_parent(parent_name);
                    }
                }
                "attrs" => {
                    for attr_expr in part_body {
                        let pair = attr_expr.as_list().ok_or_else(|| {
                            attr_expr.malformed("style", "attrs must be (name value) pairs")
                        })?;
                        if pair.is_empty() {
                            return Err(
                                attr_expr.malformed("style", "attrs must be (name value) pairs")
                            );
                        }
                        let attr_name = pair[0].as_text().ok_or_else(|| {
                            attr_expr.malformed("style", "attribute name must be an identifier")
                        })?;
                        let value = tail_to_value(&pair[1..]);
                        def = def.with_attr(Attr::new(AttrName::parse(attr_name), value));
                    }
                }
                other => {
                    return Err(part.malformed("style", format!("unknown style part `{other}`")))
                }
            }
        }
        doc.styles.define(def)?;
    }
    Ok(())
}

fn parse_descriptors(doc: &mut Document, items: &[SExpr]) -> Result<()> {
    for item in items {
        let (tag, body) = item.as_tagged().ok_or_else(|| {
            item.malformed("descriptor", "expected (descriptor key medium format ...)")
        })?;
        if tag != "descriptor" || body.len() < 3 {
            return Err(item.malformed("descriptor", "expected (descriptor key medium format ...)"));
        }
        let key = body[0]
            .as_text()
            .ok_or_else(|| item.malformed("descriptor", "descriptor key must be text"))?;
        let medium_text = body[1]
            .as_text()
            .ok_or_else(|| item.malformed("descriptor", "medium must be an identifier"))?;
        let medium = MediaKind::parse(medium_text).ok_or_else(|| {
            item.malformed("descriptor", format!("unknown medium `{medium_text}`"))
        })?;
        let format = body[2]
            .as_text()
            .ok_or_else(|| item.malformed("descriptor", "format must be text"))?;
        let mut descriptor = DataDescriptor::new(key, medium, format);
        let mut rates = RateInfo::NONE;
        let mut resources = ResourceNeeds::default();
        for field in &body[3..] {
            let (field_tag, field_body) = field
                .as_tagged()
                .ok_or_else(|| field.malformed("descriptor", "fields must be tagged lists"))?;
            match field_tag {
                "size" => descriptor.size_bytes = number_at(field, field_body, 0)? as u64,
                "duration" => {
                    descriptor.duration =
                        Some(TimeMs::from_millis(number_at(field, field_body, 0)?))
                }
                "resolution" => {
                    descriptor.resolution = Some((
                        number_at(field, field_body, 0)? as u32,
                        number_at(field, field_body, 1)? as u32,
                    ))
                }
                "color_depth" => {
                    descriptor.color_depth = Some(number_at(field, field_body, 0)? as u8)
                }
                "fps" => {
                    let value = field_body
                        .first()
                        .and_then(|e| match e.kind {
                            SExprKind::Real(x) => Some(x),
                            SExprKind::Number(n) => Some(n as f64),
                            _ => None,
                        })
                        .ok_or_else(|| field.malformed("descriptor", "fps needs a number"))?;
                    rates.frames_per_second = Some(value);
                }
                "sample_rate" => {
                    rates.samples_per_second = Some(number_at(field, field_body, 0)? as u32)
                }
                "byte_rate" => {
                    rates.bytes_per_second = Some(number_at(field, field_body, 0)? as u64)
                }
                "resources" => {
                    resources = ResourceNeeds {
                        bandwidth_bps: number_at(field, field_body, 0)? as u64,
                        decode_cost: number_at(field, field_body, 1)? as u32,
                        memory_bytes: number_at(field, field_body, 2)? as u64,
                    }
                }
                "location" => {
                    let text = field_body
                        .first()
                        .and_then(SExpr::as_text)
                        .ok_or_else(|| field.malformed("descriptor", "location needs text"))?;
                    descriptor.location = Some(text.to_string());
                }
                "extra" => {
                    for pair_expr in field_body {
                        let pair = pair_expr.as_list().ok_or_else(|| {
                            pair_expr.malformed("descriptor", "extra must be (key value) pairs")
                        })?;
                        if pair.len() != 2 {
                            return Err(pair_expr
                                .malformed("descriptor", "extra must be (key value) pairs"));
                        }
                        let extra_key = pair[0].as_text().ok_or_else(|| {
                            pair_expr.malformed("descriptor", "extra key must be an identifier")
                        })?;
                        descriptor
                            .extra
                            .insert(Symbol::intern(extra_key), expr_to_value(&pair[1]));
                    }
                }
                other => {
                    return Err(field.malformed("descriptor", format!("unknown field `{other}`")))
                }
            }
        }
        descriptor.rates = rates;
        descriptor.resources = resources;
        doc.catalog.register(descriptor)?;
    }
    Ok(())
}

fn parse_node(
    doc: &mut Document,
    sources: &mut SourceMap,
    parent: Option<NodeId>,
    expr: &SExpr,
) -> Result<NodeId> {
    let (tag, body) = expr
        .as_tagged()
        .ok_or_else(|| expr.malformed("node", "expected a (seq|par|ext|imm ...) list"))?;

    // Immediate nodes need their payload before the node can be allocated,
    // so scan for it first.
    let kind = match tag {
        "seq" => NodeKind::Seq,
        "par" => NodeKind::Par,
        "ext" => NodeKind::Ext,
        "imm" => {
            let mut data = cmif_core::node::ImmediateData::Text(String::new());
            for item in body {
                if let Some((item_tag, item_body)) = item.as_tagged() {
                    match item_tag {
                        "data" => {
                            let text = item_body
                                .first()
                                .and_then(SExpr::as_text)
                                .ok_or_else(|| item.malformed("imm node", "data needs text"))?;
                            data = cmif_core::node::ImmediateData::Text(text.to_string());
                        }
                        "bindata" => {
                            let text =
                                item_body.first().and_then(SExpr::as_text).ok_or_else(|| {
                                    item.malformed("imm node", "bindata needs a hex string")
                                })?;
                            let bytes = hex_decode(text).ok_or_else(|| {
                                item.malformed("imm node", "bindata is not valid hex")
                            })?;
                            data = cmif_core::node::ImmediateData::Binary(bytes);
                        }
                        _ => {}
                    }
                }
            }
            NodeKind::Imm(data)
        }
        other => return Err(expr.malformed("node", format!("unknown node kind `{other}`"))),
    };

    let id = match parent {
        Some(parent) => doc.add_child(parent, kind)?,
        None => doc.set_root(kind),
    };
    sources.set_node(id, expr.span);

    for item in body {
        let (item_tag, item_body) = item
            .as_tagged()
            .ok_or_else(|| item.malformed("node item", "expected a tagged list"))?;
        match item_tag {
            "seq" | "par" | "ext" | "imm" => {
                parse_node(doc, sources, Some(id), item)?;
            }
            "data" | "bindata" => {
                // Already handled while determining the node kind.
            }
            "sync_arc" => {
                let arc = parse_arc(item, item_body)?;
                doc.add_arc(id, arc)?;
                // Aligned with `doc.arcs()` order: one push per added arc.
                sources.push_arc(item.span);
            }
            attr_name => {
                let value = tail_to_value(item_body);
                doc.set_attr(id, AttrName::parse(attr_name), value)?;
            }
        }
    }
    Ok(id)
}

fn parse_arc(expr: &SExpr, body: &[SExpr]) -> Result<SyncArc> {
    if body.len() != 9 {
        return Err(expr.malformed(
            "sync_arc",
            "expected anchor strictness source-anchor source offset unit destination min max",
        ));
    }
    let anchor_text = body[0]
        .as_text()
        .ok_or_else(|| expr.malformed("sync_arc", "anchor must be begin or end"))?;
    let anchor = Anchor::parse(anchor_text)
        .ok_or_else(|| expr.malformed("sync_arc", format!("unknown anchor `{anchor_text}`")))?;
    let strict_text = body[1]
        .as_text()
        .ok_or_else(|| expr.malformed("sync_arc", "strictness must be must or may"))?;
    let strictness = Strictness::parse(strict_text)
        .ok_or_else(|| expr.malformed("sync_arc", format!("unknown strictness `{strict_text}`")))?;
    let source_anchor_text = body[2]
        .as_text()
        .ok_or_else(|| expr.malformed("sync_arc", "source anchor must be begin or end"))?;
    let source_anchor = Anchor::parse(source_anchor_text).ok_or_else(|| {
        expr.malformed("sync_arc", format!("unknown anchor `{source_anchor_text}`"))
    })?;
    let source = body[3]
        .as_text()
        .ok_or_else(|| expr.malformed("sync_arc", "source must be a path"))?;
    let offset_value = body[4]
        .as_number()
        .ok_or_else(|| expr.malformed("sync_arc", "offset must be a number"))?;
    let unit_text = body[5]
        .as_text()
        .ok_or_else(|| expr.malformed("sync_arc", "offset unit must be an identifier"))?;
    let unit = parse_unit(unit_text)
        .ok_or_else(|| expr.malformed("sync_arc", format!("unknown unit `{unit_text}`")))?;
    let destination = body[6]
        .as_text()
        .ok_or_else(|| expr.malformed("sync_arc", "destination must be a path"))?;
    let min_delay = body[7]
        .as_number()
        .ok_or_else(|| expr.malformed("sync_arc", "min delay must be a number"))?;
    let max_delay = match (&body[8].kind, body[8].as_number()) {
        (SExprKind::Ident(word), _) if *word == "inf" => MaxDelay::Unbounded,
        (_, Some(ms)) => MaxDelay::Bounded(DelayMs::from_millis(ms)),
        _ => return Err(expr.malformed("sync_arc", "max delay must be a number or `inf`")),
    };
    Ok(SyncArc {
        anchor,
        strictness,
        source_anchor,
        source: NodePath::parse(source),
        offset: MediaTime {
            value: offset_value,
            unit,
        },
        destination: NodePath::parse(destination),
        min_delay: DelayMs::from_millis(min_delay),
        max_delay,
    })
}

fn parse_unit(text: &str) -> Option<MediaUnit> {
    match text {
        "ms" | "milliseconds" => Some(MediaUnit::Milliseconds),
        "s" | "seconds" => Some(MediaUnit::Seconds),
        "frames" | "frame" => Some(MediaUnit::Frames),
        "samples" | "sample" => Some(MediaUnit::Samples),
        "bytes" | "byte" => Some(MediaUnit::Bytes),
        _ => None,
    }
}

fn number_at(expr: &SExpr, body: &[SExpr], index: usize) -> Result<i64> {
    body.get(index)
        .and_then(SExpr::as_number)
        .ok_or_else(|| expr.malformed("descriptor", "expected a numeric field"))
}

/// Converts a single expression into an attribute value. Identifiers and
/// references intern straight from the borrowed source text — no
/// intermediate `String` per token.
fn expr_to_value(expr: &SExpr) -> AttrValue {
    match &expr.kind {
        SExprKind::Ident(s) => AttrValue::Id(Symbol::intern(s)),
        SExprKind::Number(n) => AttrValue::Number(*n),
        SExprKind::Real(x) => AttrValue::Real(*x),
        SExprKind::Str(s) => AttrValue::Str(s.clone().into_owned()),
        SExprKind::Ref(s) => AttrValue::Ref(Symbol::intern(s)),
        SExprKind::List(items) => AttrValue::List(items.iter().map(expr_to_value).collect()),
    }
}

/// Converts an attribute tail (everything after the name) into a value:
/// a single expression stays scalar, several become a list.
fn tail_to_value(tail: &[SExpr]) -> AttrValue {
    match tail.len() {
        0 => AttrValue::List(Vec::new()),
        1 => expr_to_value(&tail[0]),
        _ => AttrValue::List(tail.iter().map(expr_to_value).collect()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::writer::write_document;
    use cmif_core::prelude::*;

    const SMALL: &str = r#"
    ; A miniature news document.
    (cmif
      (meta (author "CWI") (year 1991))
      (channels
        (channel audio audio)
        (channel caption text (language en)))
      (styles
        (style base (attrs (duration 1000)))
        (style caption-style (parents base) (attrs (channel caption))))
      (descriptors
        (descriptor story-audio audio pcm8 (size 64000) (duration 8000)
          (sample_rate 8000) (byte_rate 8000) (location "store://host/a")))
      (seq (name news)
        (par (name story-1)
          (ext (name voice) (channel audio) (file "story-audio"))
          (imm (name line) (channel caption) (duration 3000)
            (sync_arc begin must begin "../voice" 0 ms "" 0 250)
            (data "Gestolen van Goghs")))))
    "#;

    #[test]
    fn parses_a_complete_document() {
        let doc = parse_document(SMALL).unwrap();
        assert_eq!(doc.meta["author"].as_text(), Some("CWI"));
        assert_eq!(doc.meta["year"].as_number(), Some(1991));
        assert_eq!(doc.channels.len(), 2);
        assert_eq!(doc.styles.len(), 2);
        assert_eq!(doc.catalog.len(), 1);
        assert_eq!(doc.leaves().len(), 2);
        let voice = doc.find("/story-1/voice").unwrap();
        assert_eq!(
            doc.channel_of(voice).unwrap().map(|s| s.as_str()),
            Some("audio")
        );
        let line = doc.find("/story-1/line").unwrap();
        assert_eq!(
            doc.duration_of(line, &doc.catalog).unwrap(),
            Some(TimeMs::from_millis(3000))
        );
        assert_eq!(doc.arcs().len(), 1);
        let descriptor = doc.catalog.get("story-audio").unwrap();
        assert_eq!(descriptor.rates.samples_per_second, Some(8000));
    }

    #[test]
    fn parsing_records_node_and_arc_provenance() {
        let doc = parse_document(SMALL).unwrap();
        let sources = doc.sources.as_deref().expect("parsed docs carry sources");
        // Every reachable node has a recorded span that slices a node
        // expression of the right kind back out of the source.
        for id in doc.preorder() {
            let span = sources.node_span(id).expect("every node has a span");
            let text = span.text(sources.text()).expect("span inside the source");
            assert!(text.starts_with('('), "node span starts at its paren");
            assert!(text.ends_with(')'), "node span ends at its paren");
        }
        let voice = doc.find("/story-1/voice").unwrap();
        let span = sources.node_span(voice).unwrap();
        assert!(span.text(sources.text()).unwrap().contains("story-audio"));
        // The one arc's span covers exactly its (sync_arc ...) expression.
        let arc_span = sources.arc_span(0).expect("arc provenance recorded");
        let arc_text = arc_span.text(sources.text()).unwrap();
        assert!(arc_text.starts_with("(sync_arc"));
        assert!(arc_text.ends_with("250)"));
        assert_eq!(sources.arc_span(1), None);
    }

    #[test]
    fn built_documents_have_no_sources() {
        let doc = Document::with_root(NodeKind::Seq);
        assert!(doc.sources.is_none());
    }

    #[test]
    fn immediate_text_payload_is_preserved() {
        let doc = parse_document(SMALL).unwrap();
        let line = doc.find("/story-1/line").unwrap();
        match &doc.node(line).unwrap().kind {
            NodeKind::Imm(ImmediateData::Text(text)) => {
                assert_eq!(text, "Gestolen van Goghs");
            }
            other => panic!("unexpected node kind {other:?}"),
        }
    }

    #[test]
    fn binary_immediate_data_round_trips() {
        let source = r#"
        (cmif
          (channels (channel label label))
          (par (name root)
            (imm (name blob) (channel label) (duration 100)
              (bindata "00ff10"))))
        "#;
        let doc = parse_document(source).unwrap();
        let blob = doc.find("/blob").unwrap();
        match &doc.node(blob).unwrap().kind {
            NodeKind::Imm(ImmediateData::Binary(bytes)) => assert_eq!(bytes, &vec![0u8, 255, 16]),
            other => panic!("unexpected node kind {other:?}"),
        }
        let text = write_document(&doc).unwrap();
        let again = parse_document(&text).unwrap();
        assert_eq!(
            doc.node(blob).unwrap().kind,
            again.node(again.find("/blob").unwrap()).unwrap().kind
        );
    }

    #[test]
    fn arc_fields_are_parsed() {
        let doc = parse_document(SMALL).unwrap();
        let (carrier, arc) = &doc.arcs()[0];
        assert_eq!(*carrier, doc.find("/story-1/line").unwrap());
        assert_eq!(arc.anchor, Anchor::Begin);
        assert_eq!(arc.strictness, Strictness::Must);
        assert_eq!(arc.source.to_string(), "../voice");
        assert!(arc.destination.is_current());
        assert_eq!(arc.max_delay, MaxDelay::Bounded(DelayMs::from_millis(250)));
    }

    #[test]
    fn rejects_wrong_top_level_tag() {
        assert!(parse_document("(html (body))").is_err());
        assert!(parse_document("42").is_err());
    }

    #[test]
    fn rejects_unknown_sections_and_node_kinds() {
        assert!(parse_document("(cmif (bogus) (seq (name x)))").is_err());
        assert!(parse_document("(cmif (loop (name x)))").is_err());
    }

    #[test]
    fn rejects_multiple_roots() {
        let source = "(cmif (seq (name a)) (seq (name b)))";
        assert!(parse_document(source).is_err());
    }

    #[test]
    fn rejects_document_without_root() {
        assert!(matches!(
            parse_document("(cmif (channels (channel a audio)))").unwrap_err(),
            FormatError::UnexpectedEof
        ));
    }

    #[test]
    fn validated_parse_rejects_dangling_channel() {
        let source = r#"
        (cmif
          (seq (name x)
            (imm (name y) (channel ghost) (duration 10) (data "t"))))
        "#;
        assert!(parse_document(source).is_err());
        assert!(parse_document_unvalidated(source).is_ok());
    }

    #[test]
    fn malformed_arc_is_rejected() {
        let source = r#"
        (cmif
          (channels (channel audio audio))
          (seq (name x)
            (imm (name y) (channel audio) (duration 10)
              (sync_arc begin must "" 0 ms "" 0 0)
              (data "t"))))
        "#;
        assert!(parse_document(source).is_err());
    }

    #[test]
    fn round_trip_write_then_parse() {
        let doc = parse_document(SMALL).unwrap();
        let text = write_document(&doc).unwrap();
        let again = parse_document(&text).unwrap();
        assert_eq!(doc.channels, again.channels);
        assert_eq!(doc.styles, again.styles);
        assert_eq!(doc.catalog, again.catalog);
        assert_eq!(doc.meta, again.meta);
        assert_eq!(doc.leaves().len(), again.leaves().len());
        assert_eq!(doc.arcs().len(), again.arcs().len());
        // The second generation must be textually stable.
        let text2 = write_document(&again).unwrap();
        assert_eq!(text, text2);
    }

    #[test]
    fn unit_spellings() {
        assert_eq!(parse_unit("ms"), Some(MediaUnit::Milliseconds));
        assert_eq!(parse_unit("s"), Some(MediaUnit::Seconds));
        assert_eq!(parse_unit("frames"), Some(MediaUnit::Frames));
        assert_eq!(parse_unit("samples"), Some(MediaUnit::Samples));
        assert_eq!(parse_unit("bytes"), Some(MediaUnit::Bytes));
        assert_eq!(parse_unit("furlongs"), None);
    }
}
