//! Binary wire codec: the compact interchange form of a CMIF document.
//!
//! The text form ([`crate::writer`]/[`crate::parser`]) is what humans read
//! and diff; this module is what machines ship. The same document model
//! round-trips *exactly* between the two: for any document,
//! `decode(encode(doc))` writes byte-identical canonical text.
//!
//! # Layout
//!
//! A 16-byte header, then one checksummed payload:
//!
//! ```text
//! offset  size  field
//! 0       4     magic  C3 'M' 'I' 'F'
//! 4       2     version, u16 LE (currently 1)
//! 6       2     flags, u16 LE (reserved, must be 0)
//! 8       4     payload length, u32 LE
//! 12      4     CRC-32/IEEE of the payload, u32 LE
//! 16      …     payload
//! ```
//!
//! The payload is a document-local **string table** (varint count, then
//! per entry a varint byte length and UTF-8 bytes) followed by
//! length-prefixed **sections** in ascending tag order: `1` meta,
//! `2` channels, `3` styles, `4` descriptors, `5` tree. Empty sections are
//! omitted; the tree section is required. Integers are LEB128 varints
//! (zigzag for signed), reals are IEEE-754 bit patterns, and every name or
//! path is a varint index into the string table — a `Symbol` never
//! serializes its text twice. See `docs/wire-format.md` for the field-level
//! grammar.
//!
//! # Hardening
//!
//! The decoder treats its input as hostile: every declared length and count
//! is capped against the bytes actually remaining *before* anything is
//! allocated, nesting is capped at [`crate::MAX_NESTING`], the checksum is
//! verified before the payload is interpreted, and every failure is a
//! [`FormatError`] carrying the byte span of the offending input — never a
//! panic, never an allocation larger than the input.

use std::collections::HashMap;
use std::io;

use cmif_core::arc::{Anchor, Strictness, SyncArc};
use cmif_core::attr::AttrName;
use cmif_core::channel::{ChannelDef, MediaKind};
use cmif_core::descriptor::{DataDescriptor, ResourceNeeds};
use cmif_core::node::{ImmediateData, NodeId, NodeKind};
use cmif_core::path::NodePath;
use cmif_core::style::StyleDef;
use cmif_core::symbol::Symbol;
use cmif_core::time::{DelayMs, MaxDelay, MediaTime, MediaUnit, RateInfo, TimeMs};
use cmif_core::tree::Document;
use cmif_core::validate;
use cmif_core::value::AttrValue;

use crate::error::{FormatError, Position, Result, Span};

/// The four magic bytes every binary document starts with. The first byte
/// is deliberately outside ASCII so no text document (which always starts
/// with `(`, whitespace or a `;` comment) can collide with it.
pub const MAGIC: [u8; 4] = [0xC3, b'M', b'I', b'F'];

/// The wire-format version this build reads and writes.
pub const VERSION: u16 = 1;

/// Size of the fixed header preceding the payload.
pub const HEADER_LEN: usize = 16;

const SEC_META: u8 = 1;
const SEC_CHANNELS: u8 = 2;
const SEC_STYLES: u8 = 3;
const SEC_DESCRIPTORS: u8 = 4;
const SEC_TREE: u8 = 5;

const VAL_ID: u8 = 0;
const VAL_NUMBER: u8 = 1;
const VAL_REAL: u8 = 2;
const VAL_STR: u8 = 3;
const VAL_REF: u8 = 4;
const VAL_LIST: u8 = 5;

const NODE_SEQ: u8 = 0;
const NODE_PAR: u8 = 1;
const NODE_EXT: u8 = 2;
const NODE_IMM_TEXT: u8 = 3;
const NODE_IMM_BINARY: u8 = 4;

const DESC_DURATION: u8 = 1 << 0;
const DESC_RESOLUTION: u8 = 1 << 1;
const DESC_COLOR_DEPTH: u8 = 1 << 2;
const DESC_FPS: u8 = 1 << 3;
const DESC_SAMPLE_RATE: u8 = 1 << 4;
const DESC_BYTE_RATE: u8 = 1 << 5;
const DESC_RESOURCES: u8 = 1 << 6;
const DESC_LOCATION: u8 = 1 << 7;

// ---------------------------------------------------------------------------
// CRC-32/IEEE
// ---------------------------------------------------------------------------

const CRC_TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
};

/// CRC-32/IEEE over `bytes` (the polynomial zlib and PNG use).
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for &b in bytes {
        c = CRC_TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

// ---------------------------------------------------------------------------
// Varints
// ---------------------------------------------------------------------------

fn write_varint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7F) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

// ---------------------------------------------------------------------------
// Encoder
// ---------------------------------------------------------------------------

/// Builds the document-local string table while sections serialize. Strings
/// are numbered in first-use order, so the encoding is deterministic for a
/// given document regardless of the process-global intern pool's history.
#[derive(Default)]
struct StringTable {
    strings: Vec<String>,
    index: HashMap<String, u64>,
}

impl StringTable {
    fn intern(&mut self, s: &str) -> u64 {
        if let Some(&i) = self.index.get(s) {
            return i;
        }
        let i = self.strings.len() as u64;
        self.strings.push(s.to_string());
        self.index.insert(s.to_string(), i);
        i
    }

    fn write_ref(&mut self, out: &mut Vec<u8>, s: &str) {
        let i = self.intern(s);
        write_varint(out, i);
    }
}

/// Encodes a whole document in the binary wire form, streaming the result
/// into `w`. The payload is assembled in memory first (the header carries
/// its length and checksum), then written in one pass.
pub fn encode_document_to<W: io::Write>(doc: &Document, w: &mut W) -> Result<()> {
    let root = doc.root()?;
    let mut table = StringTable::default();
    let mut sections: Vec<(u8, Vec<u8>)> = Vec::new();

    if !doc.meta.is_empty() {
        let mut buf = Vec::new();
        write_varint(&mut buf, doc.meta.len() as u64);
        for (key, value) in &doc.meta {
            table.write_ref(&mut buf, key);
            encode_value(&mut table, &mut buf, value);
        }
        sections.push((SEC_META, buf));
    }

    if !doc.channels.is_empty() {
        let mut buf = Vec::new();
        write_varint(&mut buf, doc.channels.len() as u64);
        for channel in doc.channels.iter() {
            table.write_ref(&mut buf, channel.name.as_str());
            buf.push(medium_code(channel.medium));
            write_varint(&mut buf, channel.extra.len() as u64);
            for (key, value) in &channel.extra {
                table.write_ref(&mut buf, key.as_str());
                encode_value(&mut table, &mut buf, value);
            }
        }
        sections.push((SEC_CHANNELS, buf));
    }

    if !doc.styles.is_empty() {
        let mut buf = Vec::new();
        write_varint(&mut buf, doc.styles.len() as u64);
        for style in doc.styles.iter() {
            table.write_ref(&mut buf, &style.name);
            write_varint(&mut buf, style.parents.len() as u64);
            for parent in &style.parents {
                table.write_ref(&mut buf, parent);
            }
            write_varint(&mut buf, style.attrs.len() as u64);
            for attr in &style.attrs {
                table.write_ref(&mut buf, attr.name.as_str());
                encode_value(&mut table, &mut buf, &attr.value);
            }
        }
        sections.push((SEC_STYLES, buf));
    }

    if !doc.catalog.is_empty() {
        let mut buf = Vec::new();
        // Same canonical order as the text writer: by key text, so the
        // bytes of a document do not depend on intern history.
        let mut descriptors: Vec<&DataDescriptor> = doc.catalog.iter().collect();
        descriptors.sort_by_key(|d| d.key.as_str());
        write_varint(&mut buf, descriptors.len() as u64);
        for d in descriptors {
            encode_descriptor(&mut table, &mut buf, d);
        }
        sections.push((SEC_DESCRIPTORS, buf));
    }

    let mut buf = Vec::new();
    encode_node(&mut table, &mut buf, doc, root)?;
    sections.push((SEC_TREE, buf));

    let mut payload = Vec::new();
    write_varint(&mut payload, table.strings.len() as u64);
    for s in &table.strings {
        write_varint(&mut payload, s.len() as u64);
        payload.extend_from_slice(s.as_bytes());
    }
    for (tag, body) in &sections {
        payload.push(*tag);
        write_varint(&mut payload, body.len() as u64);
        payload.extend_from_slice(body);
    }

    let payload_len = u32::try_from(payload.len()).map_err(|_| FormatError::Wire {
        context: "document",
        message: "payload exceeds the 4 GiB wire limit".to_string(),
        at: empty_span(0),
    })?;

    w.write_all(&MAGIC)?;
    w.write_all(&VERSION.to_le_bytes())?;
    w.write_all(&0u16.to_le_bytes())?;
    w.write_all(&payload_len.to_le_bytes())?;
    w.write_all(&crc32(&payload).to_le_bytes())?;
    w.write_all(&payload)?;
    Ok(())
}

fn encode_value(table: &mut StringTable, out: &mut Vec<u8>, value: &AttrValue) {
    match value {
        AttrValue::Id(s) => {
            out.push(VAL_ID);
            table.write_ref(out, s.as_str());
        }
        AttrValue::Number(n) => {
            out.push(VAL_NUMBER);
            write_varint(out, zigzag(*n));
        }
        AttrValue::Real(x) => {
            out.push(VAL_REAL);
            out.extend_from_slice(&x.to_bits().to_le_bytes());
        }
        AttrValue::Str(s) => {
            out.push(VAL_STR);
            table.write_ref(out, s);
        }
        AttrValue::Ref(s) => {
            out.push(VAL_REF);
            table.write_ref(out, s.as_str());
        }
        AttrValue::List(items) => {
            out.push(VAL_LIST);
            write_varint(out, items.len() as u64);
            for item in items {
                encode_value(table, out, item);
            }
        }
    }
}

fn encode_descriptor(table: &mut StringTable, out: &mut Vec<u8>, d: &DataDescriptor) {
    table.write_ref(out, d.key.as_str());
    out.push(medium_code(d.medium));
    table.write_ref(out, &d.format);
    write_varint(out, d.size_bytes);

    let has_resources = d.resources.bandwidth_bps != 0
        || d.resources.decode_cost != 0
        || d.resources.memory_bytes != 0;
    let mut flags = 0u8;
    if d.duration.is_some() {
        flags |= DESC_DURATION;
    }
    if d.resolution.is_some() {
        flags |= DESC_RESOLUTION;
    }
    if d.color_depth.is_some() {
        flags |= DESC_COLOR_DEPTH;
    }
    if d.rates.frames_per_second.is_some() {
        flags |= DESC_FPS;
    }
    if d.rates.samples_per_second.is_some() {
        flags |= DESC_SAMPLE_RATE;
    }
    if d.rates.bytes_per_second.is_some() {
        flags |= DESC_BYTE_RATE;
    }
    if has_resources {
        flags |= DESC_RESOURCES;
    }
    if d.location.is_some() {
        flags |= DESC_LOCATION;
    }
    out.push(flags);

    if let Some(duration) = d.duration {
        write_varint(out, zigzag(duration.as_millis()));
    }
    if let Some((w, h)) = d.resolution {
        write_varint(out, w as u64);
        write_varint(out, h as u64);
    }
    if let Some(bits) = d.color_depth {
        out.push(bits);
    }
    if let Some(fps) = d.rates.frames_per_second {
        out.extend_from_slice(&fps.to_bits().to_le_bytes());
    }
    if let Some(sr) = d.rates.samples_per_second {
        write_varint(out, sr as u64);
    }
    if let Some(bps) = d.rates.bytes_per_second {
        write_varint(out, bps);
    }
    if has_resources {
        write_varint(out, d.resources.bandwidth_bps);
        write_varint(out, d.resources.decode_cost as u64);
        write_varint(out, d.resources.memory_bytes);
    }
    if let Some(location) = &d.location {
        table.write_ref(out, location);
    }

    // Extras are keyed by `Symbol` (intern order); sort by text like the
    // text writer so both forms share one canonical order.
    let mut extras: Vec<_> = d.extra.iter().collect();
    extras.sort_by_key(|(key, _)| key.as_str());
    write_varint(out, extras.len() as u64);
    for (key, value) in extras {
        table.write_ref(out, key.as_str());
        encode_value(table, out, value);
    }
}

fn encode_node(
    table: &mut StringTable,
    out: &mut Vec<u8>,
    doc: &Document,
    id: NodeId,
) -> Result<()> {
    let node = doc.node(id)?;
    match &node.kind {
        NodeKind::Seq => out.push(NODE_SEQ),
        NodeKind::Par => out.push(NODE_PAR),
        NodeKind::Ext => out.push(NODE_EXT),
        NodeKind::Imm(ImmediateData::Text(text)) => {
            out.push(NODE_IMM_TEXT);
            write_varint(out, text.len() as u64);
            out.extend_from_slice(text.as_bytes());
        }
        NodeKind::Imm(ImmediateData::Binary(bytes)) => {
            out.push(NODE_IMM_BINARY);
            write_varint(out, bytes.len() as u64);
            out.extend_from_slice(bytes);
        }
    }

    write_varint(out, node.attrs.len() as u64);
    for attr in node.attrs.iter() {
        table.write_ref(out, attr.name.as_str());
        encode_value(table, out, &attr.value);
    }

    let arcs = doc.arcs_of(id);
    write_varint(out, arcs.len() as u64);
    for arc in arcs {
        encode_arc(table, out, arc);
    }

    if node.kind.is_composite() {
        write_varint(out, node.children.len() as u64);
        for child in &node.children {
            encode_node(table, out, doc, *child)?;
        }
    }
    Ok(())
}

fn encode_arc(table: &mut StringTable, out: &mut Vec<u8>, arc: &SyncArc) {
    out.push(anchor_code(arc.anchor));
    out.push(match arc.strictness {
        Strictness::May => 0,
        Strictness::Must => 1,
    });
    out.push(anchor_code(arc.source_anchor));
    table.write_ref(out, &arc.source.to_string());
    write_varint(out, zigzag(arc.offset.value));
    out.push(unit_code(arc.offset.unit));
    table.write_ref(out, &arc.destination.to_string());
    write_varint(out, zigzag(arc.min_delay.as_millis()));
    match arc.max_delay {
        MaxDelay::Unbounded => out.push(0),
        MaxDelay::Bounded(d) => {
            out.push(1);
            write_varint(out, zigzag(d.as_millis()));
        }
    }
}

fn anchor_code(anchor: Anchor) -> u8 {
    match anchor {
        Anchor::Begin => 0,
        Anchor::End => 1,
    }
}

fn medium_code(medium: MediaKind) -> u8 {
    match medium {
        MediaKind::Audio => 0,
        MediaKind::Video => 1,
        MediaKind::Image => 2,
        MediaKind::Text => 3,
        MediaKind::Label => 4,
        MediaKind::Generator => 5,
    }
}

fn unit_code(unit: MediaUnit) -> u8 {
    match unit {
        MediaUnit::Milliseconds => 0,
        MediaUnit::Seconds => 1,
        MediaUnit::Frames => 2,
        MediaUnit::Samples => 3,
        MediaUnit::Bytes => 4,
    }
}

// ---------------------------------------------------------------------------
// Decoder
// ---------------------------------------------------------------------------

fn byte_pos(offset: usize) -> Position {
    // Binary input has no lines or columns; only the offset is meaningful.
    Position::new(0, 0, offset)
}

fn empty_span(offset: usize) -> Span {
    Span::new(byte_pos(offset), byte_pos(offset))
}

fn span_of(start: usize, end: usize) -> Span {
    Span::new(byte_pos(start), byte_pos(end))
}

/// A bounds-checked reader over the payload. `base` is the slice's offset
/// in the whole input, so every error reports absolute byte positions.
struct Cursor<'a> {
    data: &'a [u8],
    pos: usize,
    base: usize,
}

impl<'a> Cursor<'a> {
    fn new(data: &'a [u8], base: usize) -> Cursor<'a> {
        Cursor { data, pos: 0, base }
    }

    fn offset(&self) -> usize {
        self.base + self.pos
    }

    fn remaining(&self) -> usize {
        self.data.len() - self.pos
    }

    fn at_end(&self) -> bool {
        self.pos >= self.data.len()
    }

    fn truncated(&self, needed: u64) -> FormatError {
        FormatError::Truncated {
            at: empty_span(self.base + self.data.len()),
            needed,
        }
    }

    fn wire(&self, context: &'static str, message: impl Into<String>, from: usize) -> FormatError {
        FormatError::Wire {
            context,
            message: message.into(),
            at: span_of(self.base + from, self.offset()),
        }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        if n > self.remaining() {
            return Err(self.truncated((n - self.remaining()) as u64));
        }
        let slice = &self.data[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    fn read_u8(&mut self) -> Result<u8> {
        let slice = self.take(1)?;
        Ok(slice[0])
    }

    fn read_u64_le(&mut self) -> Result<u64> {
        let slice = self.take(8)?;
        let mut bytes = [0u8; 8];
        bytes.copy_from_slice(slice);
        Ok(u64::from_le_bytes(bytes))
    }

    fn read_varint(&mut self) -> Result<u64> {
        let start = self.pos;
        let mut value = 0u64;
        let mut shift = 0u32;
        loop {
            let byte = self.read_u8()?;
            if shift == 63 && byte > 1 {
                return Err(self.wire("varint", "value overflows 64 bits", start));
            }
            value |= ((byte & 0x7F) as u64) << shift;
            if byte & 0x80 == 0 {
                return Ok(value);
            }
            shift += 7;
            if shift > 63 {
                return Err(self.wire("varint", "value overflows 64 bits", start));
            }
        }
    }

    fn read_zigzag(&mut self) -> Result<i64> {
        Ok(unzigzag(self.read_varint()?))
    }

    /// Reads a byte length and checks it against the remaining input
    /// *before* the caller allocates anything.
    fn read_len(&mut self, what: &'static str) -> Result<usize> {
        let start = self.pos;
        let len = self.read_varint()?;
        if len > self.remaining() as u64 {
            return Err(self.truncated(len - self.remaining() as u64));
        }
        let _ = (what, start);
        Ok(len as usize)
    }

    /// Reads an entry count. Every encodable entry occupies at least one
    /// byte, so a count larger than the remaining input is a lie — rejected
    /// here so no loop trusts it.
    fn read_count(&mut self, what: &'static str) -> Result<usize> {
        let start = self.pos;
        let count = self.read_varint()?;
        if count > self.remaining() as u64 {
            return Err(self.wire(
                what,
                format!(
                    "declared count {count} exceeds the {} remaining input byte(s)",
                    self.remaining()
                ),
                start,
            ));
        }
        Ok(count as usize)
    }

    fn read_str<'t>(&mut self, table: &'t [String]) -> Result<&'t str> {
        let start = self.pos;
        let index = self.read_varint()?;
        table
            .get(index as usize)
            .map(String::as_str)
            .ok_or_else(|| {
                self.wire(
                    "string",
                    format!(
                        "string index {index} out of range (table has {} entries)",
                        table.len()
                    ),
                    start,
                )
            })
    }
}

/// Decodes a binary wire document and runs the structural validator.
pub fn decode_document(bytes: &[u8]) -> Result<Document> {
    let doc = decode_document_unvalidated(bytes)?;
    validate::validate(&doc)?;
    Ok(doc)
}

/// Decodes a binary wire document without structural validation (the
/// binary analogue of [`crate::parse_document_unvalidated`]).
pub fn decode_document_unvalidated(bytes: &[u8]) -> Result<Document> {
    if bytes.len() < HEADER_LEN {
        return Err(FormatError::Truncated {
            at: empty_span(bytes.len()),
            needed: (HEADER_LEN - bytes.len()) as u64,
        });
    }
    if bytes[0..4] != MAGIC {
        return Err(FormatError::Wire {
            context: "header",
            message: format!(
                "bad magic {:02x} {:02x} {:02x} {:02x} (expected c3 4d 49 46)",
                bytes[0], bytes[1], bytes[2], bytes[3]
            ),
            at: span_of(0, 4),
        });
    }
    let version = u16::from_le_bytes([bytes[4], bytes[5]]);
    if version != VERSION {
        return Err(FormatError::UnsupportedVersion {
            found: version,
            at: span_of(4, 6),
        });
    }
    let flags = u16::from_le_bytes([bytes[6], bytes[7]]);
    if flags != 0 {
        return Err(FormatError::Wire {
            context: "header",
            message: format!("reserved flags must be zero, found {flags:#06x}"),
            at: span_of(6, 8),
        });
    }
    let payload_len = u32::from_le_bytes([bytes[8], bytes[9], bytes[10], bytes[11]]) as usize;
    let available = bytes.len() - HEADER_LEN;
    if payload_len > available {
        return Err(FormatError::Truncated {
            at: empty_span(bytes.len()),
            needed: (payload_len - available) as u64,
        });
    }
    if payload_len < available {
        return Err(FormatError::Wire {
            context: "document",
            message: format!(
                "{} trailing byte(s) after the declared payload",
                available - payload_len
            ),
            at: span_of(HEADER_LEN + payload_len, bytes.len()),
        });
    }
    let declared = u32::from_le_bytes([bytes[12], bytes[13], bytes[14], bytes[15]]);
    let payload = &bytes[HEADER_LEN..];
    let found = crc32(payload);
    if declared != found {
        return Err(FormatError::ChecksumMismatch {
            expected: declared,
            found,
            at: span_of(12, 16),
        });
    }

    let mut cur = Cursor::new(payload, HEADER_LEN);
    let table = decode_string_table(&mut cur)?;

    let mut doc = Document::new();
    let mut last_tag = 0u8;
    let mut saw_tree = false;
    while !cur.at_end() {
        let tag_at = cur.pos;
        let tag = cur.read_u8()?;
        if tag <= last_tag || tag > SEC_TREE {
            return Err(cur.wire(
                "section",
                format!("unknown or out-of-order section tag {tag}"),
                tag_at,
            ));
        }
        last_tag = tag;
        let len = cur.read_len("section body")?;
        let base = cur.offset();
        let body = cur.take(len)?;
        let mut sc = Cursor::new(body, base);
        match tag {
            SEC_META => decode_meta(&mut sc, &table, &mut doc)?,
            SEC_CHANNELS => decode_channels(&mut sc, &table, &mut doc)?,
            SEC_STYLES => decode_styles(&mut sc, &table, &mut doc)?,
            SEC_DESCRIPTORS => decode_descriptors(&mut sc, &table, &mut doc)?,
            _ => {
                decode_node(&mut sc, &table, &mut doc, None, 0)?;
                saw_tree = true;
            }
        }
        if !sc.at_end() {
            return Err(sc.wire(
                "section",
                format!(
                    "{} undeclared byte(s) at the end of the section",
                    sc.remaining()
                ),
                sc.pos,
            ));
        }
    }
    if !saw_tree {
        return Err(FormatError::Wire {
            context: "document",
            message: "the required tree section is missing".to_string(),
            at: empty_span(bytes.len()),
        });
    }
    Ok(doc)
}

fn decode_string_table(cur: &mut Cursor<'_>) -> Result<Vec<String>> {
    let count = cur.read_count("string table")?;
    let mut table = Vec::new();
    for _ in 0..count {
        let len = cur.read_len("string entry")?;
        let start = cur.pos;
        let raw = cur.take(len)?;
        let text = std::str::from_utf8(raw)
            .map_err(|e| cur.wire("string entry", format!("not valid UTF-8: {e}"), start))?;
        table.push(text.to_string());
    }
    Ok(table)
}

fn decode_meta(cur: &mut Cursor<'_>, table: &[String], doc: &mut Document) -> Result<()> {
    let count = cur.read_count("meta")?;
    for _ in 0..count {
        let key = cur.read_str(table)?.to_string();
        let value = decode_value(cur, table, 0)?;
        doc.meta.insert(key, value);
    }
    Ok(())
}

fn decode_channels(cur: &mut Cursor<'_>, table: &[String], doc: &mut Document) -> Result<()> {
    let count = cur.read_count("channels")?;
    for _ in 0..count {
        let name = cur.read_str(table)?;
        let mut def = ChannelDef::new(Symbol::intern(name), decode_medium(cur)?);
        let extras = cur.read_count("channel extras")?;
        for _ in 0..extras {
            let key = Symbol::intern(cur.read_str(table)?);
            let value = decode_value(cur, table, 0)?;
            def = def.with_extra(key, value);
        }
        doc.channels.define(def)?;
    }
    Ok(())
}

fn decode_styles(cur: &mut Cursor<'_>, table: &[String], doc: &mut Document) -> Result<()> {
    let count = cur.read_count("styles")?;
    for _ in 0..count {
        let mut def = StyleDef::new(cur.read_str(table)?);
        let parents = cur.read_count("style parents")?;
        for _ in 0..parents {
            def = def.with_parent(cur.read_str(table)?);
        }
        let attrs = cur.read_count("style attrs")?;
        for _ in 0..attrs {
            let name = AttrName::parse(cur.read_str(table)?);
            let value = decode_value(cur, table, 0)?;
            def = def.with_attr(cmif_core::attr::Attr::new(name, value));
        }
        doc.styles.define(def)?;
    }
    Ok(())
}

fn decode_descriptors(cur: &mut Cursor<'_>, table: &[String], doc: &mut Document) -> Result<()> {
    let count = cur.read_count("descriptors")?;
    for _ in 0..count {
        let key = Symbol::intern(cur.read_str(table)?);
        let medium = decode_medium(cur)?;
        let format = cur.read_str(table)?.to_string();
        let mut d = DataDescriptor::new(key, medium, format);
        d.size_bytes = cur.read_varint()?;
        let flags = cur.read_u8()?;
        let mut rates = RateInfo::NONE;
        if flags & DESC_DURATION != 0 {
            d.duration = Some(TimeMs::from_millis(cur.read_zigzag()?));
        }
        if flags & DESC_RESOLUTION != 0 {
            let w = decode_u32(cur, "resolution width")?;
            let h = decode_u32(cur, "resolution height")?;
            d.resolution = Some((w, h));
        }
        if flags & DESC_COLOR_DEPTH != 0 {
            d.color_depth = Some(cur.read_u8()?);
        }
        if flags & DESC_FPS != 0 {
            rates.frames_per_second = Some(f64::from_bits(cur.read_u64_le()?));
        }
        if flags & DESC_SAMPLE_RATE != 0 {
            rates.samples_per_second = Some(decode_u32(cur, "sample rate")?);
        }
        if flags & DESC_BYTE_RATE != 0 {
            rates.bytes_per_second = Some(cur.read_varint()?);
        }
        if flags & DESC_RESOURCES != 0 {
            d.resources = ResourceNeeds {
                bandwidth_bps: cur.read_varint()?,
                decode_cost: decode_u32(cur, "decode cost")?,
                memory_bytes: cur.read_varint()?,
            };
        }
        if flags & DESC_LOCATION != 0 {
            d.location = Some(cur.read_str(table)?.to_string());
        }
        d.rates = rates;
        let extras = cur.read_count("descriptor extras")?;
        for _ in 0..extras {
            let extra_key = Symbol::intern(cur.read_str(table)?);
            let value = decode_value(cur, table, 0)?;
            d.extra.insert(extra_key, value);
        }
        doc.catalog.register(d)?;
    }
    Ok(())
}

fn decode_u32(cur: &mut Cursor<'_>, what: &'static str) -> Result<u32> {
    let start = cur.pos;
    let value = cur.read_varint()?;
    u32::try_from(value)
        .map_err(|_| cur.wire(what, format!("{value} does not fit in 32 bits"), start))
}

fn decode_medium(cur: &mut Cursor<'_>) -> Result<MediaKind> {
    let start = cur.pos;
    let code = cur.read_u8()?;
    MediaKind::ALL
        .get(code as usize)
        .copied()
        .ok_or_else(|| cur.wire("medium", format!("unknown medium code {code}"), start))
}

fn decode_value(cur: &mut Cursor<'_>, table: &[String], depth: usize) -> Result<AttrValue> {
    let start = cur.pos;
    let tag = cur.read_u8()?;
    Ok(match tag {
        VAL_ID => AttrValue::Id(Symbol::intern(cur.read_str(table)?)),
        VAL_NUMBER => AttrValue::Number(cur.read_zigzag()?),
        VAL_REAL => AttrValue::Real(f64::from_bits(cur.read_u64_le()?)),
        VAL_STR => AttrValue::Str(cur.read_str(table)?.to_string()),
        VAL_REF => AttrValue::Ref(Symbol::intern(cur.read_str(table)?)),
        VAL_LIST => {
            // A list bomb must become a typed error, not a stack overflow.
            if depth >= crate::MAX_NESTING {
                return Err(FormatError::TooDeep {
                    at: byte_pos(cur.base + start),
                    limit: crate::MAX_NESTING,
                });
            }
            let count = cur.read_count("list")?;
            let mut items = Vec::new();
            for _ in 0..count {
                items.push(decode_value(cur, table, depth + 1)?);
            }
            AttrValue::List(items)
        }
        other => return Err(cur.wire("value", format!("unknown value tag {other}"), start)),
    })
}

fn decode_node(
    cur: &mut Cursor<'_>,
    table: &[String],
    doc: &mut Document,
    parent: Option<NodeId>,
    depth: usize,
) -> Result<NodeId> {
    let start = cur.pos;
    if depth >= crate::MAX_NESTING {
        return Err(FormatError::TooDeep {
            at: byte_pos(cur.base + start),
            limit: crate::MAX_NESTING,
        });
    }
    let tag = cur.read_u8()?;
    let kind = match tag {
        NODE_SEQ => NodeKind::Seq,
        NODE_PAR => NodeKind::Par,
        NODE_EXT => NodeKind::Ext,
        NODE_IMM_TEXT => {
            let len = cur.read_len("immediate text")?;
            let at = cur.pos;
            let raw = cur.take(len)?;
            let text = std::str::from_utf8(raw)
                .map_err(|e| cur.wire("immediate text", format!("not valid UTF-8: {e}"), at))?;
            NodeKind::Imm(ImmediateData::Text(text.to_string()))
        }
        NODE_IMM_BINARY => {
            let len = cur.read_len("immediate data")?;
            NodeKind::Imm(ImmediateData::Binary(cur.take(len)?.to_vec()))
        }
        other => return Err(cur.wire("node", format!("unknown node kind {other}"), start)),
    };
    let composite = kind.is_composite();

    let id = match parent {
        Some(parent) => doc.add_child(parent, kind)?,
        None => doc.set_root(kind),
    };

    let attrs = cur.read_count("node attrs")?;
    for _ in 0..attrs {
        let name = AttrName::parse(cur.read_str(table)?);
        let value = decode_value(cur, table, 0)?;
        doc.set_attr(id, name, value)?;
    }

    let arcs = cur.read_count("node arcs")?;
    for _ in 0..arcs {
        let arc = decode_arc(cur, table)?;
        doc.add_arc(id, arc)?;
    }

    if composite {
        let children = cur.read_count("node children")?;
        for _ in 0..children {
            decode_node(cur, table, doc, Some(id), depth + 1)?;
        }
    }
    Ok(id)
}

fn decode_arc(cur: &mut Cursor<'_>, table: &[String]) -> Result<SyncArc> {
    let anchor = decode_anchor(cur)?;
    let strict_at = cur.pos;
    let strictness = match cur.read_u8()? {
        0 => Strictness::May,
        1 => Strictness::Must,
        other => {
            return Err(cur.wire(
                "sync_arc",
                format!("unknown strictness code {other}"),
                strict_at,
            ))
        }
    };
    let source_anchor = decode_anchor(cur)?;
    let source = NodePath::parse(cur.read_str(table)?);
    let offset_value = cur.read_zigzag()?;
    let unit_at = cur.pos;
    let unit = match cur.read_u8()? {
        0 => MediaUnit::Milliseconds,
        1 => MediaUnit::Seconds,
        2 => MediaUnit::Frames,
        3 => MediaUnit::Samples,
        4 => MediaUnit::Bytes,
        other => return Err(cur.wire("sync_arc", format!("unknown unit code {other}"), unit_at)),
    };
    let destination = NodePath::parse(cur.read_str(table)?);
    let min_delay = DelayMs::from_millis(cur.read_zigzag()?);
    let max_at = cur.pos;
    let max_delay = match cur.read_u8()? {
        0 => MaxDelay::Unbounded,
        1 => MaxDelay::Bounded(DelayMs::from_millis(cur.read_zigzag()?)),
        other => {
            return Err(cur.wire(
                "sync_arc",
                format!("unknown max-delay code {other}"),
                max_at,
            ))
        }
    };
    Ok(SyncArc {
        anchor,
        strictness,
        source_anchor,
        source,
        offset: MediaTime {
            value: offset_value,
            unit,
        },
        destination,
        min_delay,
        max_delay,
    })
}

fn decode_anchor(cur: &mut Cursor<'_>) -> Result<Anchor> {
    let start = cur.pos;
    match cur.read_u8()? {
        0 => Ok(Anchor::Begin),
        1 => Ok(Anchor::End),
        other => Err(cur.wire("sync_arc", format!("unknown anchor code {other}"), start)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::writer::write_document;
    use cmif_core::prelude::*;

    fn sample_doc() -> Document {
        DocumentBuilder::new("Evening News")
            .meta("author", AttrValue::Str("CWI".into()))
            .meta("year", AttrValue::Number(1991))
            .channel("audio", MediaKind::Audio)
            .channel_def(
                ChannelDef::new("caption", MediaKind::Text)
                    .with_extra("language", AttrValue::Id("nl".into())),
            )
            .descriptor(
                DataDescriptor::new("story-audio", MediaKind::Audio, "pcm8")
                    .with_size(64_000)
                    .with_duration(TimeMs::from_secs(8))
                    .with_rates(RateInfo::audio(8_000, 8_000))
                    .with_resources(ResourceNeeds {
                        bandwidth_bps: 8_000,
                        decode_cost: 1,
                        memory_bytes: 16_384,
                    })
                    .with_location("store://host/story-audio")
                    .with_extra("title", AttrValue::Str("Paintings".into())),
            )
            .style(
                StyleDef::new("caption-style")
                    .with_attr(Attr::new(AttrName::Duration, AttrValue::Number(3000))),
            )
            .root_seq(|news| {
                news.par("story-1", |scene| {
                    scene.ext("voice", "audio", "story-audio");
                    scene.ext_with("graphic", "caption", "story-audio", |n| {
                        n.duration_ms(3000);
                        n.arc(
                            SyncArc::hard_start("../voice", "")
                                .with_offset(MediaTime::seconds(2))
                                .with_window(
                                    DelayMs::from_millis(-100),
                                    MaxDelay::Bounded(DelayMs::from_millis(250)),
                                ),
                        );
                    });
                    scene.imm_text("line", "caption", "Stolen van Goghs", 3000);
                });
            })
            .build()
            .unwrap()
    }

    fn encode(doc: &Document) -> Vec<u8> {
        let mut out = Vec::new();
        encode_document_to(doc, &mut out).unwrap();
        out
    }

    #[test]
    fn round_trips_the_sample_document() {
        let doc = sample_doc();
        let bytes = encode(&doc);
        assert_eq!(&bytes[0..4], &MAGIC);
        let again = decode_document(&bytes).unwrap();
        assert_eq!(doc.meta, again.meta);
        assert_eq!(doc.channels, again.channels);
        assert_eq!(doc.styles, again.styles);
        assert_eq!(doc.catalog, again.catalog);
        assert_eq!(doc.arcs().len(), again.arcs().len());
        // The strong form: both generations write identical canonical text.
        assert_eq!(
            write_document(&doc).unwrap(),
            write_document(&again).unwrap()
        );
    }

    #[test]
    fn binary_is_smaller_than_text() {
        let doc = sample_doc();
        let text = write_document(&doc).unwrap();
        let bytes = encode(&doc);
        assert!(
            bytes.len() < text.len(),
            "binary {} >= text {}",
            bytes.len(),
            text.len()
        );
    }

    #[test]
    fn encoding_is_deterministic() {
        let doc = sample_doc();
        assert_eq!(encode(&doc), encode(&doc));
    }

    #[test]
    fn rejects_truncation_at_every_offset() {
        let bytes = encode(&sample_doc());
        for cut in 0..bytes.len() {
            let err =
                decode_document(&bytes[..cut]).expect_err("every proper prefix must be rejected");
            assert!(
                err.span().is_some() || matches!(err, FormatError::Core(_)),
                "truncation at {cut} produced a spanless error: {err:?}"
            );
        }
    }

    #[test]
    fn rejects_any_single_byte_corruption() {
        let bytes = encode(&sample_doc());
        for index in 0..bytes.len() {
            let mut bad = bytes.clone();
            bad[index] ^= 0xFF;
            assert!(
                decode_document(&bad).is_err(),
                "flipping byte {index} went undetected"
            );
        }
    }

    #[test]
    fn rejects_trailing_bytes() {
        let mut bytes = encode(&sample_doc());
        bytes.push(0);
        match decode_document(&bytes).unwrap_err() {
            FormatError::Wire { context, .. } => assert_eq!(context, "document"),
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn rejects_unsupported_versions_and_flags() {
        let bytes = encode(&sample_doc());
        let mut future = bytes.clone();
        future[4] = 0xFF;
        future[5] = 0x7F;
        assert!(matches!(
            decode_document(&future).unwrap_err(),
            FormatError::UnsupportedVersion { found: 0x7FFF, .. }
        ));
        let mut flagged = bytes;
        flagged[6] = 1;
        assert!(matches!(
            decode_document(&flagged).unwrap_err(),
            FormatError::Wire {
                context: "header",
                ..
            }
        ));
    }

    #[test]
    fn rejects_checksum_mismatch_with_the_header_span() {
        let mut bytes = encode(&sample_doc());
        let last = bytes.len() - 1;
        bytes[last] ^= 0x01;
        match decode_document(&bytes).unwrap_err() {
            FormatError::ChecksumMismatch { at, .. } => {
                assert_eq!(at.start.offset, 12);
                assert_eq!(at.end.offset, 16);
            }
            other => panic!("unexpected error {other:?}"),
        }
    }

    /// Builds a syntactically complete wire document around a raw payload.
    fn frame(payload: &[u8]) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(&MAGIC);
        out.extend_from_slice(&VERSION.to_le_bytes());
        out.extend_from_slice(&0u16.to_le_bytes());
        out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        out.extend_from_slice(&crc32(payload).to_le_bytes());
        out.extend_from_slice(payload);
        out
    }

    #[test]
    fn huge_declared_counts_fail_before_allocating() {
        // A string table claiming u64::MAX entries in a 10-byte payload.
        let mut payload = Vec::new();
        write_varint(&mut payload, u64::MAX);
        let err = decode_document(&frame(&payload)).unwrap_err();
        assert!(
            matches!(
                err,
                FormatError::Wire { .. } | FormatError::Truncated { .. }
            ),
            "unexpected error {err:?}"
        );
    }

    #[test]
    fn node_depth_bombs_yield_too_deep() {
        // strings: none; tree section: seq nodes nested 100k deep.
        let mut body = Vec::new();
        let levels = 100_000u64;
        for _ in 0..levels {
            body.push(NODE_SEQ);
            write_varint(&mut body, 0); // attrs
            write_varint(&mut body, 0); // arcs
            write_varint(&mut body, 1); // children
        }
        body.push(NODE_SEQ);
        write_varint(&mut body, 0);
        write_varint(&mut body, 0);
        write_varint(&mut body, 0);
        let mut payload = Vec::new();
        write_varint(&mut payload, 0); // empty string table
        payload.push(SEC_TREE);
        write_varint(&mut payload, body.len() as u64);
        payload.extend_from_slice(&body);
        match decode_document_unvalidated(&frame(&payload)).unwrap_err() {
            FormatError::TooDeep { limit, .. } => assert_eq!(limit, crate::MAX_NESTING),
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn value_list_bombs_yield_too_deep() {
        // One seq node with one attr whose value is a 100k-deep list chain.
        let mut body = Vec::new();
        body.push(NODE_SEQ);
        write_varint(&mut body, 1); // one attr
        write_varint(&mut body, 0); // name: strings[0]
        for _ in 0..100_000u64 {
            body.push(VAL_LIST);
            write_varint(&mut body, 1);
        }
        body.push(VAL_NUMBER);
        write_varint(&mut body, 0);
        write_varint(&mut body, 0); // arcs
        write_varint(&mut body, 0); // children
        let mut payload = Vec::new();
        write_varint(&mut payload, 1); // strings: ["x"]
        write_varint(&mut payload, 1);
        payload.push(b'x');
        payload.push(SEC_TREE);
        write_varint(&mut payload, body.len() as u64);
        payload.extend_from_slice(&body);
        match decode_document_unvalidated(&frame(&payload)).unwrap_err() {
            FormatError::TooDeep { limit, .. } => assert_eq!(limit, crate::MAX_NESTING),
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn zigzag_round_trips_extremes() {
        for v in [0i64, -1, 1, i64::MIN, i64::MAX, -1_000_000, 1_000_000] {
            assert_eq!(unzigzag(zigzag(v)), v);
        }
    }

    #[test]
    fn crc_matches_known_vector() {
        // The classic zlib check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }
}
