//! S-expression reader: turns tokens into a nested expression tree.

use crate::error::{FormatError, Position, Result};
use crate::lexer::{tokenize, Token, TokenKind};

/// One expression of the interchange format.
#[derive(Debug, Clone, PartialEq)]
pub struct SExpr {
    /// Where the expression starts.
    pub position: Position,
    /// The expression's shape.
    pub kind: SExprKind,
}

/// The shapes an expression can take.
#[derive(Debug, Clone, PartialEq)]
pub enum SExprKind {
    /// A bare identifier.
    Ident(String),
    /// An integral number.
    Number(i64),
    /// A real number.
    Real(f64),
    /// A quoted string.
    Str(String),
    /// An `&name` attribute reference.
    Ref(String),
    /// A parenthesized list of expressions.
    List(Vec<SExpr>),
}

impl SExpr {
    /// Returns the identifier text when the expression is a bare identifier.
    pub fn as_ident(&self) -> Option<&str> {
        match &self.kind {
            SExprKind::Ident(s) => Some(s),
            _ => None,
        }
    }

    /// Returns the text of an identifier or string expression.
    pub fn as_text(&self) -> Option<&str> {
        match &self.kind {
            SExprKind::Ident(s) | SExprKind::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Returns the integral value of a number expression.
    pub fn as_number(&self) -> Option<i64> {
        match &self.kind {
            SExprKind::Number(n) => Some(*n),
            SExprKind::Real(x) if x.fract() == 0.0 => Some(*x as i64),
            _ => None,
        }
    }

    /// Returns the list elements of a list expression.
    pub fn as_list(&self) -> Option<&[SExpr]> {
        match &self.kind {
            SExprKind::List(items) => Some(items),
            _ => None,
        }
    }

    /// For a list whose first element is an identifier, returns that
    /// identifier (the list's "tag") and the remaining elements.
    pub fn as_tagged(&self) -> Option<(&str, &[SExpr])> {
        let items = self.as_list()?;
        let tag = items.first()?.as_ident()?;
        Some((tag, &items[1..]))
    }

    /// Produces a malformed-expression error at this expression's position.
    pub fn malformed(&self, context: &'static str, message: impl Into<String>) -> FormatError {
        FormatError::Malformed {
            context,
            message: message.into(),
            at: self.position,
        }
    }
}

/// Reads every top-level expression from a source text.
pub fn read_all(source: &str) -> Result<Vec<SExpr>> {
    let tokens = tokenize(source)?;
    let mut reader = Reader {
        tokens: &tokens,
        index: 0,
    };
    let mut out = Vec::new();
    while !reader.at_end() {
        out.push(reader.read_expr()?);
    }
    Ok(out)
}

/// Reads exactly one top-level expression, rejecting trailing content.
pub fn read_one(source: &str) -> Result<SExpr> {
    let tokens = tokenize(source)?;
    let mut reader = Reader {
        tokens: &tokens,
        index: 0,
    };
    let expr = reader.read_expr()?;
    if let Some(extra) = reader.peek() {
        return Err(FormatError::TrailingContent {
            at: extra.position(),
        });
    }
    Ok(expr)
}

struct Reader<'a> {
    tokens: &'a [Token],
    index: usize,
}

impl<'a> Reader<'a> {
    fn at_end(&self) -> bool {
        self.index >= self.tokens.len()
    }

    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.index)
    }

    fn next(&mut self) -> Option<&Token> {
        let token = self.tokens.get(self.index);
        self.index += 1;
        token
    }

    fn read_expr(&mut self) -> Result<SExpr> {
        let token = self.next().ok_or(FormatError::UnexpectedEof)?;
        let position = token.position();
        let kind = match &token.kind {
            TokenKind::Ident(s) => SExprKind::Ident(s.clone()),
            TokenKind::Number(n) => SExprKind::Number(*n),
            TokenKind::Real(x) => SExprKind::Real(*x),
            TokenKind::Str(s) => SExprKind::Str(s.clone()),
            TokenKind::Ref(s) => SExprKind::Ref(s.clone()),
            TokenKind::RParen => return Err(FormatError::UnbalancedParens { at: position }),
            TokenKind::LParen => {
                let mut items = Vec::new();
                loop {
                    match self.peek() {
                        Some(t) if t.kind == TokenKind::RParen => {
                            self.next();
                            break;
                        }
                        Some(_) => items.push(self.read_expr()?),
                        None => return Err(FormatError::UnbalancedParens { at: position }),
                    }
                }
                SExprKind::List(items)
            }
        };
        Ok(SExpr { position, kind })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reads_nested_lists() {
        let expr = read_one("(seq (name news) (par (name story)))").unwrap();
        let (tag, rest) = expr.as_tagged().unwrap();
        assert_eq!(tag, "seq");
        assert_eq!(rest.len(), 2);
        let (tag, _) = rest[1].as_tagged().unwrap();
        assert_eq!(tag, "par");
    }

    #[test]
    fn reads_atoms() {
        let exprs = read_all("news 42 3.5 \"hi\" &other").unwrap();
        assert_eq!(exprs.len(), 5);
        assert_eq!(exprs[0].as_ident(), Some("news"));
        assert_eq!(exprs[1].as_number(), Some(42));
        assert!(matches!(exprs[2].kind, SExprKind::Real(x) if (x - 3.5).abs() < 1e-9));
        assert_eq!(exprs[3].as_text(), Some("hi"));
        assert!(matches!(exprs[4].kind, SExprKind::Ref(ref s) if s == "other"));
    }

    #[test]
    fn rejects_unbalanced_parens() {
        assert!(matches!(
            read_one("(a (b)").unwrap_err(),
            FormatError::UnbalancedParens { .. }
        ));
        assert!(matches!(
            read_one(")").unwrap_err(),
            FormatError::UnbalancedParens { .. }
        ));
    }

    #[test]
    fn rejects_trailing_content() {
        assert!(matches!(
            read_one("(a) (b)").unwrap_err(),
            FormatError::TrailingContent { .. }
        ));
    }

    #[test]
    fn rejects_empty_input_for_read_one() {
        assert!(matches!(
            read_one("").unwrap_err(),
            FormatError::UnexpectedEof
        ));
    }

    #[test]
    fn as_tagged_requires_leading_ident() {
        let expr = read_one("(42 a)").unwrap();
        assert!(expr.as_tagged().is_none());
        let expr = read_one("()").unwrap();
        assert!(expr.as_tagged().is_none());
        assert_eq!(expr.as_list().unwrap().len(), 0);
    }

    #[test]
    fn malformed_error_carries_position() {
        let expr = read_one("\n  (oops)").unwrap();
        let err = expr.malformed("node", "bad");
        match err {
            FormatError::Malformed { at, .. } => assert_eq!(at, Position::new(2, 3, 3)),
            other => panic!("unexpected error {other:?}"),
        }
    }
}
