//! S-expression reader: turns tokens into a nested expression tree.
//!
//! Like the lexer, expressions **borrow** their text from the source being
//! read: identifiers and `&name` references are `&str` slices of the input
//! and strings only own a buffer when they contained escapes. The document
//! parser interns identifiers straight out of these borrows, so building a
//! document from text allocates no intermediate `String` per atom.

use std::borrow::Cow;

use crate::error::{FormatError, Position, Result, Span};
use crate::lexer::{tokenize, Token, TokenKind};

/// One expression of the interchange format, borrowing from the source
/// text it was read from.
#[derive(Debug, Clone, PartialEq)]
pub struct SExpr<'a> {
    /// Where the expression starts.
    pub position: Position,
    /// The source bytes the expression covers — for a list, from its
    /// opening to its closing parenthesis. The document parser records
    /// these as per-node provenance.
    pub span: Span,
    /// The expression's shape.
    pub kind: SExprKind<'a>,
}

/// The shapes an expression can take.
#[derive(Debug, Clone, PartialEq)]
pub enum SExprKind<'a> {
    /// A bare identifier, borrowed from the source.
    Ident(&'a str),
    /// An integral number.
    Number(i64),
    /// A real number.
    Real(f64),
    /// A quoted string (borrowed unless it contained escapes).
    Str(Cow<'a, str>),
    /// An `&name` attribute reference, borrowed from the source.
    Ref(&'a str),
    /// A parenthesized list of expressions.
    List(Vec<SExpr<'a>>),
}

impl<'a> SExpr<'a> {
    /// Returns the identifier text when the expression is a bare identifier.
    pub fn as_ident(&self) -> Option<&str> {
        match &self.kind {
            SExprKind::Ident(s) => Some(s),
            _ => None,
        }
    }

    /// Returns the text of an identifier or string expression.
    pub fn as_text(&self) -> Option<&str> {
        match &self.kind {
            SExprKind::Ident(s) => Some(s),
            SExprKind::Str(s) => Some(s.as_ref()),
            _ => None,
        }
    }

    /// Returns the integral value of a number expression.
    pub fn as_number(&self) -> Option<i64> {
        match &self.kind {
            SExprKind::Number(n) => Some(*n),
            SExprKind::Real(x) if x.fract() == 0.0 => Some(*x as i64),
            _ => None,
        }
    }

    /// Returns the list elements of a list expression.
    pub fn as_list(&self) -> Option<&[SExpr<'a>]> {
        match &self.kind {
            SExprKind::List(items) => Some(items),
            _ => None,
        }
    }

    /// For a list whose first element is an identifier, returns that
    /// identifier (the list's "tag") and the remaining elements.
    pub fn as_tagged(&self) -> Option<(&str, &[SExpr<'a>])> {
        let items = self.as_list()?;
        let tag = items.first()?.as_ident()?;
        Some((tag, &items[1..]))
    }

    /// Produces a malformed-expression error at this expression's position.
    pub fn malformed(&self, context: &'static str, message: impl Into<String>) -> FormatError {
        FormatError::Malformed {
            context,
            message: message.into(),
            at: self.position,
        }
    }
}

/// Reads every top-level expression from a source text.
pub fn read_all(source: &str) -> Result<Vec<SExpr<'_>>> {
    let tokens = tokenize(source)?;
    let mut reader = Reader { tokens, index: 0 };
    let mut out = Vec::new();
    while !reader.at_end() {
        out.push(reader.read_expr(0)?);
    }
    Ok(out)
}

/// Reads exactly one top-level expression, rejecting trailing content.
pub fn read_one(source: &str) -> Result<SExpr<'_>> {
    let tokens = tokenize(source)?;
    let mut reader = Reader { tokens, index: 0 };
    let expr = reader.read_expr(0)?;
    if let Some(extra) = reader.peek() {
        return Err(FormatError::TrailingContent {
            at: extra.position(),
        });
    }
    Ok(expr)
}

struct Reader<'a> {
    tokens: Vec<Token<'a>>,
    index: usize,
}

impl<'a> Reader<'a> {
    fn at_end(&self) -> bool {
        self.index >= self.tokens.len()
    }

    fn peek(&self) -> Option<&Token<'a>> {
        self.tokens.get(self.index)
    }

    fn read_expr(&mut self, depth: usize) -> Result<SExpr<'a>> {
        let token = self
            .tokens
            .get(self.index)
            .ok_or(FormatError::UnexpectedEof)?;
        self.index += 1;
        let position = token.position();
        let mut span = token.span;
        let kind = match &token.kind {
            TokenKind::Ident(s) => SExprKind::Ident(s),
            TokenKind::Number(n) => SExprKind::Number(*n),
            TokenKind::Real(x) => SExprKind::Real(*x),
            TokenKind::Str(s) => SExprKind::Str(s.clone()),
            TokenKind::Ref(s) => SExprKind::Ref(s),
            TokenKind::RParen => return Err(FormatError::UnbalancedParens { at: position }),
            TokenKind::LParen => {
                // A parenthesis bomb must become a typed error, not a stack
                // overflow: the reader recurses per nesting level.
                if depth >= crate::MAX_NESTING {
                    return Err(FormatError::TooDeep {
                        at: position,
                        limit: crate::MAX_NESTING,
                    });
                }
                let mut items = Vec::new();
                loop {
                    match self.peek() {
                        Some(t) if t.kind == TokenKind::RParen => {
                            span = span.to(t.span);
                            self.index += 1;
                            break;
                        }
                        Some(_) => items.push(self.read_expr(depth + 1)?),
                        None => return Err(FormatError::UnbalancedParens { at: position }),
                    }
                }
                SExprKind::List(items)
            }
        };
        Ok(SExpr {
            position,
            span,
            kind,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reads_nested_lists() {
        let expr = read_one("(seq (name news) (par (name story)))").unwrap();
        let (tag, rest) = expr.as_tagged().unwrap();
        assert_eq!(tag, "seq");
        assert_eq!(rest.len(), 2);
        let (tag, _) = rest[1].as_tagged().unwrap();
        assert_eq!(tag, "par");
    }

    #[test]
    fn reads_atoms() {
        let exprs = read_all("news 42 3.5 \"hi\" &other").unwrap();
        assert_eq!(exprs.len(), 5);
        assert_eq!(exprs[0].as_ident(), Some("news"));
        assert_eq!(exprs[1].as_number(), Some(42));
        assert!(matches!(exprs[2].kind, SExprKind::Real(x) if (x - 3.5).abs() < 1e-9));
        assert_eq!(exprs[3].as_text(), Some("hi"));
        assert!(matches!(exprs[4].kind, SExprKind::Ref(s) if s == "other"));
    }

    #[test]
    fn atoms_borrow_from_the_source() {
        let source = "(atom \"plain\")".to_string();
        let range = source.as_ptr() as usize..source.as_ptr() as usize + source.len();
        let expr = read_one(&source).unwrap();
        let items = expr.as_list().unwrap();
        let ident = items[0].as_ident().unwrap();
        assert!(range.contains(&(ident.as_ptr() as usize)), "ident copied");
        match &items[1].kind {
            SExprKind::Str(std::borrow::Cow::Borrowed(text)) => {
                assert!(range.contains(&(text.as_ptr() as usize)), "string copied");
            }
            other => panic!("unexpected expression {other:?}"),
        }
    }

    #[test]
    fn rejects_unbalanced_parens() {
        assert!(matches!(
            read_one("(a (b)").unwrap_err(),
            FormatError::UnbalancedParens { .. }
        ));
        assert!(matches!(
            read_one(")").unwrap_err(),
            FormatError::UnbalancedParens { .. }
        ));
    }

    #[test]
    fn rejects_depth_bombs_with_a_typed_error() {
        // One level under the limit still parses...
        let deep = format!(
            "{}a{}",
            "(".repeat(crate::MAX_NESTING),
            ")".repeat(crate::MAX_NESTING)
        );
        assert!(read_one(&deep).is_ok());
        // ...one over stops with TooDeep, not a stack overflow.
        let bomb = format!("{}a{}", "(".repeat(100_000), ")".repeat(100_000));
        match read_one(&bomb).unwrap_err() {
            FormatError::TooDeep { limit, at } => {
                assert_eq!(limit, crate::MAX_NESTING);
                assert_eq!(at.offset, crate::MAX_NESTING);
            }
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn rejects_trailing_content() {
        assert!(matches!(
            read_one("(a) (b)").unwrap_err(),
            FormatError::TrailingContent { .. }
        ));
    }

    #[test]
    fn rejects_empty_input_for_read_one() {
        assert!(matches!(
            read_one("").unwrap_err(),
            FormatError::UnexpectedEof
        ));
    }

    #[test]
    fn as_tagged_requires_leading_ident() {
        let expr = read_one("(42 a)").unwrap();
        assert!(expr.as_tagged().is_none());
        let expr = read_one("()").unwrap();
        assert!(expr.as_tagged().is_none());
        assert_eq!(expr.as_list().unwrap().len(), 0);
    }

    #[test]
    fn list_spans_run_paren_to_paren() {
        let source = "(a (b\n  c) d)";
        let expr = read_one(source).unwrap();
        assert_eq!(expr.span.text(source), Some(source));
        let items = expr.as_list().unwrap();
        assert_eq!(items[1].span.text(source), Some("(b\n  c)"));
        assert!(items[1].span.is_multiline());
        assert_eq!(items[2].span.text(source), Some("d"));
    }

    #[test]
    fn malformed_error_carries_position() {
        let expr = read_one("\n  (oops)").unwrap();
        let err = expr.malformed("node", "bad");
        match err {
            FormatError::Malformed { at, .. } => assert_eq!(at, Position::new(2, 3, 3)),
            other => panic!("unexpected error {other:?}"),
        }
    }
}
