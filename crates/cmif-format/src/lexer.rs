//! Tokenizer for the human-readable CMIF interchange format.
//!
//! The surface syntax is a small s-expression language: parenthesized
//! lists of identifiers, numbers, quoted strings and `&name` attribute
//! references, with `;` line comments. The paper stresses that CMIF
//! documents are "human-readable" (§5, §6); a parenthesized syntax keeps
//! the reader and writer small while remaining easy to inspect and diff.

use crate::error::{FormatError, Position, Result, Span};

/// One lexical token, together with the source span it was read from.
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    /// The token's kind and payload.
    pub kind: TokenKind,
    /// The bytes of the source text the token covers.
    pub span: Span,
}

impl Token {
    /// Where the token starts in the source text.
    pub fn position(&self) -> Position {
        self.span.start
    }
}

/// The kinds of token the format uses.
#[derive(Debug, Clone, PartialEq)]
pub enum TokenKind {
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// A bare identifier (no whitespace, quotes or parentheses).
    Ident(String),
    /// An integral number.
    Number(i64),
    /// A real number.
    Real(f64),
    /// A quoted string with escape sequences resolved.
    Str(String),
    /// An `&name` reference to another attribute.
    Ref(String),
}

/// Tokenizes an entire source text.
pub fn tokenize(source: &str) -> Result<Vec<Token>> {
    Lexer::new(source).run()
}

struct Lexer<'a> {
    chars: std::iter::Peekable<std::str::Chars<'a>>,
    line: u32,
    column: u32,
    offset: usize,
}

impl<'a> Lexer<'a> {
    fn new(source: &'a str) -> Lexer<'a> {
        Lexer {
            chars: source.chars().peekable(),
            line: 1,
            column: 1,
            offset: 0,
        }
    }

    fn position(&self) -> Position {
        Position::new(self.line, self.column, self.offset)
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.chars.next()?;
        self.offset += c.len_utf8();
        if c == '\n' {
            self.line += 1;
            self.column = 1;
        } else {
            self.column += 1;
        }
        Some(c)
    }

    fn run(mut self) -> Result<Vec<Token>> {
        let mut tokens = Vec::new();
        loop {
            // Skip whitespace and comments.
            match self.chars.peek() {
                Some(c) if c.is_whitespace() => {
                    self.bump();
                    continue;
                }
                Some(';') => {
                    while let Some(c) = self.bump() {
                        if c == '\n' {
                            break;
                        }
                    }
                    continue;
                }
                None => break,
                _ => {}
            }

            let position = self.position();
            let c = match self.chars.peek() {
                Some(&c) => c,
                None => break,
            };
            let kind = match c {
                '(' => {
                    self.bump();
                    TokenKind::LParen
                }
                ')' => {
                    self.bump();
                    TokenKind::RParen
                }
                '"' => {
                    self.bump();
                    TokenKind::Str(self.read_string(position)?)
                }
                '&' => {
                    self.bump();
                    let name = self.read_bareword();
                    if name.is_empty() {
                        return Err(FormatError::UnexpectedChar {
                            found: '&',
                            at: position,
                        });
                    }
                    TokenKind::Ref(name)
                }
                c if c == '-' || c.is_ascii_digit() => {
                    let word = self.read_bareword();
                    Self::classify_number_or_ident(word, position)?
                }
                c if is_ident_char(c) => TokenKind::Ident(self.read_bareword()),
                other => {
                    return Err(FormatError::UnexpectedChar {
                        found: other,
                        at: position,
                    });
                }
            };
            tokens.push(Token {
                kind,
                span: Span::new(position, self.offset),
            });
        }
        Ok(tokens)
    }

    fn classify_number_or_ident(word: String, position: Position) -> Result<TokenKind> {
        // A lone `-` or a word that merely starts with a digit but contains
        // identifier characters (e.g. `3d-graph`) is an identifier.
        if word == "-" {
            return Ok(TokenKind::Ident(word));
        }
        if let Ok(n) = word.parse::<i64>() {
            return Ok(TokenKind::Number(n));
        }
        if let Ok(x) = word.parse::<f64>() {
            return Ok(TokenKind::Real(x));
        }
        // Words like `-abc` or `12x` fall back to identifiers unless they
        // look overwhelmingly numeric, in which case report a bad number.
        if word
            .chars()
            .all(|c| c.is_ascii_digit() || c == '.' || c == '-' || c == '+')
        {
            return Err(FormatError::BadNumber {
                text: word,
                at: position,
            });
        }
        Ok(TokenKind::Ident(word))
    }

    fn read_bareword(&mut self) -> String {
        let mut word = String::new();
        while let Some(&c) = self.chars.peek() {
            if is_ident_char(c) {
                word.push(c);
                self.bump();
            } else {
                break;
            }
        }
        word
    }

    fn read_string(&mut self, start: Position) -> Result<String> {
        let mut out = String::new();
        loop {
            match self.bump() {
                Some('"') => return Ok(out),
                Some('\\') => match self.bump() {
                    Some('n') => out.push('\n'),
                    Some('t') => out.push('\t'),
                    Some(c) => out.push(c),
                    None => return Err(FormatError::UnterminatedString { at: start }),
                },
                Some(c) => out.push(c),
                None => return Err(FormatError::UnterminatedString { at: start }),
            }
        }
    }
}

/// Characters permitted inside bare identifiers and numbers.
fn is_ident_char(c: char) -> bool {
    !(c.is_whitespace() || c == '(' || c == ')' || c == '"' || c == ';' || c == '&')
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(source: &str) -> Vec<TokenKind> {
        tokenize(source)
            .unwrap()
            .into_iter()
            .map(|t| t.kind)
            .collect()
    }

    #[test]
    fn tokenizes_parens_and_idents() {
        assert_eq!(
            kinds("(seq news)"),
            vec![
                TokenKind::LParen,
                TokenKind::Ident("seq".into()),
                TokenKind::Ident("news".into()),
                TokenKind::RParen,
            ]
        );
    }

    #[test]
    fn tokenizes_numbers_reals_and_negatives() {
        assert_eq!(
            kinds("42 -17 3.5 -0.25"),
            vec![
                TokenKind::Number(42),
                TokenKind::Number(-17),
                TokenKind::Real(3.5),
                TokenKind::Real(-0.25),
            ]
        );
    }

    #[test]
    fn tokenizes_strings_with_escapes() {
        assert_eq!(
            kinds(r#""hello world" "line\nbreak" "quote \" inside""#),
            vec![
                TokenKind::Str("hello world".into()),
                TokenKind::Str("line\nbreak".into()),
                TokenKind::Str("quote \" inside".into()),
            ]
        );
    }

    #[test]
    fn tokenizes_refs() {
        assert_eq!(kinds("&other"), vec![TokenKind::Ref("other".into())]);
    }

    #[test]
    fn skips_comments_and_whitespace() {
        let toks = kinds("; header comment\n(a ; trailing\n b)\n");
        assert_eq!(
            toks,
            vec![
                TokenKind::LParen,
                TokenKind::Ident("a".into()),
                TokenKind::Ident("b".into()),
                TokenKind::RParen,
            ]
        );
    }

    #[test]
    fn reports_positions() {
        let toks = tokenize("(a\n  b)").unwrap();
        assert_eq!(toks[0].position(), Position::new(1, 1, 0));
        assert_eq!(toks[2].position(), Position::new(2, 3, 5));
    }

    #[test]
    fn spans_cover_exactly_the_token_text() {
        let source = "(story-3 \"two words\" 42)";
        let toks = tokenize(source).unwrap();
        let texts: Vec<&str> = toks
            .iter()
            .map(|t| t.span.text(source).expect("span in range"))
            .collect();
        assert_eq!(texts, vec!["(", "story-3", "\"two words\"", "42", ")"]);
        assert_eq!(toks[1].span.len(), "story-3".len());
    }

    #[test]
    fn unterminated_string_is_an_error() {
        assert!(matches!(
            tokenize("\"abc").unwrap_err(),
            FormatError::UnterminatedString { .. }
        ));
    }

    #[test]
    fn bad_number_is_an_error() {
        assert!(matches!(
            tokenize("1.2.3").unwrap_err(),
            FormatError::BadNumber { .. }
        ));
    }

    #[test]
    fn dangling_ref_is_an_error() {
        assert!(matches!(
            tokenize("& ").unwrap_err(),
            FormatError::UnexpectedChar { .. }
        ));
    }

    #[test]
    fn hyphenated_identifiers_are_idents() {
        assert_eq!(
            kinds("story-3 talking-head"),
            vec![
                TokenKind::Ident("story-3".into()),
                TokenKind::Ident("talking-head".into()),
            ]
        );
        assert_eq!(kinds("-"), vec![TokenKind::Ident("-".into())]);
    }

    #[test]
    fn empty_input_yields_no_tokens() {
        assert!(tokenize("").unwrap().is_empty());
        assert!(tokenize("   \n ; just a comment").unwrap().is_empty());
    }
}
