//! Tokenizer for the human-readable CMIF interchange format.
//!
//! The surface syntax is a small s-expression language: parenthesized
//! lists of identifiers, numbers, quoted strings and `&name` attribute
//! references, with `;` line comments. The paper stresses that CMIF
//! documents are "human-readable" (§5, §6); a parenthesized syntax keeps
//! the reader and writer small while remaining easy to inspect and diff.
//!
//! # Zero-copy
//!
//! Tokens **borrow** their text from the source: an identifier or `&name`
//! reference is a `&str` slice of the input, and a quoted string only
//! allocates when it contains escape sequences ([`Cow::Owned`]) — a plain
//! `"like this"` borrows too. The parser layers above intern identifiers
//! directly into [`cmif_core::symbol::Symbol`]s, so the hot path from
//! source text to document carries no per-token `String` at all.

use std::borrow::Cow;

use crate::error::{FormatError, Position, Result, Span};

/// One lexical token, together with the source span it was read from.
#[derive(Debug, Clone, PartialEq)]
pub struct Token<'a> {
    /// The token's kind and payload (borrowed from the source).
    pub kind: TokenKind<'a>,
    /// The bytes of the source text the token covers.
    pub span: Span,
}

impl Token<'_> {
    /// Where the token starts in the source text.
    pub fn position(&self) -> Position {
        self.span.start
    }
}

/// The kinds of token the format uses. Textual payloads borrow from the
/// source text being tokenized.
#[derive(Debug, Clone, PartialEq)]
pub enum TokenKind<'a> {
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// A bare identifier (no whitespace, quotes or parentheses), borrowed
    /// from the source.
    Ident(&'a str),
    /// An integral number.
    Number(i64),
    /// A real number.
    Real(f64),
    /// A quoted string with escape sequences resolved. Borrowed when the
    /// literal contains no escapes, owned otherwise.
    Str(Cow<'a, str>),
    /// An `&name` reference to another attribute, borrowed from the source.
    Ref(&'a str),
}

/// Tokenizes an entire source text. Token payloads borrow from `source`.
pub fn tokenize(source: &str) -> Result<Vec<Token<'_>>> {
    Lexer::new(source).run()
}

struct Lexer<'a> {
    source: &'a str,
    chars: std::iter::Peekable<std::str::Chars<'a>>,
    line: u32,
    column: u32,
    offset: usize,
}

impl<'a> Lexer<'a> {
    fn new(source: &'a str) -> Lexer<'a> {
        Lexer {
            source,
            chars: source.chars().peekable(),
            line: 1,
            column: 1,
            offset: 0,
        }
    }

    fn position(&self) -> Position {
        Position::new(self.line, self.column, self.offset)
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.chars.next()?;
        self.offset += c.len_utf8();
        if c == '\n' {
            self.line += 1;
            self.column = 1;
        } else {
            self.column += 1;
        }
        Some(c)
    }

    fn run(mut self) -> Result<Vec<Token<'a>>> {
        let mut tokens = Vec::new();
        loop {
            // Skip whitespace and comments.
            match self.chars.peek() {
                Some(c) if c.is_whitespace() => {
                    self.bump();
                    continue;
                }
                Some(';') => {
                    while let Some(c) = self.bump() {
                        if c == '\n' {
                            break;
                        }
                    }
                    continue;
                }
                None => break,
                _ => {}
            }

            let position = self.position();
            let c = match self.chars.peek() {
                Some(&c) => c,
                None => break,
            };
            let kind = match c {
                '(' => {
                    self.bump();
                    TokenKind::LParen
                }
                ')' => {
                    self.bump();
                    TokenKind::RParen
                }
                '"' => {
                    self.bump();
                    TokenKind::Str(self.read_string(position)?)
                }
                '&' => {
                    self.bump();
                    let name = self.read_bareword();
                    if name.is_empty() {
                        return Err(FormatError::UnexpectedChar {
                            found: '&',
                            at: position,
                        });
                    }
                    TokenKind::Ref(name)
                }
                c if c == '-' || c.is_ascii_digit() => {
                    let word = self.read_bareword();
                    Self::classify_number_or_ident(word, position)?
                }
                c if is_ident_char(c) => TokenKind::Ident(self.read_bareword()),
                other => {
                    return Err(FormatError::UnexpectedChar {
                        found: other,
                        at: position,
                    });
                }
            };
            tokens.push(Token {
                kind,
                span: Span::new(position, self.position()),
            });
        }
        Ok(tokens)
    }

    fn classify_number_or_ident(word: &'a str, position: Position) -> Result<TokenKind<'a>> {
        // A lone `-` or a word that merely starts with a digit but contains
        // identifier characters (e.g. `3d-graph`) is an identifier.
        if word == "-" {
            return Ok(TokenKind::Ident(word));
        }
        if let Ok(n) = word.parse::<i64>() {
            return Ok(TokenKind::Number(n));
        }
        if let Ok(x) = word.parse::<f64>() {
            return Ok(TokenKind::Real(x));
        }
        // Words like `-abc` or `12x` fall back to identifiers unless they
        // look overwhelmingly numeric, in which case report a bad number.
        if word
            .chars()
            .all(|c| c.is_ascii_digit() || c == '.' || c == '-' || c == '+')
        {
            return Err(FormatError::BadNumber {
                text: word.to_string(),
                at: position,
            });
        }
        Ok(TokenKind::Ident(word))
    }

    /// Reads a run of identifier characters as a slice of the source — no
    /// per-token allocation.
    fn read_bareword(&mut self) -> &'a str {
        let start = self.offset;
        while let Some(&c) = self.chars.peek() {
            if is_ident_char(c) {
                self.bump();
            } else {
                break;
            }
        }
        &self.source[start..self.offset]
    }

    /// Reads a quoted string. When the literal contains no escapes the
    /// content is borrowed straight from the source; escapes force one
    /// owned buffer.
    fn read_string(&mut self, start: Position) -> Result<Cow<'a, str>> {
        let content_start = self.offset;
        // Fast path: scan to the closing quote; bail to the slow path at
        // the first backslash.
        loop {
            match self.chars.peek() {
                Some('"') => {
                    let content = &self.source[content_start..self.offset];
                    self.bump();
                    return Ok(Cow::Borrowed(content));
                }
                Some('\\') => break,
                Some(_) => {
                    self.bump();
                }
                None => return Err(FormatError::UnterminatedString { at: start }),
            }
        }
        // Slow path: copy what was scanned so far, then resolve escapes.
        let mut out = String::from(&self.source[content_start..self.offset]);
        loop {
            match self.bump() {
                Some('"') => return Ok(Cow::Owned(out)),
                Some('\\') => match self.bump() {
                    Some('n') => out.push('\n'),
                    Some('t') => out.push('\t'),
                    Some(c) => out.push(c),
                    None => return Err(FormatError::UnterminatedString { at: start }),
                },
                Some(c) => out.push(c),
                None => return Err(FormatError::UnterminatedString { at: start }),
            }
        }
    }
}

/// Characters permitted inside bare identifiers and numbers.
fn is_ident_char(c: char) -> bool {
    !(c.is_whitespace() || c == '(' || c == ')' || c == '"' || c == ';' || c == '&')
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(source: &str) -> Vec<TokenKind<'_>> {
        tokenize(source)
            .unwrap()
            .into_iter()
            .map(|t| t.kind)
            .collect()
    }

    /// True when `slice` points into `source`'s buffer (i.e. was borrowed,
    /// not copied).
    fn borrows_from(source: &str, slice: &str) -> bool {
        let source_range = source.as_ptr() as usize..source.as_ptr() as usize + source.len();
        source_range.contains(&(slice.as_ptr() as usize))
    }

    #[test]
    fn tokenizes_parens_and_idents() {
        assert_eq!(
            kinds("(seq news)"),
            vec![
                TokenKind::LParen,
                TokenKind::Ident("seq"),
                TokenKind::Ident("news"),
                TokenKind::RParen,
            ]
        );
    }

    #[test]
    fn idents_and_refs_borrow_from_the_source() {
        let source = "(story-3 &other \"plain string\")".to_string();
        let tokens = tokenize(&source).unwrap();
        match &tokens[1].kind {
            TokenKind::Ident(text) => {
                assert!(borrows_from(&source, text), "ident was copied");
            }
            other => panic!("unexpected token {other:?}"),
        }
        match &tokens[2].kind {
            TokenKind::Ref(text) => {
                assert!(borrows_from(&source, text), "ref was copied");
            }
            other => panic!("unexpected token {other:?}"),
        }
        match &tokens[3].kind {
            TokenKind::Str(Cow::Borrowed(text)) => {
                assert!(borrows_from(&source, text), "escape-free string copied");
            }
            other => panic!("unexpected token {other:?}"),
        }
    }

    #[test]
    fn only_escaped_strings_allocate() {
        let source = r#""no escapes" "line\nbreak""#;
        let tokens = tokenize(source).unwrap();
        assert!(matches!(&tokens[0].kind, TokenKind::Str(Cow::Borrowed(_))));
        match &tokens[1].kind {
            TokenKind::Str(Cow::Owned(text)) => assert_eq!(text, "line\nbreak"),
            other => panic!("unexpected token {other:?}"),
        }
    }

    #[test]
    fn tokenizes_numbers_reals_and_negatives() {
        assert_eq!(
            kinds("42 -17 3.5 -0.25"),
            vec![
                TokenKind::Number(42),
                TokenKind::Number(-17),
                TokenKind::Real(3.5),
                TokenKind::Real(-0.25),
            ]
        );
    }

    #[test]
    fn tokenizes_strings_with_escapes() {
        assert_eq!(
            kinds(r#""hello world" "line\nbreak" "quote \" inside""#),
            vec![
                TokenKind::Str("hello world".into()),
                TokenKind::Str("line\nbreak".into()),
                TokenKind::Str("quote \" inside".into()),
            ]
        );
    }

    #[test]
    fn tokenizes_refs() {
        assert_eq!(kinds("&other"), vec![TokenKind::Ref("other")]);
    }

    #[test]
    fn skips_comments_and_whitespace() {
        let toks = kinds("; header comment\n(a ; trailing\n b)\n");
        assert_eq!(
            toks,
            vec![
                TokenKind::LParen,
                TokenKind::Ident("a"),
                TokenKind::Ident("b"),
                TokenKind::RParen,
            ]
        );
    }

    #[test]
    fn reports_positions() {
        let toks = tokenize("(a\n  b)").unwrap();
        assert_eq!(toks[0].position(), Position::new(1, 1, 0));
        assert_eq!(toks[2].position(), Position::new(2, 3, 5));
    }

    #[test]
    fn span_ends_carry_line_and_column() {
        let toks = tokenize("(a\n  bcd)").unwrap();
        // `(` ends where `a` starts.
        assert_eq!(toks[0].span.end, Position::new(1, 2, 1));
        // `bcd` starts at 2:3 and ends one past its last byte, same line.
        assert_eq!(toks[2].span.start, Position::new(2, 3, 5));
        assert_eq!(toks[2].span.end, Position::new(2, 6, 8));
        assert!(!toks[2].span.is_multiline());
    }

    #[test]
    fn spans_cover_exactly_the_token_text() {
        let source = "(story-3 \"two words\" 42)";
        let toks = tokenize(source).unwrap();
        let texts: Vec<&str> = toks
            .iter()
            .map(|t| t.span.text(source).expect("span in range"))
            .collect();
        assert_eq!(texts, vec!["(", "story-3", "\"two words\"", "42", ")"]);
        assert_eq!(toks[1].span.len(), "story-3".len());
    }

    #[test]
    fn unterminated_string_is_an_error() {
        assert!(matches!(
            tokenize("\"abc").unwrap_err(),
            FormatError::UnterminatedString { .. }
        ));
        assert!(matches!(
            tokenize("\"abc\\").unwrap_err(),
            FormatError::UnterminatedString { .. }
        ));
    }

    #[test]
    fn bad_number_is_an_error() {
        assert!(matches!(
            tokenize("1.2.3").unwrap_err(),
            FormatError::BadNumber { .. }
        ));
    }

    #[test]
    fn dangling_ref_is_an_error() {
        assert!(matches!(
            tokenize("& ").unwrap_err(),
            FormatError::UnexpectedChar { .. }
        ));
    }

    #[test]
    fn hyphenated_identifiers_are_idents() {
        assert_eq!(
            kinds("story-3 talking-head"),
            vec![
                TokenKind::Ident("story-3"),
                TokenKind::Ident("talking-head")
            ]
        );
        assert_eq!(kinds("-"), vec![TokenKind::Ident("-")]);
    }

    #[test]
    fn empty_input_yields_no_tokens() {
        assert!(tokenize("").unwrap().is_empty());
        assert!(tokenize("   \n ; just a comment").unwrap().is_empty());
    }
}
