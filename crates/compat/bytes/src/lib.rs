//! Offline stand-in for the `bytes` crate.
//!
//! The build environment has no network access to a crates registry, so the
//! workspace vendors the tiny subset of the real `bytes` API that the CMIF
//! crates use: an immutable, cheaply cloneable byte buffer ([`Bytes`]) that
//! supports zero-copy slicing. Clones and slices share one reference-counted
//! allocation, matching the cost model the media substrate relies on.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use std::fmt;
use std::ops::{Bound, Deref, RangeBounds};
use std::sync::Arc;

/// An immutable, reference-counted byte buffer.
///
/// Cloning is O(1); [`Bytes::slice`] returns a view sharing the same
/// allocation. This mirrors `bytes::Bytes` for the operations the CMIF
/// media layer performs.
#[derive(Clone, Default)]
pub struct Bytes {
    data: Arc<[u8]>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// Creates an empty buffer without allocating.
    pub fn new() -> Bytes {
        Bytes::default()
    }

    /// Creates a buffer holding a copy of `data`.
    pub fn copy_from_slice(data: &[u8]) -> Bytes {
        Bytes::from(data.to_vec())
    }

    /// The number of bytes in this view.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Whether the view is empty.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// Returns a view of a sub-range of this buffer, sharing the allocation.
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds or inverted, like the real
    /// `bytes::Bytes::slice`.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Bytes {
        let len = self.len();
        let begin = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let end = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => len,
        };
        assert!(
            begin <= end && end <= len,
            "range {begin}..{end} out of bounds for buffer of {len} bytes"
        );
        Bytes {
            data: Arc::clone(&self.data),
            start: self.start + begin,
            end: self.start + end,
        }
    }

    /// The bytes of this view as a slice.
    fn bytes(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }

    /// Copies the view into an owned `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.bytes().to_vec()
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        self.bytes()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.bytes()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(data: Vec<u8>) -> Bytes {
        let end = data.len();
        Bytes {
            data: data.into(),
            start: 0,
            end,
        }
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(data: &'static [u8]) -> Bytes {
        Bytes::copy_from_slice(data)
    }
}

impl From<&'static str> for Bytes {
    fn from(data: &'static str) -> Bytes {
        Bytes::copy_from_slice(data.as_bytes())
    }
}

impl FromIterator<u8> for Bytes {
    fn from_iter<I: IntoIterator<Item = u8>>(iter: I) -> Bytes {
        Bytes::from(iter.into_iter().collect::<Vec<u8>>())
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Bytes) -> bool {
        self.bytes() == other.bytes()
    }
}

impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.bytes() == other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.bytes() == other.as_slice()
    }
}

impl std::hash::Hash for Bytes {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.bytes().hash(state);
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Bytes({} bytes)", self.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slice_shares_allocation_and_reads_correctly() {
        let b = Bytes::from(vec![0, 1, 2, 3, 4, 5]);
        let mid = b.slice(2..5);
        assert_eq!(&mid[..], &[2, 3, 4]);
        let tail = mid.slice(1..);
        assert_eq!(&tail[..], &[3, 4]);
    }

    #[test]
    fn equality_ignores_sharing() {
        let a = Bytes::from(vec![7, 8, 9]);
        let b = Bytes::from(vec![0, 7, 8, 9]).slice(1..);
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn out_of_range_slice_panics() {
        Bytes::from(vec![1, 2]).slice(0..3);
    }
}
