//! Offline stand-in for the `parking_lot` crate.
//!
//! Wraps the standard-library synchronization primitives behind
//! `parking_lot`'s non-poisoning API (`lock()`/`read()`/`write()` return
//! guards directly instead of `Result`s). A poisoned std lock simply keeps
//! serving the inner value, matching `parking_lot` semantics where a panic
//! while holding a lock does not poison it.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use std::sync::{self, MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A reader-writer lock with `parking_lot`'s non-poisoning interface.
#[derive(Debug, Default)]
pub struct RwLock<T> {
    inner: sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Creates a new lock holding `value`.
    pub fn new(value: T) -> RwLock<T> {
        RwLock {
            inner: sync::RwLock::new(value),
        }
    }

    /// Acquires a shared read guard, ignoring poisoning.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner
            .read()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Acquires an exclusive write guard, ignoring poisoning.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner
            .write()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner
            .get_mut()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

/// A mutual-exclusion lock with `parking_lot`'s non-poisoning interface.
#[derive(Debug, Default)]
pub struct Mutex<T> {
    inner: sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex holding `value`.
    pub fn new(value: T) -> Mutex<T> {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    /// Acquires the lock, ignoring poisoning.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner
            .lock()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner
            .get_mut()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rwlock_reads_and_writes() {
        let lock = RwLock::new(1);
        assert_eq!(*lock.read(), 1);
        *lock.write() += 41;
        assert_eq!(*lock.read(), 42);
        assert_eq!(lock.into_inner(), 42);
    }

    #[test]
    fn mutex_locks() {
        let m = Mutex::new(String::from("a"));
        m.lock().push('b');
        assert_eq!(m.into_inner(), "ab");
    }
}
