//! Offline stand-in for the `proptest` crate.
//!
//! Supports the subset the integration tests use: the [`proptest!`] macro
//! with `#![proptest_config(...)]`, arguments drawn from integer range
//! strategies and [`bool::ANY`], and the `prop_assert*` family. Instead of
//! random exploration with shrinking, cases are sampled deterministically
//! from a per-case seeded generator, so failures reproduce exactly across
//! runs without persisting a regression file.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use std::ops::Range;

use rand::rngs::SmallRng;
use rand::{Rng, RngCore, SampleRange, SeedableRng};

/// Test-runner configuration; only `cases` is honoured.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of cases each property is checked against.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases per property.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 32 }
    }
}

/// Deterministic per-case random source handed to strategies.
#[derive(Debug)]
pub struct TestRng {
    inner: SmallRng,
}

impl TestRng {
    /// A generator whose sequence is a pure function of the case index.
    pub fn for_case(case: u64) -> TestRng {
        TestRng {
            inner: SmallRng::seed_from_u64(case.wrapping_mul(0x9E37_79B9_7F4A_7C15)),
        }
    }
}

impl RngCore for TestRng {
    fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }
}

/// A source of values for one property argument.
///
/// The real proptest `Strategy` produces shrinkable value trees; this
/// stand-in only needs to produce the value itself.
pub trait Strategy {
    /// The type of values this strategy produces.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! impl_range_strategy {
    ($($ty:ty),+) => {$(
        impl Strategy for Range<$ty> {
            type Value = $ty;

            fn sample(&self, rng: &mut TestRng) -> $ty {
                rng.gen_range(self.clone())
            }
        }
    )+};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;

    fn sample(&self, rng: &mut TestRng) -> f64 {
        self.clone().sample_from(rng)
    }
}

/// Types with a canonical "any value" strategy, mirroring
/// `proptest::arbitrary::Arbitrary` for the primitives the tests draw.
pub trait Arbitrary: Sized {
    /// Draws one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_uniform {
    ($($ty:ty),+) => {$(
        impl Arbitrary for $ty {
            fn arbitrary(rng: &mut TestRng) -> $ty {
                rng.next_u64() as $ty
            }
        }
    )+};
}

impl_arbitrary_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for core::primitive::bool {
    fn arbitrary(rng: &mut TestRng) -> core::primitive::bool {
        rng.next_u64() & 1 == 1
    }
}

/// Strategy produced by [`any`].
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(std::marker::PhantomData<T>);

/// The canonical strategy for every value of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Collection strategies.
pub mod collection {
    use std::ops::Range;

    use super::{SampleRange, Strategy, TestRng};

    /// Strategy for vectors with element strategy `S` and length in `size`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// Vectors of values drawn from `element`, with a length drawn from
    /// `size`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = if self.size.start + 1 >= self.size.end {
                self.size.start
            } else {
                self.size.clone().sample_from(rng)
            };
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Boolean strategies.
pub mod bool {
    use super::{RngCore, Strategy, TestRng};

    /// Strategy producing both boolean values.
    #[derive(Debug, Clone, Copy)]
    pub struct Any;

    /// Draws `true` or `false` with equal probability.
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;

        fn sample(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
}

/// The `proptest!` macro: wraps `#[test]` functions whose arguments are
/// drawn from strategies, running each body for `config.cases` cases.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $($rest:tt)*
    ) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ( $($rest:tt)* ) => {
        $crate::__proptest_items! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Implementation detail of [`proptest!`]: expands each property function.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    ( ($cfg:expr) ) => {};
    (
        ($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            for case in 0..config.cases {
                let mut rng = $crate::TestRng::for_case(u64::from(case));
                $( let $arg = $crate::Strategy::sample(&($strat), &mut rng); )+
                $body
            }
        }
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
}

/// Asserts a property holds; on failure the case panics (no shrinking).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts two values are equal; on failure the case panics (no shrinking).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Asserts two values differ; on failure the case panics (no shrinking).
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// The glob-import surface the tests use.
pub mod prelude {
    pub use crate::bool;
    pub use crate::{any, Any, Arbitrary};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
    pub use crate::{ProptestConfig, Strategy, TestRng};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]

        /// Arguments stay inside their declared ranges.
        #[test]
        fn ranges_respected(a in 1usize..5, b in 10i64..40, flag in crate::bool::ANY) {
            prop_assert!((1..5).contains(&a));
            prop_assert!((10..40).contains(&b));
            prop_assert_eq!(u64::from(flag) <= 1, true);
        }
    }

    #[test]
    fn cases_are_deterministic() {
        let mut one = TestRng::for_case(3);
        let mut two = TestRng::for_case(3);
        let s = 1usize..100;
        assert_eq!(
            Strategy::sample(&s, &mut one),
            Strategy::sample(&s, &mut two)
        );
    }
}
