//! Offline stand-in for the `criterion` crate.
//!
//! The bench targets under `crates/bench/benches` are written against the
//! real criterion API (`criterion_group!`, benchmark groups, per-input
//! benches). This shim keeps those targets compiling and producing useful
//! wall-clock numbers without a registry: each benchmark is warmed up once,
//! then timed for `sample_size` batches, and the mean/min per-iteration
//! times are printed in a criterion-like line format. There is no
//! statistical analysis, HTML report or regression detection.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level harness configuration, mirroring `criterion::Criterion`.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion {
            sample_size: 10,
            warm_up_time: Duration::from_millis(100),
            measurement_time: Duration::from_millis(500),
        }
    }
}

impl Criterion {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(mut self, samples: usize) -> Criterion {
        self.sample_size = samples.max(1);
        self
    }

    /// Sets the warm-up budget per benchmark.
    pub fn warm_up_time(mut self, duration: Duration) -> Criterion {
        self.warm_up_time = duration;
        self
    }

    /// Sets the measurement budget per benchmark.
    pub fn measurement_time(mut self, duration: Duration) -> Criterion {
        self.measurement_time = duration;
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
        }
    }

    /// Runs a single stand-alone benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F)
    where
        F: FnMut(&mut Bencher),
    {
        let name = id.into();
        run_one(self, &name, f);
    }
}

/// A named benchmark within a group, mirroring `criterion::BenchmarkId`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// A function name qualified by the parameter it was measured at.
    pub fn new(function: impl Into<String>, parameter: impl Display) -> BenchmarkId {
        BenchmarkId {
            id: format!("{}/{}", function.into(), parameter),
        }
    }

    /// An id that is only the parameter, for single-function groups.
    pub fn from_parameter(parameter: impl Display) -> BenchmarkId {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// A group of related benchmarks sharing a prefix.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Benchmarks `f` under `group/id`.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F)
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.into());
        run_one(self.criterion, &full, f);
    }

    /// Benchmarks `f` against a borrowed input under `group/id`.
    pub fn bench_with_input<I: ?Sized, F>(&mut self, id: BenchmarkId, input: &I, mut f: F)
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id.id);
        run_one(self.criterion, &full, |b| f(b, input));
    }

    /// Finishes the group (reporting already happened per benchmark).
    pub fn finish(self) {}
}

/// Times the closure handed to it by a benchmark body.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Runs `f` `iters` times, recording the total elapsed time.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_one<F: FnMut(&mut Bencher)>(criterion: &Criterion, name: &str, mut f: F) {
    // Warm-up: run single iterations until the warm-up budget is spent, and
    // use the observed cost to size the timed batches so each sample stays
    // well under the measurement budget.
    let warm_start = Instant::now();
    let mut warm_iters: u64 = 0;
    while warm_start.elapsed() < criterion.warm_up_time || warm_iters == 0 {
        let mut bencher = Bencher {
            iters: 1,
            elapsed: Duration::ZERO,
        };
        f(&mut bencher);
        warm_iters += 1;
        if warm_iters >= 1000 {
            break;
        }
    }
    let per_iter = warm_start.elapsed() / warm_iters as u32;
    let budget = criterion.measurement_time / criterion.sample_size as u32;
    let iters_per_sample = if per_iter.is_zero() {
        1000
    } else {
        (budget.as_nanos() / per_iter.as_nanos().max(1)).clamp(1, 1_000_000) as u64
    };

    let mut samples = Vec::with_capacity(criterion.sample_size);
    for _ in 0..criterion.sample_size {
        let mut bencher = Bencher {
            iters: iters_per_sample,
            elapsed: Duration::ZERO,
        };
        f(&mut bencher);
        samples.push(bencher.elapsed.as_secs_f64() / bencher.iters as f64);
    }
    let mean = samples.iter().sum::<f64>() / samples.len() as f64;
    let min = samples.iter().copied().fold(f64::INFINITY, f64::min);
    println!(
        "{name:<60} time: [min {} mean {}]  ({} samples x {} iters)",
        format_seconds(min),
        format_seconds(mean),
        samples.len(),
        iters_per_sample
    );
}

/// Formats a duration in seconds with the unit conventions of this shim's
/// report lines (`s`/`ms`/`µs`/`ns`) — exported so tools that parse those
/// lines (the bench-baselines differ) render with the same conventions.
pub fn format_seconds(seconds: f64) -> String {
    if seconds >= 1.0 {
        format!("{seconds:.3} s")
    } else if seconds >= 1e-3 {
        format!("{:.3} ms", seconds * 1e3)
    } else if seconds >= 1e-6 {
        format!("{:.3} µs", seconds * 1e6)
    } else {
        format!("{:.1} ns", seconds * 1e9)
    }
}

/// Declares a benchmark group function, mirroring `criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    (
        name = $name:ident;
        config = $config:expr;
        targets = $($target:path),+ $(,)?
    ) => {
        /// Entry point for this benchmark group (generated by
        /// `criterion_group!`).
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ( $name:ident, $($target:path),+ $(,)? ) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Declares the bench-target entry point, mirroring `criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ( $($group:path),+ $(,)? ) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny(c: &mut Criterion) {
        let mut group = c.benchmark_group("shim");
        group.bench_function("sum", |b| b.iter(|| (0..100u64).sum::<u64>()));
        group.bench_with_input(BenchmarkId::new("sum_to", 50u64), &50u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>())
        });
        group.finish();
    }

    #[test]
    fn harness_runs_to_completion() {
        let mut criterion = Criterion::default()
            .sample_size(2)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(2));
        tiny(&mut criterion);
    }
}
