//! Offline stand-in for the `rand` crate.
//!
//! Implements the subset the CMIF crates use — `rngs::SmallRng`,
//! [`SeedableRng::seed_from_u64`] and [`Rng::gen_range`] over half-open and
//! inclusive integer ranges plus half-open `f64` ranges — on top of the
//! SplitMix64/xorshift* generators. Sequences are fully deterministic per
//! seed, which is exactly what the jitter models and synthetic media
//! generators need for reproducible experiments.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Low-level uniform bit source, mirroring `rand_core::RngCore`.
pub trait RngCore {
    /// Returns the next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 uniformly distributed bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction of a generator from a 64-bit seed.
pub trait SeedableRng: Sized {
    /// Creates a generator whose sequence is a pure function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// High-level sampling interface, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Samples a value uniformly from `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty, like the real `rand`.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_from(self)
    }
}

impl<T: RngCore> Rng for T {}

/// Ranges that can produce a uniform sample, mirroring
/// `rand::distributions::uniform::SampleRange`.
pub trait SampleRange<T> {
    /// Draws one uniform sample from the range.
    fn sample_from<R: RngCore>(self, rng: &mut R) -> T;
}

/// Uniform `u64` in `[0, bound)` by Lemire-style rejection-free widening
/// multiply; bias is negligible for the bounds used in this workspace.
fn bounded(rng: &mut impl RngCore, bound: u64) -> u64 {
    assert!(bound > 0, "cannot sample from an empty range");
    ((u128::from(rng.next_u64()) * u128::from(bound)) >> 64) as u64
}

macro_rules! impl_int_range {
    ($($ty:ty),+) => {$(
        impl SampleRange<$ty> for Range<$ty> {
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $ty {
                assert!(self.start < self.end, "cannot sample from an empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + bounded(rng, span) as i128) as $ty
            }
        }

        impl SampleRange<$ty> for RangeInclusive<$ty> {
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $ty {
                let (start, end) = self.into_inner();
                assert!(start <= end, "cannot sample from an empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                if span > u128::from(u64::MAX) {
                    return (start as i128 + rng.next_u64() as i128) as $ty;
                }
                (start as i128 + bounded(rng, span as u64) as i128) as $ty
            }
        }
    )+};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample from an empty range");
        let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        self.start + unit * (self.end - self.start)
    }
}

impl SampleRange<f32> for Range<f32> {
    fn sample_from<R: RngCore>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "cannot sample from an empty range");
        let unit = (rng.next_u64() >> 40) as f32 / (1u64 << 24) as f32;
        self.start + unit * (self.end - self.start)
    }
}

/// Small, fast generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A deterministic xorshift64* generator, standing in for
    /// `rand::rngs::SmallRng`.
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        state: u64,
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            // xorshift64* (Vigna); the non-zero state invariant is
            // established in `seed_from_u64`.
            self.state ^= self.state >> 12;
            self.state ^= self.state << 25;
            self.state ^= self.state >> 27;
            self.state.wrapping_mul(0x2545_F491_4F6C_DD1D)
        }
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> SmallRng {
            // SplitMix64 scrambles the seed so that nearby seeds (0, 1, 2…)
            // produce unrelated sequences, and guarantees non-zero state.
            let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            SmallRng {
                state: if z == 0 { 0x9E37_79B9_7F4A_7C15 } else { z },
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_sequence() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u32..1000), b.gen_range(0u32..1000));
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(10i64..=20);
            assert!((10..=20).contains(&v));
            let f = rng.gen_range(110.0..880.0f64);
            assert!((110.0..880.0).contains(&f));
            let u = rng.gen_range(0usize..3);
            assert!(u < 3);
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SmallRng::seed_from_u64(1);
        let mut b = SmallRng::seed_from_u64(2);
        let va: Vec<u32> = (0..8).map(|_| a.gen_range(0u32..1_000_000)).collect();
        let vb: Vec<u32> = (0..8).map(|_| b.gen_range(0u32..1_000_000)).collect();
        assert_ne!(va, vb);
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        SmallRng::seed_from_u64(0).gen_range(5u32..5);
    }
}
