//! # cmif-hyper — hypermedia extensions to CMIF
//!
//! The paper leaves two hypermedia questions open: how hyper links interact
//! with presentation synchronization (§3.2) and what happens to relative
//! synchronization arcs when the reader navigates past their sources
//! (§5.3.3, conflict class 3). This crate implements the extension the paper
//! sketches:
//!
//! * [`links`] — named, directed hyper links between document nodes;
//! * [`conditional`] — conditional synchronization arcs, guarded by reader
//!   flags, presented channels, or the "source actually executes" predicate;
//! * [`navigation`] — seeking, fast-forward and link following over a solved
//!   schedule, reporting invalidated arcs and the re-based remaining
//!   timeline.
//!
//! ```
//! use cmif_core::prelude::*;
//! use cmif_scheduler::{ConstraintGraph, ScheduleOptions};
//! use cmif_hyper::navigation::Navigator;
//!
//! # fn main() -> std::result::Result<(), cmif_hyper::HyperError> {
//! let doc = DocumentBuilder::new("doc")
//!     .channel("caption", MediaKind::Text)
//!     .root_seq(|root| {
//!         root.imm_text("a", "caption", "first", 1_000);
//!         root.imm_text("b", "caption", "second", 1_000);
//!     })
//!     .build()?;
//! let solved = ConstraintGraph::derive(&doc, &doc.catalog, &ScheduleOptions::default())?
//!     .solve(&doc, &doc.catalog)?;
//! let navigator = Navigator::new(&doc, &solved);
//! let b = doc.find("/b")?;
//! assert_eq!(navigator.seek(b)?.skipped, 1);
//! # Ok(()) }
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod conditional;
pub mod error;
pub mod links;
pub mod navigation;

pub use error::{HyperError, Result};

pub use conditional::{
    apply_conditionals, constraints_with_conditionals, Condition, ConditionalArc,
    PresentationContext,
};
pub use links::{HyperLink, LinkSet};
pub use navigation::{NavigationResult, Navigator};
