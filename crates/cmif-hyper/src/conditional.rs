//! Conditional synchronization arcs.
//!
//! §3.2: "While we suspect that this general problem can be addressed via
//! the definition of conditional synchronization arcs that point to events
//! on separate channels, we have not developed these ideas in sufficient
//! detail to discuss them here." This module develops exactly that idea:
//! an arc guarded by a condition over the presentation context (reader
//! choices, presented channels, seek position). When the condition holds
//! the arc contributes a constraint; when it does not, the arc simply does
//! not exist for that presentation — which also gives a clean answer to the
//! §5.3.3 navigation conflict (arcs whose source was skipped are disabled
//! rather than invalid).

use std::collections::BTreeSet;

use crate::error::Result;
use cmif_core::arc::SyncArc;
use cmif_core::node::NodeId;
use cmif_core::symbol::Symbol;
use cmif_core::tree::Document;
use cmif_scheduler::{
    derive_constraints, rates_of, Constraint, ConstraintGraph, ConstraintOrigin, EventPoint,
    ScheduleOptions,
};

/// The condition guarding a conditional arc.
#[derive(Debug, Clone, PartialEq)]
pub enum Condition {
    /// The arc always applies (equivalent to a plain explicit arc).
    Always,
    /// The arc applies when the reader has set a named flag (a choice made
    /// through the user interface, e.g. "captions-on").
    Flag(Symbol),
    /// The arc applies when the named channel is being presented on the
    /// local device (not dropped by constraint filtering).
    ChannelPresented(Symbol),
    /// The arc applies only when its source node is part of the presented
    /// region (i.e. not skipped by navigation).
    SourceExecutes,
}

/// The presentation context a condition is evaluated against.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct PresentationContext {
    /// Reader-set flags.
    pub flags: BTreeSet<Symbol>,
    /// Channels the local device presents.
    pub presented_channels: BTreeSet<Symbol>,
    /// Nodes that will execute in this presentation (empty means "all").
    pub executing_nodes: BTreeSet<NodeId>,
}

impl PresentationContext {
    /// A context in which everything is presented and no flags are set.
    pub fn full() -> PresentationContext {
        PresentationContext::default()
    }

    /// Sets a reader flag (builder style).
    pub fn with_flag(mut self, flag: impl Into<Symbol>) -> Self {
        self.flags.insert(flag.into());
        self
    }

    /// Marks a channel as presented (builder style). A context with no
    /// presented channels recorded treats every channel as presented.
    pub fn with_channel(mut self, channel: impl Into<Symbol>) -> Self {
        self.presented_channels.insert(channel.into());
        self
    }

    /// Restricts execution to the given nodes (builder style).
    pub fn with_executing(mut self, nodes: impl IntoIterator<Item = NodeId>) -> Self {
        self.executing_nodes.extend(nodes);
        self
    }

    fn channel_presented(&self, channel: Symbol) -> bool {
        self.presented_channels.is_empty() || self.presented_channels.contains(&channel)
    }

    fn node_executes(&self, node: NodeId) -> bool {
        self.executing_nodes.is_empty() || self.executing_nodes.contains(&node)
    }
}

/// A synchronization arc guarded by a condition.
#[derive(Debug, Clone, PartialEq)]
pub struct ConditionalArc {
    /// The node carrying the arc (paths resolve relative to it).
    pub carrier: NodeId,
    /// The guard.
    pub condition: Condition,
    /// The arc itself.
    pub arc: SyncArc,
}

impl ConditionalArc {
    /// Creates a conditional arc.
    pub fn new(carrier: NodeId, condition: Condition, arc: SyncArc) -> ConditionalArc {
        ConditionalArc {
            carrier,
            condition,
            arc,
        }
    }

    /// Evaluates the guard against a context (needs the document to resolve
    /// the source endpoint for [`Condition::SourceExecutes`]).
    pub fn applies(&self, doc: &Document, context: &PresentationContext) -> Result<bool> {
        Ok(match &self.condition {
            Condition::Always => true,
            Condition::Flag(flag) => context.flags.contains(flag),
            Condition::ChannelPresented(channel) => context.channel_presented(*channel),
            Condition::SourceExecutes => {
                let source = doc.resolve_path(self.carrier, &self.arc.source)?;
                context.node_executes(source)
            }
        })
    }

    /// Converts the arc into a scheduler constraint (when its guard holds).
    pub fn to_constraint(
        &self,
        doc: &Document,
        resolver: &dyn cmif_core::descriptor::DescriptorResolver,
    ) -> Result<Constraint> {
        let source = doc.resolve_path(self.carrier, &self.arc.source)?;
        let destination = doc.resolve_path(self.carrier, &self.arc.destination)?;
        let rates = rates_of(doc, source, resolver)?;
        let offset_ms = self.arc.offset.to_millis(&rates)?.as_millis();
        Ok(Constraint {
            source: EventPoint {
                node: source,
                anchor: self.arc.source_anchor,
            },
            target: EventPoint {
                node: destination,
                anchor: self.arc.anchor,
            },
            offset_ms,
            min_delay_ms: self.arc.min_delay.as_millis(),
            max_delay_ms: self.arc.max_delay.bound().map(|d| d.as_millis()),
            strictness: self.arc.strictness,
            origin: ConstraintOrigin::Explicit {
                carrier: self.carrier,
                index: usize::MAX,
            },
        })
    }
}

/// Derives the document's constraints plus the conditional arcs whose guards
/// hold in the given context. Feed the result to
/// [`cmif_scheduler::solve_constraints`].
///
/// This is the one-shot form: it re-derives the document's constraints on
/// every call. A player that re-evaluates guards as the reader flips flags
/// should derive one [`ConstraintGraph`] and use
/// [`apply_conditionals`] per context instead — injected arcs re-relax
/// incrementally from the cached document fixpoint.
pub fn constraints_with_conditionals(
    doc: &Document,
    resolver: &dyn cmif_core::descriptor::DescriptorResolver,
    options: &ScheduleOptions,
    conditionals: &[ConditionalArc],
    context: &PresentationContext,
) -> Result<Vec<Constraint>> {
    let mut constraints = derive_constraints(doc, resolver, options)?;
    for conditional in conditionals {
        if conditional.applies(doc, context)? {
            constraints.push(conditional.to_constraint(doc, resolver)?);
        }
    }
    Ok(constraints)
}

/// Replaces the graph's injected constraints with the conditional arcs whose
/// guards hold in `context`.
///
/// The graph keeps its derived (document) constraints and their cached
/// relaxation fixpoint, so switching contexts costs only the incremental
/// re-relaxation — the document is never re-derived. Returns the number of
/// arcs injected.
pub fn apply_conditionals(
    graph: &mut ConstraintGraph,
    doc: &Document,
    resolver: &dyn cmif_core::descriptor::DescriptorResolver,
    conditionals: &[ConditionalArc],
    context: &PresentationContext,
) -> Result<usize> {
    // Evaluate every guard before touching the graph: an error mid-list
    // must leave the previously applied context intact, never a partial
    // injection of the new one.
    let mut constraints = Vec::new();
    for conditional in conditionals {
        if conditional.applies(doc, context)? {
            constraints.push(conditional.to_constraint(doc, resolver)?);
        }
    }
    let injected = constraints.len();
    graph.retract_injected();
    graph.inject_all(constraints);
    Ok(injected)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cmif_core::prelude::*;
    use cmif_scheduler::solve_constraints;

    fn doc() -> Document {
        DocumentBuilder::new("cond")
            .channel("audio", MediaKind::Audio)
            .channel("caption", MediaKind::Text)
            .descriptor(
                DataDescriptor::new("speech", MediaKind::Audio, "pcm8")
                    .with_duration(TimeMs::from_secs(6)),
            )
            .root_par(|story| {
                story.ext("voice", "audio", "speech");
                story.imm_text("subtitle", "caption", "translated text", 3_000);
            })
            .build()
            .unwrap()
    }

    #[test]
    fn flag_condition_gates_the_arc() {
        let d = doc();
        let subtitle = d.find("/subtitle").unwrap();
        let conditional = ConditionalArc::new(
            subtitle,
            Condition::Flag("captions-on".into()),
            SyncArc::hard_start("../voice", "").with_offset(MediaTime::seconds(2)),
        );
        let off = PresentationContext::full();
        let on = PresentationContext::full().with_flag("captions-on");
        assert!(!conditional.applies(&d, &off).unwrap());
        assert!(conditional.applies(&d, &on).unwrap());

        // Without the flag the subtitle starts at t=0; with it, at t=2s.
        // One graph serves both contexts: the document is derived once and
        // the conditional arc re-relaxes incrementally.
        let options = ScheduleOptions::default();
        let mut graph = ConstraintGraph::derive(&d, &d.catalog, &options).unwrap();
        let injected = apply_conditionals(
            &mut graph,
            &d,
            &d.catalog,
            std::slice::from_ref(&conditional),
            &off,
        )
        .unwrap();
        assert_eq!(injected, 0);
        let result = graph.solve(&d, &d.catalog).unwrap();
        assert_eq!(result.schedule.node_times[&subtitle].0, TimeMs::ZERO);

        let injected = apply_conditionals(
            &mut graph,
            &d,
            &d.catalog,
            std::slice::from_ref(&conditional),
            &on,
        )
        .unwrap();
        assert_eq!(injected, 1);
        let result = graph.solve(&d, &d.catalog).unwrap();
        assert_eq!(
            result.schedule.node_times[&subtitle].0,
            TimeMs::from_secs(2)
        );

        // The one-shot form agrees with the incremental graph.
        let constraints =
            constraints_with_conditionals(&d, &d.catalog, &options, &[conditional], &on).unwrap();
        let one_shot = solve_constraints(&d, &d.catalog, constraints).unwrap();
        assert_eq!(
            one_shot.schedule.node_times[&subtitle],
            result.schedule.node_times[&subtitle]
        );
    }

    #[test]
    fn failed_apply_leaves_the_previous_context_intact() {
        let d = doc();
        let subtitle = d.find("/subtitle").unwrap();
        let good = ConditionalArc::new(
            subtitle,
            Condition::Always,
            SyncArc::hard_start("../voice", "").with_offset(MediaTime::seconds(2)),
        );
        let bad = ConditionalArc::new(
            subtitle,
            Condition::Always,
            SyncArc::hard_start("../missing", ""),
        );
        let mut graph =
            ConstraintGraph::derive(&d, &d.catalog, &ScheduleOptions::default()).unwrap();
        let context = PresentationContext::full();
        apply_conditionals(
            &mut graph,
            &d,
            &d.catalog,
            std::slice::from_ref(&good),
            &context,
        )
        .unwrap();
        assert_eq!(graph.injected_constraints().len(), 1);

        // The second list errors on the unresolvable arc: the graph must
        // keep the previously applied context, not half of the new one.
        let result = apply_conditionals(&mut graph, &d, &d.catalog, &[good.clone(), bad], &context);
        assert!(result.is_err());
        assert_eq!(graph.injected_constraints().len(), 1);
        assert_eq!(
            graph.injected_constraints()[0],
            good.to_constraint(&d, &d.catalog).unwrap()
        );
    }

    #[test]
    fn channel_condition_follows_device_capabilities() {
        let d = doc();
        let subtitle = d.find("/subtitle").unwrap();
        let conditional = ConditionalArc::new(
            subtitle,
            Condition::ChannelPresented("caption".into()),
            SyncArc::hard_start("../voice", ""),
        );
        let everything = PresentationContext::full();
        assert!(conditional.applies(&d, &everything).unwrap());
        let audio_only = PresentationContext::full().with_channel("audio");
        assert!(!conditional.applies(&d, &audio_only).unwrap());
    }

    #[test]
    fn source_executes_condition_disables_skipped_sources() {
        let d = doc();
        let voice = d.find("/voice").unwrap();
        let subtitle = d.find("/subtitle").unwrap();
        let conditional = ConditionalArc::new(
            subtitle,
            Condition::SourceExecutes,
            SyncArc::hard_start("../voice", ""),
        );
        let full = PresentationContext::full();
        assert!(conditional.applies(&d, &full).unwrap());
        // A navigation that skips the voice disables the arc instead of
        // leaving it dangling.
        let skipped = PresentationContext::full().with_executing([subtitle]);
        assert!(!conditional.applies(&d, &skipped).unwrap());
        let includes_voice = PresentationContext::full().with_executing([voice, subtitle]);
        assert!(includes_voice.node_executes(voice));
        assert!(conditional.applies(&d, &includes_voice).unwrap());
    }

    #[test]
    fn always_condition_matches_plain_explicit_arcs() {
        let d = doc();
        let subtitle = d.find("/subtitle").unwrap();
        let voice = d.find("/voice").unwrap();
        let conditional = ConditionalArc::new(
            subtitle,
            Condition::Always,
            SyncArc::hard_start("../voice", "").from_source_anchor(Anchor::End),
        );
        let constraint = conditional.to_constraint(&d, &d.catalog).unwrap();
        assert_eq!(
            constraint.source,
            EventPoint {
                node: voice,
                anchor: Anchor::End
            }
        );
        assert_eq!(
            constraint.target,
            EventPoint {
                node: subtitle,
                anchor: Anchor::Begin
            }
        );
        assert_eq!(constraint.strictness, Strictness::Must);
    }
}
