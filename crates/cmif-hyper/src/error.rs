//! Error types for the hypermedia extension.
//!
//! Link and navigation failures carry the reader-visible context (the link
//! label or the path as written) rather than the raw node-model failure, so
//! an authoring or presentation tool can say "the link `more about the
//! artist` dangles" instead of "node 17 does not exist". Lower-layer errors
//! from the document model and the scheduler stay reachable through
//! [`std::error::Error::source`].

use std::fmt;

use cmif_core::error::CoreError;
use cmif_scheduler::SchedulerError;

/// Result alias used throughout `cmif-hyper`.
pub type Result<T> = std::result::Result<T, HyperError>;

/// Errors raised by links, conditional arcs and navigation.
#[derive(Debug, Clone, PartialEq)]
pub enum HyperError {
    /// A link endpoint written as a path does not resolve in the document.
    UnresolvedLink {
        /// The path exactly as the author wrote it.
        path: String,
        /// The underlying resolution failure.
        source: CoreError,
    },
    /// A structural error from the document model.
    Core(CoreError),
    /// A scheduling error while seeking or re-deriving constraints.
    Scheduler(SchedulerError),
}

impl fmt::Display for HyperError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HyperError::UnresolvedLink { path, .. } => {
                write!(f, "hyper link endpoint `{path}` does not resolve")
            }
            HyperError::Core(e) => write!(f, "document error: {e}"),
            HyperError::Scheduler(e) => write!(f, "scheduling error: {e}"),
        }
    }
}

impl std::error::Error for HyperError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            HyperError::UnresolvedLink { source, .. } => Some(source),
            HyperError::Core(e) => Some(e),
            HyperError::Scheduler(e) => Some(e),
        }
    }
}

impl From<CoreError> for HyperError {
    fn from(e: CoreError) -> Self {
        HyperError::Core(e)
    }
}

impl From<SchedulerError> for HyperError {
    fn from(e: SchedulerError) -> Self {
        HyperError::Scheduler(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unresolved_links_keep_the_authored_path() {
        use std::error::Error;
        let err = HyperError::UnresolvedLink {
            path: "/story-9".into(),
            source: CoreError::EmptyDocument,
        };
        assert!(err.to_string().contains("/story-9"));
        assert!(err.source().is_some());
    }

    #[test]
    fn lower_layers_convert() {
        assert!(matches!(
            HyperError::from(CoreError::EmptyDocument),
            HyperError::Core(_)
        ));
        let s = SchedulerError::ConstraintCycle {
            phase: "solve",
            points: 1,
        };
        assert!(matches!(HyperError::from(s), HyperError::Scheduler(_)));
    }
}
