//! Navigation: seeking, fast-forward and link following.
//!
//! §5.3.3 case 3: "in navigating through a document, a
//! reader/viewer/listener may want to fast-forward (or fast-reverse) to a
//! document section that contains a number of relative synchronization
//! constraints for which the source or destination are not active."
//! [`Navigator::seek`] implements that navigation over a solved schedule:
//! it reports which explicit arcs become invalid, which events remain to be
//! presented, and the re-based timeline starting at the seek point.

use crate::error::Result;
use cmif_core::node::NodeId;
use cmif_core::time::TimeMs;
use cmif_core::tree::Document;
use cmif_scheduler::{invalid_arcs_when_seeking, Conflict, Schedule, SolveResult, TimelineEntry};

use crate::links::{HyperLink, LinkSet};

/// The outcome of one navigation action.
#[derive(Debug, Clone, PartialEq)]
pub struct NavigationResult {
    /// The node navigation targeted.
    pub target: NodeId,
    /// The document-clock time presentation resumes at.
    pub resume_at: TimeMs,
    /// Events still to be presented, with times re-based so the seek point
    /// is zero.
    pub remaining: Vec<TimelineEntry>,
    /// Arcs invalidated by the jump (class-3 conflicts).
    pub invalidated: Vec<Conflict>,
    /// Events skipped entirely by the jump.
    pub skipped: usize,
}

impl NavigationResult {
    /// Duration of the remaining presentation.
    pub fn remaining_duration(&self) -> TimeMs {
        self.remaining
            .iter()
            .map(|e| e.end)
            .max()
            .unwrap_or(TimeMs::ZERO)
    }
}

/// A navigator over one solved document.
#[derive(Debug)]
pub struct Navigator<'a> {
    doc: &'a Document,
    solve: &'a SolveResult,
    links: LinkSet,
}

impl<'a> Navigator<'a> {
    /// Creates a navigator with no links.
    pub fn new(doc: &'a Document, solve: &'a SolveResult) -> Navigator<'a> {
        Navigator {
            doc,
            solve,
            links: LinkSet::new(),
        }
    }

    /// Attaches a link set (builder style).
    pub fn with_links(mut self, links: LinkSet) -> Self {
        self.links = links;
        self
    }

    /// The links anchored on a node.
    pub fn choices_at(&self, node: NodeId) -> Vec<&HyperLink> {
        self.links.from_node(node)
    }

    /// The schedule the navigator operates over.
    pub fn schedule(&self) -> &Schedule {
        &self.solve.schedule
    }

    /// Seeks to a node: presentation resumes at that node's scheduled begin
    /// time.
    pub fn seek(&self, target: NodeId) -> Result<NavigationResult> {
        let resume_at = self
            .solve
            .schedule
            .node_times
            .get(&target)
            .map(|(begin, _)| *begin)
            .unwrap_or(TimeMs::ZERO);
        let invalidated = invalid_arcs_when_seeking(self.doc, &self.solve.schedule, target)?;
        let mut remaining = Vec::new();
        let mut skipped = 0;
        for entry in &self.solve.schedule.entries {
            if entry.end <= resume_at {
                skipped += 1;
                continue;
            }
            let begin = entry.begin.max(resume_at);
            remaining.push(TimelineEntry {
                node: entry.node,
                name: entry.name,
                channel: entry.channel,
                medium: entry.medium,
                begin: TimeMs::from_millis(begin.as_millis() - resume_at.as_millis()),
                end: TimeMs::from_millis(entry.end.as_millis() - resume_at.as_millis()),
            });
        }
        Ok(NavigationResult {
            target,
            resume_at,
            remaining,
            invalidated,
            skipped,
        })
    }

    /// Follows a link by label from the current node.
    pub fn follow(&self, current: NodeId, label: &str) -> Result<Option<NavigationResult>> {
        let label = cmif_core::symbol::Symbol::lookup(label);
        let link = self
            .links
            .from_node(current)
            .into_iter()
            .find(|l| Some(l.label) == label);
        match link {
            Some(link) => Ok(Some(self.seek(link.target)?)),
            None => Ok(None),
        }
    }

    /// Fast-forwards by a number of milliseconds from a given position:
    /// seeks to the first leaf whose scheduled begin is at or after the new
    /// position (or to the last leaf when the jump passes the end).
    pub fn fast_forward(&self, from: TimeMs, by_ms: i64) -> Result<Option<NavigationResult>> {
        let target_time = TimeMs::from_millis(from.as_millis() + by_ms.max(0));
        let candidate = self
            .solve
            .schedule
            .entries
            .iter()
            .find(|e| e.begin >= target_time)
            .or_else(|| self.solve.schedule.entries.last());
        match candidate {
            Some(entry) => Ok(Some(self.seek(entry.node)?)),
            None => Ok(None),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cmif_core::arc::SyncArc;
    use cmif_core::prelude::*;
    use cmif_scheduler::{ConstraintGraph, ScheduleOptions};

    fn three_story_doc() -> Document {
        let mut builder = DocumentBuilder::new("news")
            .channel("audio", MediaKind::Audio)
            .channel("caption", MediaKind::Text);
        for story in 1..=3 {
            builder = builder.descriptor(
                DataDescriptor::new(format!("speech-{story}"), MediaKind::Audio, "pcm8")
                    .with_duration(TimeMs::from_secs(4)),
            );
        }
        let mut doc = builder
            .root_seq(|news| {
                for story in 1..=3 {
                    news.par(&format!("story-{story}"), |s| {
                        s.ext("voice", "audio", &format!("speech-{story}"));
                        s.imm_text("line", "caption", format!("caption {story}"), 2_000);
                    });
                }
            })
            .build()
            .unwrap();
        // A cross-story arc: story-3's caption synchronizes off story-1's voice.
        let line3 = doc.find("/story-3/line").unwrap();
        doc.add_arc(
            line3,
            SyncArc::relaxed_start("/story-1/voice", "").with_offset(MediaTime::seconds(9)),
        )
        .unwrap();
        doc
    }

    #[test]
    fn seek_rebases_the_remaining_timeline() {
        let doc = three_story_doc();
        let result = ConstraintGraph::derive(&doc, &doc.catalog, &ScheduleOptions::default())
            .unwrap()
            .solve(&doc, &doc.catalog)
            .unwrap();
        let navigator = Navigator::new(&doc, &result);
        let story2 = doc.find("/story-2").unwrap();
        let nav = navigator.seek(story2).unwrap();
        assert_eq!(nav.resume_at, TimeMs::from_secs(4));
        assert_eq!(nav.skipped, 2); // story-1's two events are over
        assert_eq!(nav.remaining.len(), 4);
        assert_eq!(nav.remaining[0].begin, TimeMs::ZERO);
        assert_eq!(nav.remaining_duration(), TimeMs::from_secs(8));
    }

    #[test]
    fn seeking_past_an_arc_source_reports_class3_conflicts() {
        let doc = three_story_doc();
        let result = ConstraintGraph::derive(&doc, &doc.catalog, &ScheduleOptions::default())
            .unwrap()
            .solve(&doc, &doc.catalog)
            .unwrap();
        let navigator = Navigator::new(&doc, &result);
        let story3 = doc.find("/story-3").unwrap();
        let nav = navigator.seek(story3).unwrap();
        assert_eq!(nav.invalidated.len(), 1);
        assert!(nav.invalidated.iter().all(|c| c.class() == 3));
        // Seeking to the start invalidates nothing.
        let root = doc.root().unwrap();
        assert!(navigator.seek(root).unwrap().invalidated.is_empty());
    }

    #[test]
    fn links_drive_navigation() {
        let doc = three_story_doc();
        let result = ConstraintGraph::derive(&doc, &doc.catalog, &ScheduleOptions::default())
            .unwrap()
            .solve(&doc, &doc.catalog)
            .unwrap();
        let mut links = LinkSet::new();
        links
            .add(&doc, "skip to the weather", "/story-1", "/story-3")
            .unwrap();
        let navigator = Navigator::new(&doc, &result).with_links(links);
        let story1 = doc.find("/story-1").unwrap();
        assert_eq!(navigator.choices_at(story1).len(), 1);
        let nav = navigator
            .follow(story1, "skip to the weather")
            .unwrap()
            .unwrap();
        assert_eq!(nav.resume_at, TimeMs::from_secs(8));
        assert!(navigator.follow(story1, "no such link").unwrap().is_none());
    }

    #[test]
    fn fast_forward_lands_on_the_next_event() {
        let doc = three_story_doc();
        let result = ConstraintGraph::derive(&doc, &doc.catalog, &ScheduleOptions::default())
            .unwrap()
            .solve(&doc, &doc.catalog)
            .unwrap();
        let navigator = Navigator::new(&doc, &result);
        let nav = navigator
            .fast_forward(TimeMs::ZERO, 5_000)
            .unwrap()
            .unwrap();
        // The next event at or after t=5s is story-3's material (story-2
        // started at 4s).
        assert!(nav.resume_at >= TimeMs::from_secs(5));
        // Jumping far past the end lands on the last event.
        let nav = navigator
            .fast_forward(TimeMs::ZERO, 60_000)
            .unwrap()
            .unwrap();
        assert!(nav.resume_at >= TimeMs::from_secs(8));
    }
}
