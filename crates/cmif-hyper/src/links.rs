//! Hyper links between document nodes.
//!
//! §3.2 relates CMIF to hypertext systems: "The entire question of hyper
//! access to data is intimately related to the concepts of document
//! presentation synchronization." The paper stops short of defining links;
//! this extension adds the simplest useful form — named, directed links
//! between nodes of one document — so navigation (and the arc-invalidation
//! semantics of §5.3.3 case 3) can be exercised end-to-end.

use crate::error::{HyperError, Result};
use cmif_core::error::CoreError;
use cmif_core::node::NodeId;
use cmif_core::path::NodePath;
use cmif_core::symbol::Symbol;
use cmif_core::tree::Document;

/// One directed hyper link.
#[derive(Debug, Clone, PartialEq)]
pub struct HyperLink {
    /// An interned label shown to the reader ("more about the artist").
    /// Labels double as link anchors, so they flow as `Copy` symbols like
    /// every other name in the system.
    pub label: Symbol,
    /// The node the link is anchored on.
    pub source: NodeId,
    /// The node the link jumps to.
    pub target: NodeId,
}

/// A set of links over one document.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct LinkSet {
    links: Vec<HyperLink>,
}

impl LinkSet {
    /// Creates an empty link set.
    pub fn new() -> LinkSet {
        LinkSet::default()
    }

    /// Number of links.
    pub fn len(&self) -> usize {
        self.links.len()
    }

    /// True when there are no links.
    pub fn is_empty(&self) -> bool {
        self.links.is_empty()
    }

    /// Adds a link between two nodes given by absolute paths.
    pub fn add(
        &mut self,
        doc: &Document,
        label: impl Into<Symbol>,
        source: &str,
        target: &str,
    ) -> Result<()> {
        let source = resolve(doc, source)?;
        let target = resolve(doc, target)?;
        self.links.push(HyperLink {
            label: label.into(),
            source,
            target,
        });
        Ok(())
    }

    /// Adds a link between two already-resolved nodes.
    pub fn add_resolved(&mut self, label: impl Into<Symbol>, source: NodeId, target: NodeId) {
        self.links.push(HyperLink {
            label: label.into(),
            source,
            target,
        });
    }

    /// The links anchored on a node (the reader's choices while that node is
    /// presented).
    pub fn from_node(&self, source: NodeId) -> Vec<&HyperLink> {
        self.links.iter().filter(|l| l.source == source).collect()
    }

    /// Finds a link by its label. Never interns, so unknown labels miss
    /// without growing the pool.
    pub fn by_label(&self, label: &str) -> Option<&HyperLink> {
        let label = Symbol::lookup(label)?;
        self.links.iter().find(|l| l.label == label)
    }

    /// All links.
    pub fn iter(&self) -> impl Iterator<Item = &HyperLink> {
        self.links.iter()
    }

    /// Checks that every endpoint still exists in the document (links can
    /// dangle after editing).
    pub fn validate(&self, doc: &Document) -> Result<()> {
        for link in &self.links {
            doc.node(link.source)?;
            doc.node(link.target)?;
        }
        Ok(())
    }
}

/// Convenience: resolve a path or return a descriptive error that keeps the
/// path exactly as the author wrote it.
pub fn resolve(doc: &Document, path: &str) -> Result<NodeId> {
    let root = doc.root()?;
    doc.resolve_path(root, &NodePath::parse(path))
        .map_err(|source: CoreError| HyperError::UnresolvedLink {
            path: path.to_string(),
            source,
        })
}

#[cfg(test)]
mod tests {
    use super::*;
    use cmif_core::prelude::*;

    fn doc() -> Document {
        DocumentBuilder::new("news")
            .channel("caption", MediaKind::Text)
            .root_seq(|news| {
                news.par("story-1", |s| {
                    s.imm_text("line", "caption", "first", 1_000);
                });
                news.par("story-2", |s| {
                    s.imm_text("line", "caption", "second", 1_000);
                });
            })
            .build()
            .unwrap()
    }

    #[test]
    fn links_resolve_paths_and_filter_by_source() {
        let d = doc();
        let mut links = LinkSet::new();
        links
            .add(&d, "skip to story 2", "/story-1", "/story-2")
            .unwrap();
        links
            .add(&d, "back to start", "/story-2", "/story-1")
            .unwrap();
        assert_eq!(links.len(), 2);
        let story1 = d.find("/story-1").unwrap();
        let from_story1 = links.from_node(story1);
        assert_eq!(from_story1.len(), 1);
        assert_eq!(from_story1[0].label, "skip to story 2");
        assert!(links.by_label("back to start").is_some());
        assert!(links.by_label("nothing").is_none());
        assert!(links.validate(&d).is_ok());
    }

    #[test]
    fn dangling_paths_are_rejected() {
        let d = doc();
        let mut links = LinkSet::new();
        assert!(links.add(&d, "broken", "/story-1", "/story-9").is_err());
        assert!(resolve(&d, "/story-9").is_err());
        assert_eq!(
            resolve(&d, "/story-2").unwrap(),
            d.find("/story-2").unwrap()
        );
    }

    #[test]
    fn empty_set_behaviour() {
        let links = LinkSet::new();
        assert!(links.is_empty());
        assert_eq!(links.iter().count(), 0);
    }
}
