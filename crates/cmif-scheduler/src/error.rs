//! Error types for the synchronization layer.
//!
//! Before the workspace-wide error unification the scheduler smuggled its
//! failures through `CoreError::Invariant` with free-form strings. The
//! variants here are typed instead: a constraint cycle names the phase that
//! diverged and the size of the event-point graph, so callers (the pipeline,
//! the hypermedia navigator, distributed players) can react programmatically
//! and error chains keep their context across crate boundaries.

use std::fmt;

use cmif_core::diag::Diagnostic;
use cmif_core::error::CoreError;

use crate::engine::{DocId, TenantId};

/// Result alias used throughout `cmif-scheduler`.
pub type Result<T> = std::result::Result<T, SchedulerError>;

/// Errors raised while deriving, solving or playing a schedule.
#[derive(Debug, Clone, PartialEq)]
pub enum SchedulerError {
    /// The constraint graph contains a positive cycle, so longest-path
    /// relaxation cannot converge (§5.3.3, conflict class 1: an
    /// unsatisfiable specification).
    ConstraintCycle {
        /// The computation that diverged (`"solve"` or `"playback"`).
        phase: &'static str,
        /// Number of event points in the graph when relaxation was
        /// abandoned.
        points: usize,
    },
    /// A schedule or playback query referenced a node the solve result does
    /// not cover (e.g. seeking to a node of a different document).
    UnscheduledNode {
        /// The node missing from the schedule.
        node: cmif_core::node::NodeId,
        /// The operation that needed the node's times.
        operation: &'static str,
    },
    /// An engine job panicked while scheduling or playing its document.
    /// The panic is contained: it becomes this per-document outcome, the
    /// worker thread keeps serving, and `drain()`/`wait()` still terminate.
    JobPanicked {
        /// The panic payload, when it was a string (the usual case).
        message: String,
    },
    /// A non-blocking admission (`Engine::try_submit`/`try_admit`) found
    /// the engine's bounded queue full.
    Backpressure {
        /// The engine's backlog (admitted but unfinished documents) at the
        /// moment the admission was refused.
        backlog: usize,
    },
    /// An admission was refused by the submitting tenant's token-bucket
    /// quota (`Engine::set_tenant_policy`). Unlike
    /// [`SchedulerError::Backpressure`] this is policy, not capacity: the
    /// engine may be idle and still refuse. Refused work is never queued
    /// and no quota token is consumed by the refusal itself.
    QuotaExceeded {
        /// The tenant whose bucket ran dry.
        tenant: TenantId,
        /// Milliseconds until the bucket has refilled enough for this
        /// admission to fit; `u64::MAX` when the quota never refills
        /// (`per_second == 0`).
        retry_after_ms: u64,
    },
    /// The engine was closed (or shut down): it no longer admits documents,
    /// though outcomes already admitted can still be collected.
    EngineClosed,
    /// The engine's lint gate ([`crate::engine::EngineConfig::lint_gate`])
    /// refused the document at admission: static analysis found at least
    /// one deny-severity finding, so the document never reached a worker.
    /// Carries every collected diagnostic (warnings included), ready to
    /// render against the document's `SourceMap`.
    LintRejected {
        /// Every diagnostic the gate collected; at least one is deny.
        diagnostics: Vec<Diagnostic>,
    },
    /// A live edit could not be routed to a running document
    /// ([`crate::engine::Engine::apply_edit`]): the document id is unknown
    /// or its presentation already completed.
    EditRejected {
        /// The document the edit targeted.
        doc: DocId,
        /// Why the engine refused to route it.
        reason: &'static str,
    },
    /// A structural error from the document model.
    Core(CoreError),
}

impl fmt::Display for SchedulerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SchedulerError::ConstraintCycle { phase, points } => write!(
                f,
                "the synchronization constraints contain a cycle that forces events ever later \
                 (unsatisfiable specification): {phase} did not converge over {points} event points"
            ),
            SchedulerError::UnscheduledNode { node, operation } => {
                write!(
                    f,
                    "{operation}: node {node} is not covered by the solved schedule"
                )
            }
            SchedulerError::JobPanicked { message } => {
                write!(f, "the engine job panicked: {message}")
            }
            SchedulerError::Backpressure { backlog } => write!(
                f,
                "the engine's bounded queue is full ({backlog} documents in the backlog)"
            ),
            SchedulerError::QuotaExceeded {
                tenant,
                retry_after_ms,
            } => {
                write!(f, "{tenant} exceeded its admission quota")?;
                if *retry_after_ms == u64::MAX {
                    write!(f, " (the quota does not refill)")
                } else {
                    write!(f, " (retry in ~{retry_after_ms}ms)")
                }
            }
            SchedulerError::EngineClosed => {
                write!(f, "the engine is closed and admits no new documents")
            }
            SchedulerError::LintRejected { diagnostics } => {
                let denies = diagnostics.iter().filter(|d| d.is_deny()).count();
                write!(
                    f,
                    "the lint gate refused the document at admission: {denies} deny-severity \
                     finding(s) out of {} diagnostic(s)",
                    diagnostics.len()
                )?;
                if let Some(first) = diagnostics.iter().find(|d| d.is_deny()) {
                    write!(f, "; first: {first}")?;
                }
                Ok(())
            }
            SchedulerError::EditRejected { doc, reason } => {
                write!(f, "live edit rejected for {doc}: {reason}")
            }
            SchedulerError::Core(e) => write!(f, "document error: {e}"),
        }
    }
}

impl std::error::Error for SchedulerError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SchedulerError::Core(e) => Some(e),
            _ => None,
        }
    }
}

impl From<CoreError> for SchedulerError {
    fn from(e: CoreError) -> Self {
        SchedulerError::Core(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn core_errors_convert_and_chain() {
        use std::error::Error;
        let err: SchedulerError = CoreError::EmptyDocument.into();
        assert!(matches!(err, SchedulerError::Core(_)));
        assert!(err.source().is_some());
    }

    #[test]
    fn cycle_display_names_the_phase() {
        let err = SchedulerError::ConstraintCycle {
            phase: "solve",
            points: 42,
        };
        let text = err.to_string();
        assert!(text.contains("solve"));
        assert!(text.contains("42"));
        assert!(err.to_string().contains("cycle"));
    }

    #[test]
    fn admission_errors_render_their_context() {
        let panicked = SchedulerError::JobPanicked {
            message: "index out of bounds".to_string(),
        };
        assert!(panicked.to_string().contains("index out of bounds"));
        let full = SchedulerError::Backpressure { backlog: 9 };
        assert!(full.to_string().contains('9'));
        assert!(SchedulerError::EngineClosed.to_string().contains("closed"));
    }

    #[test]
    fn lint_refusals_count_denies_and_show_the_first() {
        use cmif_core::diag::codes;
        let err = SchedulerError::LintRejected {
            diagnostics: vec![
                Diagnostic::new(codes::ARC_CYCLE, "arcs form a cycle"),
                Diagnostic::new(codes::CHANNEL_DOUBLE_BOOKING, "overlap"),
            ],
        };
        let text = err.to_string();
        assert!(text.contains("1 deny-severity"), "{text}");
        assert!(text.contains("2 diagnostic"), "{text}");
        assert!(text.contains("L101"), "{text}");
    }

    #[test]
    fn edit_rejections_name_the_document_and_reason() {
        let err = SchedulerError::EditRejected {
            doc: DocId(7),
            reason: "document already completed",
        };
        let text = err.to_string();
        assert!(text.contains("doc#7"), "{text}");
        assert!(text.contains("already completed"), "{text}");
    }

    #[test]
    fn quota_refusals_render_the_tenant_and_the_retry_hint() {
        let refused = SchedulerError::QuotaExceeded {
            tenant: TenantId::new(4),
            retry_after_ms: 250,
        };
        let text = refused.to_string();
        assert!(text.contains("tenant#4"), "{text}");
        assert!(text.contains("250"), "{text}");
        let never = SchedulerError::QuotaExceeded {
            tenant: TenantId::new(4),
            retry_after_ms: u64::MAX,
        };
        assert!(never.to_string().contains("does not refill"));
    }
}
