//! Common types for the synchronization engine.

use std::fmt;

use cmif_core::arc::{Anchor, Strictness};
use cmif_core::node::NodeId;
use cmif_core::time::TimeMs;

/// One temporal point of an event: the beginning or the end of a node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct EventPoint {
    /// The node the point belongs to.
    pub node: NodeId,
    /// Whether this is the node's beginning or end.
    pub anchor: Anchor,
}

impl EventPoint {
    /// The beginning of a node.
    pub fn begin(node: NodeId) -> EventPoint {
        EventPoint {
            node,
            anchor: Anchor::Begin,
        }
    }

    /// The end of a node.
    pub fn end(node: NodeId) -> EventPoint {
        EventPoint {
            node,
            anchor: Anchor::End,
        }
    }
}

impl fmt::Display for EventPoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}({})", self.anchor, self.node)
    }
}

/// Where a scheduling constraint came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConstraintOrigin {
    /// A default arc implied by a sequential parent (§5.3.1).
    SequentialOrder,
    /// A default arc implied by a parallel parent (§5.3.1: fork at the
    /// start, join at the end).
    ParallelFork,
    /// The join half of a parallel parent's default synchronization.
    ParallelJoin,
    /// The rigid relation between a leaf's beginning and its end
    /// (its intrinsic duration).
    LeafDuration,
    /// An explicit synchronization arc written in the document; the carrier
    /// is the node whose attribute list holds the arc.
    Explicit {
        /// The node carrying the arc.
        carrier: NodeId,
        /// Index of the arc in the document's arc list (for reporting).
        index: usize,
    },
}

impl ConstraintOrigin {
    /// True for constraints derived from the tree structure rather than
    /// written explicitly.
    pub fn is_default(&self) -> bool {
        !matches!(self, ConstraintOrigin::Explicit { .. })
    }
}

/// One scheduling constraint between two event points.
///
/// Semantics: let `ref = t(source) + offset`. Then the admissible window for
/// the target is `ref + min_delay ≤ t(target) ≤ ref + max_delay` (§5.3.1),
/// with `max_delay = None` meaning unbounded.
#[derive(Debug, Clone, PartialEq)]
pub struct Constraint {
    /// The controlling point.
    pub source: EventPoint,
    /// The controlled point.
    pub target: EventPoint,
    /// Offset added to the source time to obtain the reference time, in
    /// milliseconds (already converted from media units).
    pub offset_ms: i64,
    /// Minimum acceptable delay δ in milliseconds (zero or negative).
    pub min_delay_ms: i64,
    /// Maximum tolerable delay ε in milliseconds, `None` when unbounded.
    pub max_delay_ms: Option<i64>,
    /// Must/May strictness. Default arcs are `Must`.
    pub strictness: Strictness,
    /// Provenance, for conflict reports.
    pub origin: ConstraintOrigin,
}

impl Constraint {
    /// The lower bound the constraint imposes on the target given a source
    /// time.
    pub fn lower_bound(&self, source_time: TimeMs) -> TimeMs {
        TimeMs(source_time.0 + self.offset_ms + self.min_delay_ms)
    }

    /// The upper bound the constraint imposes on the target given a source
    /// time, or `None` when unbounded.
    pub fn upper_bound(&self, source_time: TimeMs) -> Option<TimeMs> {
        self.max_delay_ms
            .map(|max| TimeMs(source_time.0 + self.offset_ms + max))
    }

    /// True when an actual target time satisfies the window.
    pub fn satisfied(&self, source_time: TimeMs, target_time: TimeMs) -> bool {
        if target_time < self.lower_bound(source_time) {
            return false;
        }
        match self.upper_bound(source_time) {
            Some(upper) => target_time <= upper,
            None => true,
        }
    }
}

impl fmt::Display for Constraint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let max = match self.max_delay_ms {
            Some(ms) => ms.to_string(),
            None => "inf".to_string(),
        };
        write!(
            f,
            "{} -> {} (+{}ms) window [{}, {}] {}",
            self.source, self.target, self.offset_ms, self.min_delay_ms, max, self.strictness
        )
    }
}

/// Policy options for constraint derivation and solving.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScheduleOptions {
    /// Duration assumed for discrete-media leaves (images, labels, text)
    /// that specify no duration of their own. The Evening News graphics, for
    /// example, are shown "for a while" unless an arc ends them.
    pub default_discrete_ms: i64,
    /// When true, a leaf with no known duration inside a parallel parent is
    /// stretched to fill its parent ("fill" behaviour typical of background
    /// graphics); when false it uses `default_discrete_ms`.
    pub fill_unknown_in_parallel: bool,
}

impl Default for ScheduleOptions {
    fn default() -> Self {
        ScheduleOptions {
            default_discrete_ms: 2_000,
            fill_unknown_in_parallel: false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cmif_core::node::NodeId;

    fn constraint(min: i64, max: Option<i64>) -> Constraint {
        Constraint {
            source: EventPoint::begin(NodeId::from_index(0)),
            target: EventPoint::begin(NodeId::from_index(1)),
            offset_ms: 100,
            min_delay_ms: min,
            max_delay_ms: max,
            strictness: Strictness::Must,
            origin: ConstraintOrigin::SequentialOrder,
        }
    }

    #[test]
    fn event_points_compare_and_display() {
        let a = EventPoint::begin(NodeId::from_index(1));
        let b = EventPoint::end(NodeId::from_index(1));
        assert_ne!(a, b);
        assert_eq!(a.to_string(), "begin(#1)");
        assert_eq!(b.to_string(), "end(#1)");
    }

    #[test]
    fn bounds_are_source_plus_offset_plus_delay() {
        let c = constraint(-50, Some(200));
        let source = TimeMs::from_millis(1_000);
        assert_eq!(c.lower_bound(source).as_millis(), 1_050);
        assert_eq!(c.upper_bound(source).unwrap().as_millis(), 1_300);
    }

    #[test]
    fn satisfied_checks_both_bounds() {
        let c = constraint(0, Some(100));
        let s = TimeMs::from_millis(0);
        assert!(c.satisfied(s, TimeMs::from_millis(100)));
        assert!(c.satisfied(s, TimeMs::from_millis(200)));
        assert!(!c.satisfied(s, TimeMs::from_millis(99)));
        assert!(!c.satisfied(s, TimeMs::from_millis(201)));
        let unbounded = constraint(0, None);
        assert!(unbounded.satisfied(s, TimeMs::from_millis(10_000)));
    }

    #[test]
    fn origin_classification() {
        assert!(ConstraintOrigin::SequentialOrder.is_default());
        assert!(ConstraintOrigin::LeafDuration.is_default());
        assert!(!ConstraintOrigin::Explicit {
            carrier: NodeId::from_index(0),
            index: 0
        }
        .is_default());
    }

    #[test]
    fn constraint_display_mentions_window() {
        let c = constraint(-10, None);
        let text = c.to_string();
        assert!(text.contains("[-10, inf]"));
        assert!(text.contains("must"));
    }

    #[test]
    fn default_options() {
        let options = ScheduleOptions::default();
        assert_eq!(options.default_discrete_ms, 2_000);
        assert!(!options.fill_unknown_in_parallel);
    }
}
