//! Synchronization conflict detection.
//!
//! §5.3.3 names three conflict classes:
//!
//! 1. "an unreasonable synchronization constraint may have been defined" —
//!    detected by the solver as unsatisfiable cycles and violated `Must`
//!    windows, and here additionally as overlapping events on one channel;
//! 2. "device characteristics may limit the ability of a particular
//!    environment to support a given document" — detected by checking a
//!    schedule against [`EnvironmentLimits`];
//! 3. navigating (fast-forward / fast-reverse) to a document section whose
//!    relative synchronization constraints reference sources that are not
//!    active — detected by [`invalid_arcs_when_seeking`].
//!
//! "CMIF plays a role in signalling problems, allowing other mechanisms to
//! provide solutions" — so everything here reports and nothing repairs.

use std::collections::HashMap;
use std::fmt;

use crate::error::Result;
use cmif_core::channel::MediaKind;
use cmif_core::descriptor::DescriptorResolver;
use cmif_core::node::{NodeId, NodeKind};
use cmif_core::symbol::Symbol;
use cmif_core::time::TimeMs;
use cmif_core::tree::Document;

use crate::environment::EnvironmentLimits;
use crate::solver::{SolveResult, WindowViolation};
use crate::timeline::Schedule;

/// One detected conflict.
#[derive(Debug, Clone, PartialEq)]
pub enum Conflict {
    /// Class 1: a Must/May window cannot be met by any ASAP schedule.
    Window(WindowViolation),
    /// Class 1: two events overlap on the same channel, which a single-medium
    /// channel cannot present.
    ChannelOverlap {
        /// The channel with overlapping events.
        channel: Symbol,
        /// The first overlapping event.
        first: NodeId,
        /// The second overlapping event.
        second: NodeId,
    },
    /// Class 2: the environment cannot present this medium at all.
    UnsupportedMedium {
        /// The event that needs the medium.
        node: NodeId,
        /// The channel the event plays on.
        channel: Symbol,
        /// The unsupported medium.
        medium: MediaKind,
    },
    /// Class 2: more events are active at once than the environment allows.
    ConcurrencyExceeded {
        /// Peak simultaneous events in the schedule.
        peak: usize,
        /// What the environment allows.
        allowed: usize,
    },
    /// Class 2: sustained delivery bandwidth over the document exceeds the
    /// environment.
    BandwidthExceeded {
        /// Required average bandwidth in bytes per second.
        required_bps: u64,
        /// Available bandwidth in bytes per second.
        available_bps: u64,
    },
    /// Class 2: an image or video block is larger than the environment's
    /// display.
    ResolutionExceeded {
        /// The offending event.
        node: NodeId,
        /// Block resolution.
        required: (u32, u32),
        /// Display resolution.
        available: (u32, u32),
    },
    /// Class 2: a block needs deeper colour than the environment has.
    ColorDepthExceeded {
        /// The offending event.
        node: NodeId,
        /// Block colour depth in bits.
        required: u8,
        /// Display colour depth in bits.
        available: u8,
    },
    /// Class 3: an explicit arc whose source will not execute when playback
    /// starts from the seek target, making the arc invalid.
    InactiveArcSource {
        /// The node carrying the arc.
        carrier: NodeId,
        /// The arc's source node.
        source: NodeId,
        /// The arc's destination node.
        destination: NodeId,
    },
}

impl Conflict {
    /// The paper's conflict class (1, 2 or 3) this conflict belongs to.
    pub fn class(&self) -> u8 {
        match self {
            Conflict::Window(_) | Conflict::ChannelOverlap { .. } => 1,
            Conflict::UnsupportedMedium { .. }
            | Conflict::ConcurrencyExceeded { .. }
            | Conflict::BandwidthExceeded { .. }
            | Conflict::ResolutionExceeded { .. }
            | Conflict::ColorDepthExceeded { .. } => 2,
            Conflict::InactiveArcSource { .. } => 3,
        }
    }
}

impl fmt::Display for Conflict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Conflict::Window(v) => write!(
                f,
                "window violated: {} lands at {} but must be within [{}, {}]",
                v.constraint.target, v.actual, v.reference, v.latest
            ),
            Conflict::ChannelOverlap {
                channel,
                first,
                second,
            } => {
                write!(
                    f,
                    "events {first} and {second} overlap on channel `{channel}`"
                )
            }
            Conflict::UnsupportedMedium {
                node,
                channel,
                medium,
            } => write!(
                f,
                "event {node} on channel `{channel}` needs medium `{medium}` which the \
                 environment cannot present"
            ),
            Conflict::ConcurrencyExceeded { peak, allowed } => {
                write!(
                    f,
                    "{peak} simultaneous events exceed the environment limit of {allowed}"
                )
            }
            Conflict::BandwidthExceeded {
                required_bps,
                available_bps,
            } => write!(
                f,
                "document needs {required_bps} B/s sustained but the environment delivers \
                 {available_bps} B/s"
            ),
            Conflict::ResolutionExceeded {
                node,
                required,
                available,
            } => write!(
                f,
                "event {node} needs {}x{} pixels but the display is {}x{}",
                required.0, required.1, available.0, available.1
            ),
            Conflict::ColorDepthExceeded {
                node,
                required,
                available,
            } => write!(
                f,
                "event {node} needs {required}-bit colour but the display has {available}-bit"
            ),
            Conflict::InactiveArcSource {
                carrier,
                source,
                destination,
            } => write!(
                f,
                "arc carried by {carrier} from {source} to {destination} is invalid: its source \
                 will not execute from the seek position"
            ),
        }
    }
}

/// A full conflict report for one document on one environment.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ConflictReport {
    /// Every conflict found, in detection order.
    pub conflicts: Vec<Conflict>,
}

impl ConflictReport {
    /// True when nothing was found.
    pub fn is_clean(&self) -> bool {
        self.conflicts.is_empty()
    }

    /// The conflicts belonging to one of the paper's three classes.
    pub fn of_class(&self, class: u8) -> Vec<&Conflict> {
        self.conflicts
            .iter()
            .filter(|c| c.class() == class)
            .collect()
    }
}

impl fmt::Display for ConflictReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_clean() {
            return write!(f, "no conflicts");
        }
        for conflict in &self.conflicts {
            writeln!(f, "[class {}] {}", conflict.class(), conflict)?;
        }
        Ok(())
    }
}

/// Detects class-1 (specification) conflicts in a solve result.
pub fn specification_conflicts(result: &SolveResult) -> Vec<Conflict> {
    let mut out: Vec<Conflict> = result
        .violations
        .iter()
        .cloned()
        .map(Conflict::Window)
        .collect();
    // Overlaps on a single channel, reported in channel-name order (the
    // timelines map iterates in intern order, which is not stable output).
    let mut timelines: Vec<_> = result.schedule.channel_timelines().into_iter().collect();
    timelines.sort_by_key(|(channel, _)| channel.as_str());
    for (channel, entries) in timelines {
        for window in entries.windows(2) {
            if window[0].overlaps(window[1]) {
                out.push(Conflict::ChannelOverlap {
                    channel,
                    first: window[0].node,
                    second: window[1].node,
                });
            }
        }
    }
    out
}

/// Detects class-2 (device) conflicts of a schedule on an environment.
pub fn device_conflicts(
    doc: &Document,
    schedule: &Schedule,
    resolver: &dyn DescriptorResolver,
    limits: &EnvironmentLimits,
) -> Result<Vec<Conflict>> {
    let mut out = Vec::new();

    for entry in &schedule.entries {
        if !limits.supports(entry.medium) {
            out.push(Conflict::UnsupportedMedium {
                node: entry.node,
                channel: entry.channel,
                medium: entry.medium,
            });
        }
    }

    let peak = schedule.peak_concurrency();
    if peak > limits.max_concurrent_events {
        out.push(Conflict::ConcurrencyExceeded {
            peak,
            allowed: limits.max_concurrent_events,
        });
    }

    // Sustained bandwidth: total bytes of presented external data divided by
    // the document duration.
    let mut total_bytes: u64 = 0;
    for entry in &schedule.entries {
        if doc.node(entry.node)?.kind == NodeKind::Ext {
            if let Some(key) = doc.file_of(entry.node)? {
                if let Some(descriptor) = resolver.resolve_symbol(key) {
                    total_bytes += descriptor.size_bytes;
                    if let (Some(required), Some(available)) =
                        (descriptor.resolution, limits.max_resolution)
                    {
                        if required.0 > available.0 || required.1 > available.1 {
                            out.push(Conflict::ResolutionExceeded {
                                node: entry.node,
                                required,
                                available,
                            });
                        }
                    }
                    if let (Some(required), Some(available)) =
                        (descriptor.color_depth, limits.max_color_depth)
                    {
                        if required > available {
                            out.push(Conflict::ColorDepthExceeded {
                                node: entry.node,
                                required,
                                available,
                            });
                        }
                    }
                }
            }
        }
    }
    let duration_s = (schedule.total_duration.as_millis() as f64 / 1000.0).max(0.001);
    let required_bps = (total_bytes as f64 / duration_s) as u64;
    if required_bps > limits.bandwidth_bps {
        out.push(Conflict::BandwidthExceeded {
            required_bps,
            available_bps: limits.bandwidth_bps,
        });
    }

    Ok(out)
}

/// Detects class-3 (navigation) conflicts: arcs whose source will not
/// execute when playback is started ("sought") at `seek_to`.
///
/// "We support the general notion within relative arcs that the source of
/// the arc must execute in order for a synchronization condition to be true;
/// if this is not the case, all incoming synchronization arcs are considered
/// to be invalid." (§5.3.3)
pub fn invalid_arcs_when_seeking(
    doc: &Document,
    schedule: &Schedule,
    seek_to: NodeId,
) -> Result<Vec<Conflict>> {
    let seek_time = schedule
        .node_times
        .get(&seek_to)
        .map(|(begin, _)| *begin)
        .unwrap_or(TimeMs::ZERO);
    let mut out = Vec::new();
    for (carrier, _arc, source, destination) in doc.resolved_arcs()? {
        // The source "executes" from the seek position if any part of it is
        // scheduled at or after the seek time. Sources that finished before
        // the seek position never run, so constraints hanging off them are
        // invalid.
        let source_executes = schedule
            .node_times
            .get(&source)
            .map(|(_, end)| *end > seek_time)
            .unwrap_or(false);
        // Only arcs whose destination is still to be presented matter.
        let destination_pending = schedule
            .node_times
            .get(&destination)
            .map(|(_, end)| *end > seek_time)
            .unwrap_or(false);
        if destination_pending && !source_executes {
            out.push(Conflict::InactiveArcSource {
                carrier,
                source,
                destination,
            });
        }
    }
    Ok(out)
}

/// Runs every detector and combines the results into one report.
pub fn full_report(
    doc: &Document,
    result: &SolveResult,
    resolver: &dyn DescriptorResolver,
    limits: Option<&EnvironmentLimits>,
) -> Result<ConflictReport> {
    let mut conflicts = specification_conflicts(result);
    if let Some(limits) = limits {
        conflicts.extend(device_conflicts(doc, &result.schedule, resolver, limits)?);
    }
    Ok(ConflictReport { conflicts })
}

/// Per-class conflict counts, handy for benches and summaries.
pub fn class_histogram(report: &ConflictReport) -> HashMap<u8, usize> {
    let mut out = HashMap::new();
    for conflict in &report.conflicts {
        *out.entry(conflict.class()).or_insert(0) += 1;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::ConstraintGraph;
    use crate::types::ScheduleOptions;
    use cmif_core::arc::SyncArc;
    use cmif_core::prelude::*;

    fn news_like_doc() -> Document {
        DocumentBuilder::new("news")
            .channel("audio", MediaKind::Audio)
            .channel("video", MediaKind::Video)
            .channel("caption", MediaKind::Text)
            .descriptor(
                DataDescriptor::new("speech", MediaKind::Audio, "pcm8")
                    .with_size(200_000)
                    .with_duration(TimeMs::from_secs(10)),
            )
            .descriptor(
                DataDescriptor::new("film", MediaKind::Video, "rgb24")
                    .with_size(18_000_000)
                    .with_duration(TimeMs::from_secs(10))
                    .with_resolution(1024, 768)
                    .with_color_depth(24),
            )
            .root_par(|story| {
                story.ext("voice", "audio", "speech");
                story.ext("film", "video", "film");
                story.imm_text("line-1", "caption", "first caption", 4_000);
            })
            .build()
            .unwrap()
    }

    fn solved(doc: &Document) -> SolveResult {
        ConstraintGraph::derive(doc, &doc.catalog, &ScheduleOptions::default())
            .unwrap()
            .solve(doc, &doc.catalog)
            .unwrap()
    }

    #[test]
    fn clean_document_on_workstation_has_no_conflicts() {
        let doc = news_like_doc();
        let result = solved(&doc);
        let report = full_report(
            &doc,
            &result,
            &doc.catalog,
            Some(&EnvironmentLimits::workstation()),
        )
        .unwrap();
        assert!(report.is_clean(), "unexpected conflicts: {report}");
    }

    #[test]
    fn audio_kiosk_cannot_present_video_or_captions() {
        let doc = news_like_doc();
        let result = solved(&doc);
        let report = full_report(
            &doc,
            &result,
            &doc.catalog,
            Some(&EnvironmentLimits::audio_kiosk()),
        )
        .unwrap();
        assert!(!report.is_clean());
        let class2 = report.of_class(2);
        assert!(class2.iter().any(|c| matches!(
            c,
            Conflict::UnsupportedMedium {
                medium: MediaKind::Video,
                ..
            }
        )));
        assert!(class2
            .iter()
            .any(|c| matches!(c, Conflict::BandwidthExceeded { .. })));
    }

    #[test]
    fn low_end_pc_flags_resolution_and_colour() {
        let doc = news_like_doc();
        let result = solved(&doc);
        let conflicts = device_conflicts(
            &doc,
            &result.schedule,
            &doc.catalog,
            &EnvironmentLimits::low_end_pc(),
        )
        .unwrap();
        assert!(conflicts
            .iter()
            .any(|c| matches!(c, Conflict::ResolutionExceeded { .. })));
        assert!(conflicts
            .iter()
            .any(|c| matches!(c, Conflict::ColorDepthExceeded { .. })));
    }

    #[test]
    fn window_violations_become_class1_conflicts() {
        let mut doc = news_like_doc();
        let line = doc.find("/line-1").unwrap();
        doc.add_arc(
            line,
            SyncArc::hard_start("../voice", "")
                .from_source_anchor(Anchor::End)
                .with_window(DelayMs::ZERO, MaxDelay::Unbounded),
        )
        .unwrap();
        // And a hard window from the root that cannot also hold.
        doc.add_arc(
            line,
            SyncArc::hard_start("/", "")
                .with_window(DelayMs::ZERO, MaxDelay::Bounded(DelayMs::from_millis(100))),
        )
        .unwrap();
        let result = solved(&doc);
        let conflicts = specification_conflicts(&result);
        assert!(conflicts.iter().any(|c| matches!(c, Conflict::Window(_))));
        assert!(conflicts.iter().all(|c| c.class() == 1));
    }

    #[test]
    fn channel_overlap_is_detected() {
        // Two events forced to overlap on the same channel via an explicit
        // arc that starts the second before the first ends.
        let mut doc = DocumentBuilder::new("overlap")
            .channel("caption", MediaKind::Text)
            .root_par(|root| {
                root.imm_text("a", "caption", "first", 4_000);
                root.imm_text("b", "caption", "second", 4_000);
            })
            .build()
            .unwrap();
        let b = doc.find("/b").unwrap();
        doc.add_arc(
            b,
            SyncArc::hard_start("../a", "").with_offset(MediaTime::seconds(1)),
        )
        .unwrap();
        let result = solved(&doc);
        let conflicts = specification_conflicts(&result);
        assert!(conflicts
            .iter()
            .any(|c| matches!(c, Conflict::ChannelOverlap { .. })));
    }

    #[test]
    fn seeking_past_an_arc_source_invalidates_it() {
        let mut doc = DocumentBuilder::new("seek")
            .channel("audio", MediaKind::Audio)
            .channel("caption", MediaKind::Text)
            .descriptor(
                DataDescriptor::new("s1", MediaKind::Audio, "pcm8")
                    .with_duration(TimeMs::from_secs(5)),
            )
            .descriptor(
                DataDescriptor::new("s2", MediaKind::Audio, "pcm8")
                    .with_duration(TimeMs::from_secs(5)),
            )
            .root_seq(|news| {
                news.par("story-1", |s| {
                    s.ext("voice", "audio", "s1");
                });
                news.par("story-2", |s| {
                    s.ext("voice", "audio", "s2");
                    s.imm_text("line", "caption", "late caption", 2_000);
                });
            })
            .build()
            .unwrap();
        let line = doc.find("/story-2/line").unwrap();
        // The caption is synchronized off the *first* story's voice.
        doc.add_arc(
            line,
            SyncArc::hard_start("/story-1/voice", "").with_offset(MediaTime::seconds(1)),
        )
        .unwrap();
        let result = solved(&doc);
        // Seeking to story-2 skips story-1 entirely: the arc source never
        // executes, so the arc is invalid.
        let story2 = doc.find("/story-2").unwrap();
        let invalid = invalid_arcs_when_seeking(&doc, &result.schedule, story2).unwrap();
        assert_eq!(invalid.len(), 1);
        assert!(matches!(invalid[0], Conflict::InactiveArcSource { .. }));
        assert_eq!(invalid[0].class(), 3);
        // Seeking to the beginning invalidates nothing.
        let root = doc.root().unwrap();
        assert!(invalid_arcs_when_seeking(&doc, &result.schedule, root)
            .unwrap()
            .is_empty());
    }

    #[test]
    fn report_display_and_histogram() {
        let doc = news_like_doc();
        let result = solved(&doc);
        let report = full_report(
            &doc,
            &result,
            &doc.catalog,
            Some(&EnvironmentLimits::audio_kiosk()),
        )
        .unwrap();
        let text = report.to_string();
        assert!(text.contains("[class 2]"));
        let histogram = class_histogram(&report);
        assert!(histogram[&2] >= 2);
        assert!(ConflictReport::default()
            .to_string()
            .contains("no conflicts"));
    }
}
