//! Presentation-environment models.
//!
//! The paper's second conflict class is "device characteristics may limit
//! the ability of a particular environment to support a given document"
//! (§5.3.3). [`EnvironmentLimits`] is the scheduler-side abstraction of such
//! a device: which media it can present, how many things it can do at once,
//! and how much delivery bandwidth and decode capacity it has.
//! `cmif-pipeline` builds richer device profiles on top of this and maps
//! them down to these limits for conflict checking.
//!
//! [`JitterModel`] describes how sloppily a device launches events — the
//! reason the δ/ε tolerance windows of §5.3.1 exist at all. The playback
//! simulator draws per-event startup latencies from it.

use std::collections::BTreeMap;

use cmif_core::channel::MediaKind;
use cmif_core::symbol::Symbol;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Resource and capability limits of a presentation environment.
#[derive(Debug, Clone, PartialEq)]
pub struct EnvironmentLimits {
    /// A short name for reports ("workstation", "laptop", "audio kiosk").
    /// Interned: device names are a small fixed vocabulary.
    pub name: Symbol,
    /// The media this environment can present at all.
    pub supported_media: Vec<MediaKind>,
    /// Maximum number of simultaneously active events across all channels.
    pub max_concurrent_events: usize,
    /// Sustained delivery bandwidth in bytes per second.
    pub bandwidth_bps: u64,
    /// Decode/render capacity in abstract work units per second (compare
    /// with [`cmif_core::descriptor::ResourceNeeds::decode_cost`]).
    pub decode_capacity: u32,
    /// Largest raster the environment can show, if it can show images at
    /// all.
    pub max_resolution: Option<(u32, u32)>,
    /// Deepest colour it can show.
    pub max_color_depth: Option<u8>,
}

impl EnvironmentLimits {
    /// A generously provisioned workstation: every medium, 24-bit colour,
    /// plenty of bandwidth. Documents should present without conflicts.
    pub fn workstation() -> EnvironmentLimits {
        EnvironmentLimits {
            name: Symbol::intern("workstation"),
            supported_media: MediaKind::ALL.to_vec(),
            max_concurrent_events: 16,
            bandwidth_bps: 20_000_000,
            decode_capacity: 1_000,
            max_resolution: Some((1280, 1024)),
            max_color_depth: Some(24),
        }
    }

    /// A low-end personal computer: small 8-bit display, little bandwidth.
    pub fn low_end_pc() -> EnvironmentLimits {
        EnvironmentLimits {
            name: Symbol::intern("low-end-pc"),
            supported_media: MediaKind::ALL.to_vec(),
            max_concurrent_events: 4,
            bandwidth_bps: 1_000_000,
            decode_capacity: 100,
            max_resolution: Some((640, 480)),
            max_color_depth: Some(8),
        }
    }

    /// An audio-only kiosk (the "no display" example of §1: a target system
    /// that cannot implement the flying-bird document).
    pub fn audio_kiosk() -> EnvironmentLimits {
        EnvironmentLimits {
            name: Symbol::intern("audio-kiosk"),
            supported_media: vec![MediaKind::Audio],
            max_concurrent_events: 2,
            bandwidth_bps: 256_000,
            decode_capacity: 20,
            max_resolution: None,
            max_color_depth: None,
        }
    }

    /// True when the environment can present the given medium.
    pub fn supports(&self, medium: MediaKind) -> bool {
        self.supported_media.contains(&medium)
    }
}

/// Per-channel event startup jitter of a device.
///
/// Each event launched on a channel suffers a uniformly distributed startup
/// latency in `[0, max_latency_ms]`. A `max_latency_ms` of zero models an
/// ideal device.
#[derive(Debug, Clone, PartialEq)]
pub struct JitterModel {
    /// Default maximum startup latency for channels with no specific entry.
    pub default_max_latency_ms: i64,
    /// Per-channel maximum startup latencies, keyed by the interned
    /// channel name — the playback simulator looks these up once per leaf
    /// with the `Copy` symbol it already holds, no string hashing.
    pub per_channel_max_ms: BTreeMap<Symbol, i64>,
    /// Seed for the deterministic random source.
    pub seed: u64,
}

impl JitterModel {
    /// An ideal device: no jitter anywhere.
    pub fn ideal() -> JitterModel {
        JitterModel {
            default_max_latency_ms: 0,
            per_channel_max_ms: BTreeMap::new(),
            seed: 0,
        }
    }

    /// A uniform jitter model: every channel may delay launches by up to
    /// `max_latency_ms`.
    pub fn uniform(max_latency_ms: i64, seed: u64) -> JitterModel {
        JitterModel {
            default_max_latency_ms: max_latency_ms,
            per_channel_max_ms: BTreeMap::new(),
            seed,
        }
    }

    /// Overrides the maximum latency for one channel.
    pub fn with_channel(mut self, channel: impl Into<Symbol>, max_latency_ms: i64) -> JitterModel {
        self.per_channel_max_ms
            .insert(channel.into(), max_latency_ms);
        self
    }

    /// The maximum latency that applies to a channel (the `Copy` symbol a
    /// playback session already holds).
    pub fn max_for(&self, channel: Symbol) -> i64 {
        *self
            .per_channel_max_ms
            .get(&channel)
            .unwrap_or(&self.default_max_latency_ms)
    }

    /// `&str` convenience for [`JitterModel::max_for`]. A query path: the
    /// name is *looked up*, never interned, so probing with never-seen
    /// channel names cannot grow the global symbol pool — they simply get
    /// the default latency, exactly as an interned-but-unlisted channel
    /// would.
    pub fn max_for_str(&self, channel: &str) -> i64 {
        Symbol::lookup(channel)
            .map(|channel| self.max_for(channel))
            .unwrap_or(self.default_max_latency_ms)
    }

    /// Creates the deterministic sampler for one playback run.
    pub fn sampler(&self) -> JitterSampler {
        JitterSampler {
            model: self.clone(),
            rng: SmallRng::seed_from_u64(self.seed),
        }
    }
}

/// Draws per-event startup latencies from a [`JitterModel`].
#[derive(Debug, Clone)]
pub struct JitterSampler {
    model: JitterModel,
    rng: SmallRng,
}

impl JitterSampler {
    /// Samples the startup latency for one event on `channel`.
    pub fn sample(&mut self, channel: Symbol) -> i64 {
        let max = self.model.max_for(channel);
        if max <= 0 {
            0
        } else {
            self.rng.gen_range(0..=max)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preset_environments_differ_sensibly() {
        let ws = EnvironmentLimits::workstation();
        let pc = EnvironmentLimits::low_end_pc();
        let kiosk = EnvironmentLimits::audio_kiosk();
        assert!(ws.bandwidth_bps > pc.bandwidth_bps);
        assert!(pc.bandwidth_bps > kiosk.bandwidth_bps);
        assert!(ws.supports(MediaKind::Video));
        assert!(!kiosk.supports(MediaKind::Video));
        assert!(kiosk.supports(MediaKind::Audio));
        assert_eq!(kiosk.max_resolution, None);
    }

    #[test]
    fn jitter_model_per_channel_override() {
        let model = JitterModel::uniform(200, 7).with_channel("video", 500);
        assert_eq!(model.max_for(Symbol::intern("audio")), 200);
        assert_eq!(model.max_for(Symbol::intern("video")), 500);
        assert_eq!(JitterModel::ideal().max_for(Symbol::intern("anything")), 0);
    }

    #[test]
    fn max_for_str_queries_without_interning() {
        let model = JitterModel::uniform(200, 7).with_channel("video", 500);
        assert_eq!(model.max_for_str("video"), 500);
        // A name nobody ever interned gets the default — and stays out of
        // the pool.
        assert_eq!(model.max_for_str("channel-that-was-never-interned"), 200);
        assert_eq!(Symbol::lookup("channel-that-was-never-interned"), None);
    }

    #[test]
    fn sampler_is_deterministic_for_a_seed() {
        let model = JitterModel::uniform(300, 42);
        let mut a = model.sampler();
        let mut b = model.sampler();
        let seq_a: Vec<i64> = (0..10).map(|_| a.sample(Symbol::intern("audio"))).collect();
        let seq_b: Vec<i64> = (0..10).map(|_| b.sample(Symbol::intern("audio"))).collect();
        assert_eq!(seq_a, seq_b);
        assert!(seq_a.iter().all(|v| (0..=300).contains(v)));
    }

    #[test]
    fn ideal_sampler_returns_zero() {
        let mut sampler = JitterModel::ideal().sampler();
        assert_eq!(sampler.sample(Symbol::intern("video")), 0);
        assert_eq!(sampler.sample(Symbol::intern("audio")), 0);
    }

    #[test]
    fn different_seeds_usually_differ() {
        let mut a = JitterModel::uniform(1_000, 1).sampler();
        let mut b = JitterModel::uniform(1_000, 2).sampler();
        let seq_a: Vec<i64> = (0..20).map(|_| a.sample(Symbol::intern("x"))).collect();
        let seq_b: Vec<i64> = (0..20).map(|_| b.sample(Symbol::intern("x"))).collect();
        assert_ne!(seq_a, seq_b);
    }
}
