//! # cmif-scheduler — the CMIF synchronization engine
//!
//! This crate turns a CMIF document (see `cmif-core`) into presentable
//! timelines and checks whether a presentation environment can honour them:
//!
//! * [`defaults`] derives the constraint set of a document — the default
//!   structural arcs of §5.3.1 (sequential chains, parallel fork/join), the
//!   rigid begin→end duration of every leaf, and the explicit arcs with
//!   their offsets converted from media units;
//! * [`graph`] holds the reusable [`graph::ConstraintGraph`]: derivation
//!   split from relaxation, with incremental re-relaxation when extra
//!   constraints (e.g. conditional arcs) are injected;
//! * [`solver`] assembles the ASAP schedule over those constraints and
//!   verifies every δ/ε window against it;
//! * [`timeline`] holds the resulting [`timeline::Schedule`] and renders the
//!   per-channel views and Gantt charts of Figures 3, 4 and 10;
//! * [`conflict`] detects the paper's three conflict classes (§5.3.3):
//!   unreasonable specifications, device limitations, and navigation past an
//!   arc's source;
//! * [`session`] drives actual playback on a jittery device step by step
//!   ([`session::PlayerSession`]: `tick`/`seek`/`pause`/`resume`), measuring
//!   how well the Must/May tolerance windows absorb the jitter (the
//!   Figure 8 experiment); [`player`] keeps the report types;
//! * [`engine`] multiplexes many documents over a pool of worker threads
//!   with a hand-rolled, work-stealing run queue ([`engine::Engine`]):
//!   per-worker sharded deques fed by a weighted-fair tenant plane
//!   ([`engine::TenantId`], [`engine::TenantPolicy`]), bounded FIFO
//!   admission (blocking `submit` vs failing `try_submit`, batched
//!   `submit_batch`), token-bucket quotas per tenant, graceful `close`,
//!   and panic containment (a panicking job is a
//!   [`SchedulerError::JobPanicked`] outcome, never a dead worker);
//! * [`environment`] models the device: supported media, bandwidth, decode
//!   capacity, and per-channel startup jitter.
//!
//! ```
//! use cmif_core::prelude::*;
//! use cmif_scheduler::{ConstraintGraph, ScheduleOptions};
//!
//! # fn main() -> std::result::Result<(), cmif_scheduler::SchedulerError> {
//! let doc = DocumentBuilder::new("demo")
//!     .channel("audio", MediaKind::Audio)
//!     .descriptor(
//!         DataDescriptor::new("speech", MediaKind::Audio, "pcm8")
//!             .with_duration(TimeMs::from_secs(4)),
//!     )
//!     .root_seq(|root| {
//!         root.ext("part-1", "audio", "speech");
//!         root.ext("part-2", "audio", "speech");
//!     })
//!     .build()?;
//!
//! let mut graph = ConstraintGraph::derive(&doc, &doc.catalog, &ScheduleOptions::default())?;
//! let result = graph.solve(&doc, &doc.catalog)?;
//! assert_eq!(result.schedule.total_duration, TimeMs::from_secs(8));
//! assert!(result.is_consistent());
//! # Ok(()) }
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod author;
pub mod conflict;
pub mod defaults;
pub mod engine;
pub mod environment;
pub mod error;
pub mod graph;
pub mod player;
pub mod session;
pub mod solver;
pub mod timeline;
pub mod types;

pub use error::{Result, SchedulerError};

pub use author::{EditSession, EditStats};
pub use conflict::{
    class_histogram, device_conflicts, full_report, invalid_arcs_when_seeking,
    specification_conflicts, Conflict, ConflictReport,
};
pub use defaults::{
    derive_constraints, derive_structural, explicit_constraints, leaf_duration_constraint,
    rates_of, shell_constraints,
};
#[doc(hidden)]
pub use engine::JobHook;
pub use engine::{
    DocId, DocOutcome, EditOutcome, Engine, EngineConfig, LintGate, LintPolicy, QueueStats,
    QuotaConfig, Submission, TenantId, TenantPolicy, TenantStatsSnapshot,
};
pub use environment::{EnvironmentLimits, JitterModel, JitterSampler};
pub use graph::{ConstraintGraph, PointTimes};
pub use player::{must_satisfaction_rate, PlaybackReport, PlayedEvent};
pub use session::{PlaybackEvent, PlayerSession, SessionState};
pub use solver::{point_time, solve_constraints, SolveResult, WindowViolation};
pub use timeline::{Schedule, TimelineEntry};
pub use types::{Constraint, ConstraintOrigin, EventPoint, ScheduleOptions};
