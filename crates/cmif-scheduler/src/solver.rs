//! The scheduling solver.
//!
//! Given the constraint set of a document (default structural arcs, leaf
//! durations, explicit arcs — see [`crate::defaults`]), the solver computes
//! an **ASAP schedule**: the earliest admissible time for every event point,
//! respecting every lower bound (`t_ref + δ`). The sequential default
//! relation is "start the successor as soon as possible" and the parallel
//! default is "start the successor when the slowest parallel node finishes"
//! (§5.3.1); ASAP over the lower-bound graph realises exactly those rules.
//!
//! Upper bounds (`t_ref + ε`) are then *verified* against the ASAP times.
//! A violated `Must` window and a lower-bound cycle are the paper's first
//! conflict class ("an unreasonable synchronization constraint may have been
//! defined", §5.3.3); they are reported, not silently repaired, because the
//! paper assigns repair to authoring and filter tools, not to the document
//! layer.

use std::collections::HashMap;

use crate::error::Result;
use cmif_core::arc::{Anchor, Strictness};
use cmif_core::descriptor::DescriptorResolver;
use cmif_core::node::NodeId;
use cmif_core::time::TimeMs;
use cmif_core::tree::Document;

use crate::graph::ConstraintGraph;
use crate::timeline::{Schedule, TimelineEntry};
use crate::types::{Constraint, EventPoint};

/// A window (upper-bound) violation discovered while verifying the ASAP
/// schedule against the constraints.
#[derive(Debug, Clone, PartialEq)]
pub struct WindowViolation {
    /// The violated constraint.
    pub constraint: Constraint,
    /// The reference time (`t(source) + offset`).
    pub reference: TimeMs,
    /// The latest admissible time (`reference + ε`).
    pub latest: TimeMs,
    /// The time the schedule actually assigns to the target.
    pub actual: TimeMs,
}

impl WindowViolation {
    /// How far past the window the target lands, in milliseconds.
    pub fn excess_ms(&self) -> i64 {
        self.actual.as_millis() - self.latest.as_millis()
    }

    /// True when the violated constraint was a `Must` constraint.
    pub fn is_must(&self) -> bool {
        self.constraint.strictness == Strictness::Must
    }
}

/// The result of solving a document's constraints.
#[derive(Debug, Clone, PartialEq)]
pub struct SolveResult {
    /// The ASAP schedule.
    pub schedule: Schedule,
    /// Upper-bound windows the ASAP schedule cannot satisfy.
    pub violations: Vec<WindowViolation>,
    /// The constraints the schedule was derived from (useful for reports
    /// and for the playback simulator).
    pub constraints: Vec<Constraint>,
}

impl SolveResult {
    /// True when no `Must` window is violated (the document is presentable
    /// as authored on an ideal device).
    pub fn is_consistent(&self) -> bool {
        !self.violations.iter().any(WindowViolation::is_must)
    }
}

/// Solves a pre-built constraint set (lets callers inject extra constraints,
/// e.g. the hypermedia extension's conditional arcs).
///
/// This is the one-shot form; callers that re-solve under changing injected
/// constraints should hold a [`ConstraintGraph`] instead and use
/// [`ConstraintGraph::inject`] + [`ConstraintGraph::solve`], which reuses
/// the relaxation fixpoint of the document-derived constraints.
pub fn solve_constraints(
    doc: &Document,
    resolver: &dyn DescriptorResolver,
    constraints: Vec<Constraint>,
) -> Result<SolveResult> {
    ConstraintGraph::from_constraints(doc, constraints)?.solve(doc, resolver)
}

pub(crate) fn build_schedule(
    doc: &Document,
    resolver: &dyn DescriptorResolver,
    times: &HashMap<EventPoint, TimeMs>,
) -> Result<Schedule> {
    let root = doc.root()?;
    let mut entries = Vec::new();
    for leaf in doc.leaves() {
        let begin = times[&EventPoint::begin(leaf)];
        let end = times[&EventPoint::end(leaf)].max(begin);
        let channel = doc
            .channel_of(leaf)?
            .unwrap_or_else(cmif_core::tree::unassigned_channel);
        // Named leaves copy their interned name. Unnamed leaves fall back
        // to the `#<index>` node-id form: its vocabulary is bounded by the
        // largest arena ever seen, so a server playing an unbounded stream
        // of documents cannot grow the pool through unnamed leaves (a path
        // rendering would leak one pool entry per distinct structure).
        let name = match doc.node(leaf)?.name_symbol() {
            Some(name) => name,
            None => cmif_core::symbol::Symbol::from_owned(format!("{leaf}")),
        };
        let medium = doc.medium_of(leaf, resolver)?;
        entries.push(TimelineEntry {
            node: leaf,
            name,
            channel,
            medium,
            begin,
            end,
        });
    }
    entries.sort_by_key(|e| (e.begin, e.node));

    let mut node_times: HashMap<NodeId, (TimeMs, TimeMs)> = HashMap::new();
    for node in doc.preorder() {
        let begin = times[&EventPoint::begin(node)];
        let end = times[&EventPoint::end(node)].max(begin);
        node_times.insert(node, (begin, end));
    }
    let total = node_times
        .get(&root)
        .map(|(_, end)| *end)
        .unwrap_or(TimeMs::ZERO);
    Ok(Schedule {
        entries,
        node_times,
        total_duration: total,
    })
}

/// Convenience: the time assigned to one event point in a solve result.
pub fn point_time(result: &SolveResult, node: NodeId, anchor: Anchor) -> Option<TimeMs> {
    result
        .schedule
        .node_times
        .get(&node)
        .map(|(begin, end)| match anchor {
            Anchor::Begin => *begin,
            Anchor::End => *end,
        })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::ScheduleOptions;
    use cmif_core::arc::SyncArc;
    use cmif_core::prelude::*;

    fn audio(key: &str, secs: i64) -> DataDescriptor {
        DataDescriptor::new(key, MediaKind::Audio, "pcm8").with_duration(TimeMs::from_secs(secs))
    }

    fn solve_doc(doc: &Document) -> SolveResult {
        ConstraintGraph::derive(doc, &doc.catalog, &ScheduleOptions::default())
            .unwrap()
            .solve(doc, &doc.catalog)
            .unwrap()
    }

    #[test]
    fn sequential_children_run_back_to_back() {
        let doc = DocumentBuilder::new("seq")
            .channel("audio", MediaKind::Audio)
            .descriptor(audio("a", 2))
            .descriptor(audio("b", 3))
            .root_seq(|root| {
                root.ext("first", "audio", "a");
                root.ext("second", "audio", "b");
            })
            .build()
            .unwrap();
        let result = solve_doc(&doc);
        assert!(result.is_consistent());
        let first = doc.find("/first").unwrap();
        let second = doc.find("/second").unwrap();
        assert_eq!(
            result.schedule.node_times[&first],
            (TimeMs::ZERO, TimeMs::from_secs(2))
        );
        assert_eq!(
            result.schedule.node_times[&second],
            (TimeMs::from_secs(2), TimeMs::from_secs(5))
        );
        assert_eq!(result.schedule.total_duration, TimeMs::from_secs(5));
    }

    #[test]
    fn parallel_children_start_together_and_parent_ends_with_slowest() {
        let doc = DocumentBuilder::new("par")
            .channel("audio", MediaKind::Audio)
            .channel("caption", MediaKind::Text)
            .descriptor(audio("a", 4))
            .root_par(|root| {
                root.ext("voice", "audio", "a");
                root.imm_text("line", "caption", "hi", 1_500);
            })
            .build()
            .unwrap();
        let result = solve_doc(&doc);
        let voice = doc.find("/voice").unwrap();
        let line = doc.find("/line").unwrap();
        assert_eq!(result.schedule.node_times[&voice].0, TimeMs::ZERO);
        assert_eq!(result.schedule.node_times[&line].0, TimeMs::ZERO);
        // Parent (root) ends when the slowest child ends.
        assert_eq!(result.schedule.total_duration, TimeMs::from_secs(4));
    }

    #[test]
    fn nested_seq_of_pars_accumulates() {
        let doc = DocumentBuilder::new("news")
            .channel("audio", MediaKind::Audio)
            .channel("caption", MediaKind::Text)
            .descriptor(audio("s1", 5))
            .descriptor(audio("s2", 7))
            .root_seq(|news| {
                news.par("story-1", |s| {
                    s.ext("voice", "audio", "s1");
                    s.imm_text("line", "caption", "one", 2_000);
                });
                news.par("story-2", |s| {
                    s.ext("voice", "audio", "s2");
                    s.imm_text("line", "caption", "two", 2_000);
                });
            })
            .build()
            .unwrap();
        let result = solve_doc(&doc);
        assert!(result.is_consistent());
        assert_eq!(result.schedule.total_duration, TimeMs::from_secs(12));
        let story2_voice = doc.find("/story-2/voice").unwrap();
        assert_eq!(
            result.schedule.node_times[&story2_voice].0,
            TimeMs::from_secs(5)
        );
    }

    #[test]
    fn explicit_offset_arc_delays_the_target() {
        let mut doc = DocumentBuilder::new("offset")
            .channel("audio", MediaKind::Audio)
            .channel("graphic", MediaKind::Image)
            .descriptor(audio("speech", 10))
            .root_par(|root| {
                root.ext("voice", "audio", "speech");
                root.ext_with("painting", "graphic", "speech", |n| {
                    n.duration_ms(3_000);
                });
            })
            .build()
            .unwrap();
        let painting = doc.find("/painting").unwrap();
        doc.add_arc(
            painting,
            SyncArc::hard_start("../voice", "").with_offset(MediaTime::seconds(4)),
        )
        .unwrap();
        let result = solve_doc(&doc);
        assert_eq!(
            result.schedule.node_times[&painting].0,
            TimeMs::from_secs(4)
        );
        assert_eq!(
            result.schedule.node_times[&painting].1,
            TimeMs::from_secs(7)
        );
    }

    #[test]
    fn end_anchored_arc_forces_freeze_frame_gap() {
        // Figure 10: "a new video sequence may not start until the caption
        // text is over" — an arc from the end of a caption to the begin of
        // the next video block.
        let mut doc = DocumentBuilder::new("freeze")
            .channel("video", MediaKind::Video)
            .channel("caption", MediaKind::Text)
            .descriptor(
                DataDescriptor::new("v1", MediaKind::Video, "rgb24")
                    .with_duration(TimeMs::from_secs(2)),
            )
            .descriptor(
                DataDescriptor::new("v2", MediaKind::Video, "rgb24")
                    .with_duration(TimeMs::from_secs(2)),
            )
            .root_par(|root| {
                root.seq("video-track", |track| {
                    track.ext("shot-1", "video", "v1");
                    track.ext("shot-2", "video", "v2");
                });
                root.imm_text("long-caption", "caption", "...", 5_000);
            })
            .build()
            .unwrap();
        let shot2 = doc.find("/video-track/shot-2").unwrap();
        doc.add_arc(
            shot2,
            SyncArc::hard_start("/long-caption", "")
                .from_source_anchor(Anchor::End)
                .with_window(DelayMs::ZERO, MaxDelay::Unbounded),
        )
        .unwrap();
        let result = solve_doc(&doc);
        // shot-2 may not start before the caption ends at t=5s even though
        // shot-1 ends at t=2s: a 3 s freeze-frame gap.
        assert_eq!(result.schedule.node_times[&shot2].0, TimeMs::from_secs(5));
        assert_eq!(result.schedule.total_duration, TimeMs::from_secs(7));
    }

    #[test]
    fn violated_must_window_is_reported() {
        // The caption must start within 500 ms of the start of the second
        // audio block, but a 4-second first block pushes it to t=4s.
        let mut doc = DocumentBuilder::new("conflict")
            .channel("audio", MediaKind::Audio)
            .channel("caption", MediaKind::Text)
            .descriptor(audio("a", 4))
            .descriptor(audio("b", 4))
            .root_par(|root| {
                root.seq("sound-track", |track| {
                    track.ext("first", "audio", "a");
                    track.ext("second", "audio", "b");
                });
                root.imm_text("line", "caption", "hi", 1_000);
            })
            .build()
            .unwrap();
        let line = doc.find("/line").unwrap();
        // The line is controlled by the root (t=0) with a hard 500 ms window,
        // but also must not start before the second audio block.
        doc.add_arc(
            line,
            SyncArc::hard_start("/sound-track/second", "")
                .with_window(DelayMs::ZERO, MaxDelay::Unbounded),
        )
        .unwrap();
        doc.add_arc(
            line,
            SyncArc::hard_start("/", "")
                .with_window(DelayMs::ZERO, MaxDelay::Bounded(DelayMs::from_millis(500))),
        )
        .unwrap();
        let result = solve_doc(&doc);
        assert!(!result.is_consistent());
        assert_eq!(result.violations.len(), 1);
        let violation = &result.violations[0];
        assert!(violation.is_must());
        assert_eq!(violation.actual, TimeMs::from_secs(4));
        assert_eq!(violation.excess_ms(), 3_500);
    }

    #[test]
    fn may_violations_do_not_make_the_document_inconsistent() {
        let mut doc = DocumentBuilder::new("may")
            .channel("audio", MediaKind::Audio)
            .channel("label", MediaKind::Label)
            .descriptor(audio("a", 3))
            .root_seq(|root| {
                root.ext("voice", "audio", "a");
                root.imm_text("title", "label", "late title", 1_000);
            })
            .build()
            .unwrap();
        let title = doc.find("/title").unwrap();
        doc.add_arc(
            title,
            SyncArc::relaxed_start("/", "")
                .with_window(DelayMs::ZERO, MaxDelay::Bounded(DelayMs::from_millis(100))),
        )
        .unwrap();
        let result = solve_doc(&doc);
        assert_eq!(result.violations.len(), 1);
        assert!(!result.violations[0].is_must());
        assert!(result.is_consistent());
    }

    #[test]
    fn negative_min_delay_alone_does_not_move_events_earlier() {
        // ASAP semantics: a negative δ widens the admissible window but the
        // solver still starts events as early as their other constraints
        // allow, never earlier than the structural lower bounds.
        let mut doc = DocumentBuilder::new("neg")
            .channel("audio", MediaKind::Audio)
            .descriptor(audio("a", 2))
            .descriptor(audio("b", 2))
            .root_seq(|root| {
                root.ext("first", "audio", "a");
                root.ext("second", "audio", "b");
            })
            .build()
            .unwrap();
        let second = doc.find("/second").unwrap();
        doc.add_arc(
            second,
            SyncArc::hard_start("../first", "")
                .from_source_anchor(Anchor::End)
                .with_window(DelayMs::from_millis(-500), MaxDelay::Unbounded),
        )
        .unwrap();
        let result = solve_doc(&doc);
        assert_eq!(result.schedule.node_times[&second].0, TimeMs::from_secs(2));
    }

    #[test]
    fn cyclic_constraints_are_detected() {
        let mut doc = DocumentBuilder::new("cycle")
            .channel("audio", MediaKind::Audio)
            .descriptor(audio("a", 2))
            .descriptor(audio("b", 2))
            .root_par(|root| {
                root.ext("x", "audio", "a");
                root.ext("y", "audio", "b");
            })
            .build()
            .unwrap();
        let x = doc.find("/x").unwrap();
        let y = doc.find("/y").unwrap();
        // x must start 1s after y starts, and y must start 1s after x starts.
        doc.add_arc(
            x,
            SyncArc::hard_start("../y", "").with_offset(MediaTime::seconds(1)),
        )
        .unwrap();
        doc.add_arc(
            y,
            SyncArc::hard_start("../x", "").with_offset(MediaTime::seconds(1)),
        )
        .unwrap();
        let err = ConstraintGraph::derive(&doc, &doc.catalog, &ScheduleOptions::default())
            .unwrap()
            .solve(&doc, &doc.catalog)
            .unwrap_err();
        assert!(matches!(
            err,
            crate::error::SchedulerError::ConstraintCycle { phase: "solve", .. }
        ));
    }

    #[test]
    fn timeline_entries_are_sorted_and_channelled() {
        let doc = DocumentBuilder::new("entries")
            .channel("audio", MediaKind::Audio)
            .channel("caption", MediaKind::Text)
            .descriptor(audio("a", 2))
            .root_seq(|root| {
                root.imm_text("line", "caption", "first", 1_000);
                root.ext("voice", "audio", "a");
            })
            .build()
            .unwrap();
        let result = solve_doc(&doc);
        assert_eq!(result.schedule.entries.len(), 2);
        assert_eq!(result.schedule.entries[0].name, "line");
        assert_eq!(result.schedule.entries[1].name, "voice");
        assert_eq!(result.schedule.entries[1].channel, "audio");
        assert_eq!(result.schedule.entries[1].begin, TimeMs::from_secs(1));
    }

    #[test]
    fn point_time_helper() {
        let doc = DocumentBuilder::new("pt")
            .channel("audio", MediaKind::Audio)
            .descriptor(audio("a", 2))
            .root_seq(|root| {
                root.ext("voice", "audio", "a");
            })
            .build()
            .unwrap();
        let result = solve_doc(&doc);
        let voice = doc.find("/voice").unwrap();
        assert_eq!(
            point_time(&result, voice, Anchor::Begin),
            Some(TimeMs::ZERO)
        );
        assert_eq!(
            point_time(&result, voice, Anchor::End),
            Some(TimeMs::from_secs(2))
        );
        assert_eq!(
            point_time(&result, NodeId::from_index(99), Anchor::Begin),
            None
        );
    }
}
