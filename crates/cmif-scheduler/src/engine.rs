//! The multi-document scheduling engine.
//!
//! The one-shot entry points processed one document per call and rebuilt
//! all state each time — a dead end for a server that must multiplex many
//! cheap client sessions over shared worker state (Gray's *Locally Served
//! Network Computers* argument). [`Engine`] is that server side: it admits
//! N documents, schedules and plays them concurrently across a fixed pool
//! of worker threads, and returns one [`PlaybackReport`] per document.
//!
//! The run queue is hand-rolled on `std::sync::{Mutex, Condvar}` — this
//! workspace has no registry access, so no tokio — and a document whose
//! constraints are unsatisfiable is *rejected*, not fatal: the worker
//! records the [`SchedulerError::ConstraintCycle`] (or any other scheduler
//! error) as that document's outcome and moves on to the next job, exactly
//! the supervisor behaviour the typed error layer was introduced for.
//!
//! Determinism: each submission carries its own seeded [`JitterModel`], so
//! the report produced for a document is identical whether it played alone
//! or next to 63 concurrent siblings.

use std::collections::{HashSet, VecDeque};
use std::sync::{Arc, Condvar, Mutex, PoisonError};
use std::thread::{self, JoinHandle};

use cmif_core::tree::Document;

use crate::environment::JitterModel;
use crate::error::Result;
use crate::graph::ConstraintGraph;
use crate::player::PlaybackReport;
use crate::session::PlayerSession;
use crate::types::ScheduleOptions;

/// Configuration of an [`Engine`].
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Number of worker threads. Zero is clamped to one.
    pub workers: usize,
    /// Scheduling policy applied to every admitted document.
    pub options: ScheduleOptions,
    /// How many clock steps each worker drives a session through. Playback
    /// outcomes do not depend on this (the causal timeline is fixed at
    /// session creation); it only exercises the step-wise machinery.
    pub ticks_per_document: u32,
}

impl Default for EngineConfig {
    fn default() -> EngineConfig {
        EngineConfig {
            workers: thread::available_parallelism()
                .map(|n| n.get().min(8))
                .unwrap_or(1),
            options: ScheduleOptions::default(),
            ticks_per_document: 8,
        }
    }
}

/// Identifier of one admitted document, in admission order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct DocId(u64);

impl std::fmt::Display for DocId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "doc#{}", self.0)
    }
}

/// The engine's verdict on one admitted document.
#[derive(Debug, Clone)]
pub struct DocOutcome {
    /// The admission ticket the outcome belongs to.
    pub id: DocId,
    /// The label given at submission.
    pub label: String,
    /// The playback report, or the scheduler error that made the engine
    /// reject the document (its worker survives either way).
    pub result: Result<PlaybackReport>,
}

impl DocOutcome {
    /// True when the document played to completion.
    pub fn is_ok(&self) -> bool {
        self.result.is_ok()
    }
}

struct Job {
    id: DocId,
    label: String,
    doc: Arc<Document>,
    jitter: JitterModel,
}

struct QueueState {
    pending: VecDeque<Job>,
    finished: Vec<DocOutcome>,
    /// Ids whose outcome has been handed out by `wait`/`drain`.
    delivered: HashSet<u64>,
    in_flight: usize,
    next_id: u64,
    shutdown: bool,
}

struct Shared {
    state: Mutex<QueueState>,
    /// Signalled when a job is enqueued or shutdown begins (workers wait).
    work: Condvar,
    /// Signalled when a job completes (waiters wait).
    done: Condvar,
    config: EngineConfig,
}

impl Shared {
    fn lock(&self) -> std::sync::MutexGuard<'_, QueueState> {
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }
}

/// A pool of worker threads playing many documents concurrently.
///
/// Each outcome is delivered exactly once — by the `wait(id)` or `drain()`
/// call that first sees it — so a long-lived engine's memory stays bounded
/// by its backlog. Asking again for an already-delivered outcome panics
/// with a clear message rather than blocking forever.
///
/// ```
/// use std::sync::Arc;
///
/// use cmif_core::prelude::*;
/// use cmif_scheduler::{Engine, EngineConfig, JitterModel};
///
/// # fn main() -> std::result::Result<(), cmif_scheduler::SchedulerError> {
/// let doc = Arc::new(
///     DocumentBuilder::new("spot")
///         .channel("audio", MediaKind::Audio)
///         .descriptor(
///             DataDescriptor::new("jingle", MediaKind::Audio, "pcm8")
///                 .with_duration(TimeMs::from_secs(3)),
///         )
///         .root_seq(|root| {
///             root.ext("jingle", "audio", "jingle");
///         })
///         .build()?,
/// );
///
/// let engine = Engine::new(EngineConfig { workers: 2, ..EngineConfig::default() });
/// // Submitting an `Arc<Document>` clones a pointer, never the tree.
/// let a = engine.submit(Arc::clone(&doc), JitterModel::ideal());
/// let b = engine.submit(doc, JitterModel::uniform(100, 7));
/// let outcome = engine.wait(a);
/// assert!(outcome.is_ok());
/// assert!(engine.wait(b).is_ok());
/// # Ok(()) }
/// ```
pub struct Engine {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
}

impl Engine {
    /// Starts an engine with the given configuration.
    pub fn new(config: EngineConfig) -> Engine {
        let worker_count = config.workers.max(1);
        let shared = Arc::new(Shared {
            state: Mutex::new(QueueState {
                pending: VecDeque::new(),
                finished: Vec::new(),
                delivered: HashSet::new(),
                in_flight: 0,
                next_id: 0,
                shutdown: false,
            }),
            work: Condvar::new(),
            done: Condvar::new(),
            config,
        });
        let workers = (0..worker_count)
            .map(|index| {
                let shared = Arc::clone(&shared);
                thread::Builder::new()
                    .name(format!("cmif-engine-{index}"))
                    .spawn(move || worker_loop(&shared))
                    .unwrap_or_else(|e| panic!("spawning engine worker {index} failed: {e}"))
            })
            .collect();
        Engine { shared, workers }
    }

    /// Starts an engine with `workers` worker threads and default policy.
    pub fn with_workers(workers: usize) -> Engine {
        Engine::new(EngineConfig {
            workers,
            ..EngineConfig::default()
        })
    }

    /// Number of worker threads.
    pub fn worker_count(&self) -> usize {
        self.workers.len()
    }

    /// Admits a document for scheduling and playback under the given
    /// (seeded, hence deterministic) jitter model.
    ///
    /// The document travels as an [`Arc`]: submitting the same tree 64
    /// times clones a pointer 64 times, never the tree. An owned
    /// [`Document`] is accepted too (`impl Into<Arc<Document>>`) and is
    /// moved — not copied — into its ref-counted box.
    pub fn submit(&self, doc: impl Into<Arc<Document>>, jitter: JitterModel) -> DocId {
        self.enqueue(None, doc.into(), jitter)
    }

    /// Admits a document under a caller-chosen label (for reports and logs).
    pub fn submit_labeled(
        &self,
        label: impl Into<String>,
        doc: impl Into<Arc<Document>>,
        jitter: JitterModel,
    ) -> DocId {
        self.enqueue(Some(label.into()), doc.into(), jitter)
    }

    fn enqueue(&self, label: Option<String>, doc: Arc<Document>, jitter: JitterModel) -> DocId {
        let mut state = self.shared.lock();
        let id = DocId(state.next_id);
        state.next_id += 1;
        state.pending.push_back(Job {
            id,
            label: label.unwrap_or_else(|| id.to_string()),
            doc,
            jitter,
        });
        drop(state);
        self.shared.work.notify_one();
        id
    }

    /// Blocks until the given document has finished (or been rejected) and
    /// returns its outcome.
    ///
    /// The outcome is delivered exactly once. Panics if the id was never
    /// issued by this engine, or if its outcome was already taken by an
    /// earlier `wait(id)` or [`Engine::drain`] — a clear error instead of
    /// the silent permanent block that re-waiting would otherwise be.
    pub fn wait(&self, id: DocId) -> DocOutcome {
        let mut state = self.shared.lock();
        assert!(id.0 < state.next_id, "{id} was never admitted here");
        loop {
            if let Some(pos) = state.finished.iter().position(|o| o.id == id) {
                state.delivered.insert(id.0);
                return state.finished.swap_remove(pos);
            }
            assert!(
                !state.delivered.contains(&id.0),
                "the outcome of {id} was already delivered by a previous wait() or drain()"
            );
            state = self
                .shared
                .done
                .wait(state)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// Blocks until every admitted document has finished and returns the
    /// not-yet-delivered outcomes in admission order (outcomes already
    /// taken by `wait(id)` are not repeated).
    pub fn drain(&self) -> Vec<DocOutcome> {
        let mut state = self.shared.lock();
        while !state.pending.is_empty() || state.in_flight > 0 {
            state = self
                .shared
                .done
                .wait(state)
                .unwrap_or_else(PoisonError::into_inner);
        }
        let mut outcomes = std::mem::take(&mut state.finished);
        for outcome in &outcomes {
            state.delivered.insert(outcome.id.0);
        }
        outcomes.sort_by_key(|o| o.id);
        outcomes
    }

    /// Number of documents admitted but not yet finished.
    pub fn backlog(&self) -> usize {
        let state = self.shared.lock();
        state.pending.len() + state.in_flight
    }

    /// Stops the workers after the queue drains and joins them.
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    fn stop_and_join(&mut self) {
        {
            let mut state = self.shared.lock();
            state.shutdown = true;
        }
        self.shared.work.notify_all();
        for worker in self.workers.drain(..) {
            // A worker that panicked already produced no further outcomes;
            // propagating the panic out of drop would abort, so ignore it.
            let _ = worker.join();
        }
    }
}

impl Drop for Engine {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

fn worker_loop(shared: &Shared) {
    loop {
        let job = {
            let mut state = shared.lock();
            loop {
                if let Some(job) = state.pending.pop_front() {
                    state.in_flight += 1;
                    break job;
                }
                if state.shutdown {
                    return;
                }
                state = shared
                    .work
                    .wait(state)
                    .unwrap_or_else(PoisonError::into_inner);
            }
        };
        let outcome = DocOutcome {
            id: job.id,
            label: job.label.clone(),
            result: run_job(&shared.config, &job),
        };
        let mut state = shared.lock();
        state.in_flight -= 1;
        state.finished.push(outcome);
        drop(state);
        shared.done.notify_all();
    }
}

/// One document's full trip through the engine: derive, relax, play. Any
/// scheduler error — a `ConstraintCycle` above all — is the document's
/// outcome, not the worker's death.
fn run_job(config: &EngineConfig, job: &Job) -> Result<PlaybackReport> {
    let mut graph = ConstraintGraph::derive(&job.doc, &job.doc.catalog, &config.options)?;
    let solved = graph.solve(&job.doc, &job.doc.catalog)?;
    let mut session = PlayerSession::new(&job.doc, &solved, &job.doc.catalog, &job.jitter)?;
    let total = session.total_duration().as_millis();
    let ticks = i64::from(config.ticks_per_document.max(1));
    for step in 1..=ticks {
        session.tick(total * step / ticks)?;
        session.poll_events();
    }
    // `total * ticks / ticks == total`, so the session is finished here;
    // the final tick is a no-op safeguard for zero-length documents.
    session.tick(total)?;
    session.poll_events();
    Ok(session.run_to_completion())
}

#[cfg(test)]
mod tests {
    use super::*;
    use cmif_core::arc::SyncArc;
    use cmif_core::prelude::*;
    use cmif_core::time::MediaTime;

    use crate::error::SchedulerError;

    fn story(name: &str, secs: i64) -> Document {
        DocumentBuilder::new(name)
            .channel("audio", MediaKind::Audio)
            .channel("caption", MediaKind::Text)
            .descriptor(
                DataDescriptor::new("speech", MediaKind::Audio, "pcm8")
                    .with_duration(TimeMs::from_secs(secs)),
            )
            .root_par(|root| {
                root.ext("voice", "audio", "speech");
                root.imm_text("line", "caption", "hello", 1_000);
            })
            .build()
            .unwrap()
    }

    fn cyclic_doc() -> Document {
        let mut doc = story("cycle", 2);
        let voice = doc.find("/voice").unwrap();
        let line = doc.find("/line").unwrap();
        doc.add_arc(
            voice,
            SyncArc::hard_start("../line", "").with_offset(MediaTime::seconds(1)),
        )
        .unwrap();
        doc.add_arc(
            line,
            SyncArc::hard_start("../voice", "").with_offset(MediaTime::seconds(1)),
        )
        .unwrap();
        doc
    }

    #[test]
    fn engine_plays_a_batch_and_reports_each() {
        let engine = Engine::with_workers(4);
        let ids: Vec<DocId> = (0..12)
            .map(|i| {
                engine.submit(
                    story("batch", 2 + (i % 3)),
                    JitterModel::uniform(100, i as u64),
                )
            })
            .collect();
        let outcomes = engine.drain();
        assert_eq!(outcomes.len(), 12);
        for (id, outcome) in ids.iter().zip(&outcomes) {
            assert_eq!(*id, outcome.id);
            assert!(outcome.is_ok(), "{:?}", outcome.result);
        }
    }

    #[test]
    fn concurrent_reports_match_sequential_runs() {
        let engine = Engine::with_workers(4);
        let mut ids = Vec::new();
        for seed in 0..8u64 {
            ids.push(engine.submit(story("det", 3), JitterModel::uniform(200, seed)));
        }
        let outcomes = engine.drain();

        let sequential = Engine::with_workers(1);
        let mut seq_ids = Vec::new();
        for seed in 0..8u64 {
            seq_ids.push(sequential.submit(story("det", 3), JitterModel::uniform(200, seed)));
        }
        let seq_outcomes = sequential.drain();

        for (a, b) in outcomes.iter().zip(&seq_outcomes) {
            assert_eq!(
                a.result.as_ref().unwrap(),
                b.result.as_ref().unwrap(),
                "concurrency changed a playback report"
            );
        }
    }

    #[test]
    fn bad_document_is_rejected_without_tearing_down_the_worker() {
        // One worker: the cyclic document and the good one share it, so the
        // good one only completes if the worker survives the rejection.
        let engine = Engine::with_workers(1);
        let bad = engine.submit_labeled("bad", cyclic_doc(), JitterModel::ideal());
        let good = engine.submit_labeled("good", story("good", 2), JitterModel::ideal());
        let bad_outcome = engine.wait(bad);
        assert!(matches!(
            bad_outcome.result,
            Err(SchedulerError::ConstraintCycle { .. })
        ));
        let good_outcome = engine.wait(good);
        assert!(good_outcome.is_ok());
        assert_eq!(good_outcome.label, "good");
    }

    #[test]
    fn drain_on_an_idle_engine_returns_empty() {
        let engine = Engine::with_workers(2);
        assert!(engine.drain().is_empty());
        assert_eq!(engine.backlog(), 0);
        engine.shutdown();
    }

    #[test]
    #[should_panic(expected = "never admitted")]
    fn waiting_for_a_foreign_ticket_panics() {
        let engine = Engine::with_workers(1);
        engine.wait(DocId(99));
    }

    #[test]
    #[should_panic(expected = "already delivered")]
    fn waiting_twice_for_one_outcome_panics_instead_of_hanging() {
        let engine = Engine::with_workers(1);
        let id = engine.submit(story("once", 2), JitterModel::ideal());
        assert!(engine.wait(id).is_ok());
        engine.wait(id);
    }

    #[test]
    #[should_panic(expected = "already delivered")]
    fn waiting_after_drain_panics_instead_of_hanging() {
        let engine = Engine::with_workers(1);
        let id = engine.submit(story("drained", 2), JitterModel::ideal());
        assert_eq!(engine.drain().len(), 1);
        engine.wait(id);
    }

    #[test]
    fn drain_returns_each_outcome_once_across_batches() {
        let engine = Engine::with_workers(2);
        for _ in 0..3 {
            engine.submit(story("batch-a", 2), JitterModel::ideal());
        }
        assert_eq!(engine.drain().len(), 3);
        for _ in 0..2 {
            engine.submit(story("batch-b", 2), JitterModel::ideal());
        }
        // The second drain sees only the second batch.
        assert_eq!(engine.drain().len(), 2);
    }
}
