//! The multi-document scheduling engine.
//!
//! The one-shot entry points processed one document per call and rebuilt
//! all state each time — a dead end for a server that must multiplex many
//! cheap client sessions over shared worker state (Gray's *Locally Served
//! Network Computers* argument). [`Engine`] is that server side: it admits
//! N documents, schedules and plays them concurrently across a fixed pool
//! of worker threads, and returns one [`PlaybackReport`] per document.
//!
//! The run queue is hand-rolled on `std::sync::{Mutex, Condvar}` — this
//! workspace has no registry access, so no tokio — and a job can only fail
//! *as itself*: a document whose constraints are unsatisfiable is rejected
//! with [`SchedulerError::ConstraintCycle`] as its outcome, and a job that
//! *panics* is contained by `catch_unwind` into a
//! [`SchedulerError::JobPanicked`] outcome. Either way the worker thread
//! keeps serving and `drain()`/`wait()` terminate — exactly the supervisor
//! behaviour the typed error layer was introduced for.
//!
//! Admission is controlled: with [`EngineConfig::max_backlog`] set, a full
//! queue makes [`Engine::submit`] block until a worker frees capacity while
//! [`Engine::try_submit`] refuses immediately with
//! [`SchedulerError::Backpressure`]; [`Engine::close`] stops admission
//! (further submits get [`SchedulerError::EngineClosed`]) while the backlog
//! already admitted keeps draining.
//!
//! Determinism: each submission carries its own seeded [`JitterModel`], so
//! the report produced for a document is identical whether it played alone
//! or next to 63 concurrent siblings.

use std::any::Any;
use std::collections::{HashSet, VecDeque};
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex, PoisonError};
use std::thread::{self, JoinHandle};

use cmif_core::descriptor::DescriptorResolver;
use cmif_core::tree::Document;

use crate::environment::JitterModel;
use crate::error::{Result, SchedulerError};
use crate::graph::ConstraintGraph;
use crate::player::PlaybackReport;
use crate::session::PlayerSession;
use crate::solver::SolveResult;
use crate::types::ScheduleOptions;

/// Test-only fault injection: runs at the start of every job with the
/// job's label. A panic raised here is deliberately indistinguishable from
/// a panic inside scheduling or playback — the panic-containment
/// regression tests use it to wedge or kill specific jobs on demand.
/// Production code has no reason to install one.
#[doc(hidden)]
#[derive(Clone)]
pub struct JobHook(Arc<dyn Fn(&str) + Send + Sync>);

impl JobHook {
    /// Wraps a closure as a job hook.
    pub fn new(hook: impl Fn(&str) + Send + Sync + 'static) -> JobHook {
        JobHook(Arc::new(hook))
    }

    fn fire(&self, label: &str) {
        (self.0)(label)
    }
}

impl fmt::Debug for JobHook {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("JobHook(..)")
    }
}

/// Configuration of an [`Engine`].
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Number of worker threads. Zero is clamped to one.
    pub workers: usize,
    /// Scheduling policy applied to every admitted document.
    pub options: ScheduleOptions,
    /// How many clock steps each worker drives a session through. Playback
    /// outcomes do not depend on this (the causal timeline is fixed at
    /// session creation); it only exercises the step-wise machinery.
    pub ticks_per_document: u32,
    /// Maximum number of admitted-but-unstarted documents. `None` (the
    /// default) admits without bound — a fast producer can then grow the
    /// queue faster than the workers drain it. With `Some(k)`, a full
    /// queue makes [`Engine::submit`] block on a capacity condvar until a
    /// worker takes a job, and [`Engine::try_submit`] return
    /// [`SchedulerError::Backpressure`] immediately. `Some(0)` is treated
    /// as `Some(1)`: jobs reach workers only through the queue, so a
    /// zero-slot queue would deadlock every blocking admission.
    pub max_backlog: Option<usize>,
    /// Test-only fault injection; see [`JobHook`]. Leave `None`.
    #[doc(hidden)]
    pub job_hook: Option<JobHook>,
}

impl Default for EngineConfig {
    fn default() -> EngineConfig {
        EngineConfig {
            workers: thread::available_parallelism()
                .map(|n| n.get().min(8))
                .unwrap_or(1),
            options: ScheduleOptions::default(),
            ticks_per_document: 8,
            max_backlog: None,
            job_hook: None,
        }
    }
}

/// Identifier of one admitted document, in admission order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct DocId(u64);

impl std::fmt::Display for DocId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "doc#{}", self.0)
    }
}

/// The engine's verdict on one admitted document.
#[derive(Debug, Clone)]
pub struct DocOutcome {
    /// The admission ticket the outcome belongs to.
    pub id: DocId,
    /// The label given at submission.
    pub label: String,
    /// The playback report, or the scheduler error that made the engine
    /// reject the document — including [`SchedulerError::JobPanicked`]
    /// when the job panicked (its worker survives either way).
    pub result: Result<PlaybackReport>,
}

impl DocOutcome {
    /// True when the document played to completion.
    pub fn is_ok(&self) -> bool {
        self.result.is_ok()
    }
}

/// One admission request: a document plus its playback context.
///
/// The convenience entry points ([`Engine::submit`], `submit_labeled`,
/// `try_submit`) build one internally; build it yourself when you need the
/// full form — a label *and* a non-blocking admission, or a descriptor
/// resolver other than the document's own catalog (the pipeline submits
/// against a snapshot of its block store so materialised degradations are
/// what the sessions see).
#[derive(Clone)]
pub struct Submission {
    doc: Arc<Document>,
    jitter: JitterModel,
    label: Option<String>,
    resolver: Option<Arc<dyn DescriptorResolver + Send + Sync>>,
    solve: Option<Arc<SolveResult>>,
}

impl Submission {
    /// A submission resolving descriptors from the document's own catalog.
    pub fn new(doc: impl Into<Arc<Document>>, jitter: JitterModel) -> Submission {
        Submission {
            doc: doc.into(),
            jitter,
            label: None,
            resolver: None,
            solve: None,
        }
    }

    /// Sets the label used in reports and logs (default: the ticket id).
    pub fn labeled(mut self, label: impl Into<String>) -> Submission {
        self.label = Some(label.into());
        self
    }

    /// Resolves descriptors through `resolver` instead of the document's
    /// catalog.
    pub fn resolver(mut self, resolver: Arc<dyn DescriptorResolver + Send + Sync>) -> Submission {
        self.resolver = Some(resolver);
        self
    }

    /// Supplies a precomputed solve result, so the job skips its own
    /// derive + solve pass and goes straight to playback — the pipeline
    /// submits the stage-5a result this way, and N submissions of one
    /// solved document share the `Arc`. The result must belong to this
    /// document: playback over a mismatched solve fails with the usual
    /// typed `UnscheduledNode` outcome, never a panic.
    pub fn solved(mut self, solve: impl Into<Arc<SolveResult>>) -> Submission {
        self.solve = Some(solve.into());
        self
    }
}

impl fmt::Debug for Submission {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Submission")
            .field("doc", &Arc::as_ptr(&self.doc))
            .field("jitter", &self.jitter)
            .field("label", &self.label)
            .field(
                "resolver",
                &self.resolver.as_ref().map(|_| "<custom resolver>"),
            )
            .field("solve", &self.solve.as_ref().map(|_| "<precomputed>"))
            .finish()
    }
}

struct Job {
    id: DocId,
    label: String,
    doc: Arc<Document>,
    jitter: JitterModel,
    resolver: Option<Arc<dyn DescriptorResolver + Send + Sync>>,
    solve: Option<Arc<SolveResult>>,
}

struct QueueState {
    pending: VecDeque<Job>,
    finished: Vec<DocOutcome>,
    /// Every id below this has had its outcome handed out by
    /// `wait`/`drain`.
    delivered_floor: u64,
    /// Out-of-order deliveries at or above the floor. Pruned as the floor
    /// advances, so a long-lived engine's delivery bookkeeping stays
    /// proportional to the out-of-order window — never to every document
    /// it ever played.
    delivered: HashSet<u64>,
    in_flight: usize,
    next_id: u64,
    /// Admission is closed (`close()`); the backlog still drains.
    closed: bool,
    /// Workers exit once the queue is empty (`shutdown()`/drop).
    shutdown: bool,
}

impl QueueState {
    fn mark_delivered(&mut self, id: u64) {
        if id == self.delivered_floor {
            self.delivered_floor += 1;
            while self.delivered.remove(&self.delivered_floor) {
                self.delivered_floor += 1;
            }
        } else {
            self.delivered.insert(id);
        }
    }

    fn is_delivered(&self, id: u64) -> bool {
        id < self.delivered_floor || self.delivered.contains(&id)
    }
}

struct Shared {
    state: Mutex<QueueState>,
    /// Signalled when a job is enqueued or shutdown begins (workers wait).
    work: Condvar,
    /// Signalled when a job completes (waiters wait).
    done: Condvar,
    /// Signalled when a worker takes a job off a bounded queue, and on
    /// close/shutdown (blocked submitters wait).
    capacity: Condvar,
    config: EngineConfig,
}

impl Shared {
    fn lock(&self) -> std::sync::MutexGuard<'_, QueueState> {
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }
}

/// A pool of worker threads playing many documents concurrently.
///
/// Each outcome is delivered exactly once — by the `wait(id)` or `drain()`
/// call that first sees it. Memory is bounded by the admission bound
/// ([`EngineConfig::max_backlog`]) *plus* the finished-but-undelivered
/// outcomes, which accumulate until a `wait`/`drain` collects them —
/// [`Engine::undelivered`] counts that half, [`Engine::backlog`] the
/// other. A long-lived engine therefore stays bounded exactly when its
/// producers keep collecting outcomes (delivery bookkeeping is a watermark
/// plus the out-of-order window, not a record of every document ever
/// played). Asking again for an already-delivered outcome panics with a
/// clear message rather than blocking forever.
///
/// ```
/// use std::sync::Arc;
///
/// use cmif_core::prelude::*;
/// use cmif_scheduler::{Engine, EngineConfig, JitterModel};
///
/// # fn main() -> std::result::Result<(), cmif_scheduler::SchedulerError> {
/// let doc = Arc::new(
///     DocumentBuilder::new("spot")
///         .channel("audio", MediaKind::Audio)
///         .descriptor(
///             DataDescriptor::new("jingle", MediaKind::Audio, "pcm8")
///                 .with_duration(TimeMs::from_secs(3)),
///         )
///         .root_seq(|root| {
///             root.ext("jingle", "audio", "jingle");
///         })
///         .build()?,
/// );
///
/// let engine = Engine::new(EngineConfig { workers: 2, ..EngineConfig::default() });
/// // Submitting an `Arc<Document>` clones a pointer, never the tree.
/// let a = engine.submit(Arc::clone(&doc), JitterModel::ideal())?;
/// let b = engine.submit(Arc::clone(&doc), JitterModel::uniform(100, 7))?;
/// let outcome = engine.wait(a);
/// assert!(outcome.is_ok());
/// assert!(engine.wait(b).is_ok());
/// // No new work after close(), but anything admitted still drains:
/// engine.close();
/// assert!(engine.try_submit(doc, JitterModel::ideal()).is_err());
/// # Ok(()) }
/// ```
pub struct Engine {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
}

impl Engine {
    /// Starts an engine with the given configuration.
    pub fn new(config: EngineConfig) -> Engine {
        let worker_count = config.workers.max(1);
        let shared = Arc::new(Shared {
            state: Mutex::new(QueueState {
                pending: VecDeque::new(),
                finished: Vec::new(),
                delivered_floor: 0,
                delivered: HashSet::new(),
                in_flight: 0,
                next_id: 0,
                closed: false,
                shutdown: false,
            }),
            work: Condvar::new(),
            done: Condvar::new(),
            capacity: Condvar::new(),
            config,
        });
        let workers = (0..worker_count)
            .map(|index| {
                let shared = Arc::clone(&shared);
                thread::Builder::new()
                    .name(format!("cmif-engine-{index}"))
                    .spawn(move || worker_loop(&shared))
                    .unwrap_or_else(|e| panic!("spawning engine worker {index} failed: {e}"))
            })
            .collect();
        Engine { shared, workers }
    }

    /// Starts an engine with `workers` worker threads and default policy.
    pub fn with_workers(workers: usize) -> Engine {
        Engine::new(EngineConfig {
            workers,
            ..EngineConfig::default()
        })
    }

    /// Number of worker threads.
    pub fn worker_count(&self) -> usize {
        self.workers.len()
    }

    /// Admits a document for scheduling and playback under the given
    /// (seeded, hence deterministic) jitter model.
    ///
    /// The document travels as an [`Arc`]: submitting the same tree 64
    /// times clones a pointer 64 times, never the tree. An owned
    /// [`Document`] is accepted too (`impl Into<Arc<Document>>`) and is
    /// moved — not copied — into its ref-counted box.
    ///
    /// With a bounded queue ([`EngineConfig::max_backlog`]) and the queue
    /// full, this *blocks* until a worker frees a slot. Errors with
    /// [`SchedulerError::EngineClosed`] if the engine was closed or shut
    /// down — including while blocked waiting for capacity.
    pub fn submit(&self, doc: impl Into<Arc<Document>>, jitter: JitterModel) -> Result<DocId> {
        self.admit(Submission::new(doc, jitter))
    }

    /// Admits a document under a caller-chosen label (for reports and logs).
    /// Blocks and errors exactly like [`Engine::submit`].
    pub fn submit_labeled(
        &self,
        label: impl Into<String>,
        doc: impl Into<Arc<Document>>,
        jitter: JitterModel,
    ) -> Result<DocId> {
        self.admit(Submission::new(doc, jitter).labeled(label))
    }

    /// Non-blocking admission: like [`Engine::submit`], but a full bounded
    /// queue returns [`SchedulerError::Backpressure`] immediately instead
    /// of blocking (and a closed engine [`SchedulerError::EngineClosed`]).
    pub fn try_submit(&self, doc: impl Into<Arc<Document>>, jitter: JitterModel) -> Result<DocId> {
        self.try_admit(Submission::new(doc, jitter))
    }

    /// Admits a full [`Submission`], blocking while a bounded queue is
    /// full. The blocking twin of [`Engine::try_admit`].
    pub fn admit(&self, submission: Submission) -> Result<DocId> {
        self.enqueue(submission, true)
    }

    /// Admits a full [`Submission`] without blocking: a full bounded queue
    /// is [`SchedulerError::Backpressure`], a closed engine
    /// [`SchedulerError::EngineClosed`].
    pub fn try_admit(&self, submission: Submission) -> Result<DocId> {
        self.enqueue(submission, false)
    }

    fn enqueue(&self, submission: Submission, block: bool) -> Result<DocId> {
        let mut state = self.shared.lock();
        loop {
            if state.closed || state.shutdown {
                return Err(SchedulerError::EngineClosed);
            }
            match self.shared.config.max_backlog {
                // Jobs reach workers only through `pending`, so a zero-slot
                // queue would deadlock blocking admissions: clamp to one.
                Some(limit) if state.pending.len() >= limit.max(1) => {
                    if !block {
                        return Err(SchedulerError::Backpressure {
                            backlog: state.pending.len() + state.in_flight,
                        });
                    }
                    state = self
                        .shared
                        .capacity
                        .wait(state)
                        .unwrap_or_else(PoisonError::into_inner);
                }
                _ => break,
            }
        }
        let id = DocId(state.next_id);
        state.next_id += 1;
        state.pending.push_back(Job {
            id,
            label: submission.label.unwrap_or_else(|| id.to_string()),
            doc: submission.doc,
            jitter: submission.jitter,
            resolver: submission.resolver,
            solve: submission.solve,
        });
        drop(state);
        self.shared.work.notify_one();
        Ok(id)
    }

    /// Blocks until the given document has finished (or been rejected) and
    /// returns its outcome.
    ///
    /// The outcome is delivered exactly once. Panics if the id was never
    /// issued by this engine, or if its outcome was already taken by an
    /// earlier `wait(id)` or [`Engine::drain`] — a clear error instead of
    /// the silent permanent block that re-waiting would otherwise be.
    pub fn wait(&self, id: DocId) -> DocOutcome {
        let mut state = self.shared.lock();
        assert!(id.0 < state.next_id, "{id} was never admitted here");
        loop {
            if let Some(pos) = state.finished.iter().position(|o| o.id == id) {
                state.mark_delivered(id.0);
                return state.finished.swap_remove(pos);
            }
            assert!(
                !state.is_delivered(id.0),
                "the outcome of {id} was already delivered by a previous wait() or drain()"
            );
            state = self
                .shared
                .done
                .wait(state)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// Blocks until every admitted document has finished and returns the
    /// not-yet-delivered outcomes in admission order (outcomes already
    /// taken by `wait(id)` are not repeated).
    ///
    /// "Every admitted" is a snapshot: producers admitting concurrently
    /// with a `drain` may land their documents after it returned.
    pub fn drain(&self) -> Vec<DocOutcome> {
        let mut state = self.shared.lock();
        while !state.pending.is_empty() || state.in_flight > 0 {
            state = self
                .shared
                .done
                .wait(state)
                .unwrap_or_else(PoisonError::into_inner);
        }
        let mut outcomes = std::mem::take(&mut state.finished);
        outcomes.sort_by_key(|o| o.id);
        // Ascending marks let the delivered floor swallow each id as it
        // comes — after a full drain the out-of-order set is empty.
        for outcome in &outcomes {
            state.mark_delivered(outcome.id.0);
        }
        outcomes
    }

    /// Number of documents admitted but not yet finished (queued plus in
    /// flight). Finished-but-undelivered outcomes are *not* counted here —
    /// see [`Engine::undelivered`].
    pub fn backlog(&self) -> usize {
        let state = self.shared.lock();
        state.pending.len() + state.in_flight
    }

    /// Number of finished outcomes no `wait`/`drain` has collected yet.
    /// This is the half of the engine's memory [`Engine::backlog`] does
    /// not cover: it grows without bound if producers never collect.
    pub fn undelivered(&self) -> usize {
        self.shared.lock().finished.len()
    }

    /// (delivered watermark, parked out-of-order deliveries) — the
    /// boundedness regression test reads these.
    #[cfg(test)]
    fn delivery_bookkeeping(&self) -> (u64, usize) {
        let state = self.shared.lock();
        (state.delivered_floor, state.delivered.len())
    }

    /// Stops admission: every later `submit`/`try_submit` (and any
    /// admission currently blocked on a full queue) gets
    /// [`SchedulerError::EngineClosed`]. The backlog already admitted
    /// keeps draining, and `wait`/`drain` keep delivering — the graceful
    /// half of [`Engine::shutdown`]'s "no new work, then stop". Idempotent.
    pub fn close(&self) {
        {
            let mut state = self.shared.lock();
            state.closed = true;
        }
        // Submitters blocked on capacity must observe the closure.
        self.shared.capacity.notify_all();
    }

    /// True once [`Engine::close`] (or shutdown) stopped admission.
    pub fn is_closed(&self) -> bool {
        let state = self.shared.lock();
        state.closed || state.shutdown
    }

    /// Stops the workers after the queue drains and joins them.
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    fn stop_and_join(&mut self) {
        {
            let mut state = self.shared.lock();
            state.shutdown = true;
        }
        self.shared.work.notify_all();
        // Admissions blocked on a full queue must fail, not wait forever
        // for workers that are about to exit.
        self.shared.capacity.notify_all();
        for worker in self.workers.drain(..) {
            // Worker threads contain job panics themselves; a panic in the
            // loop machinery would abort if propagated out of drop, so
            // swallow it.
            let _ = worker.join();
        }
    }
}

impl Drop for Engine {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

/// Renders a caught panic payload (the usual `&str`/`String` cases).
fn panic_message(payload: Box<dyn Any + Send>) -> String {
    match payload.downcast::<String>() {
        Ok(message) => *message,
        Err(payload) => match payload.downcast::<&'static str>() {
            Ok(message) => (*message).to_string(),
            Err(_) => "non-string panic payload".to_string(),
        },
    }
}

fn worker_loop(shared: &Shared) {
    loop {
        let job = {
            let mut state = shared.lock();
            loop {
                if let Some(job) = state.pending.pop_front() {
                    state.in_flight += 1;
                    break job;
                }
                if state.shutdown {
                    return;
                }
                state = shared
                    .work
                    .wait(state)
                    .unwrap_or_else(PoisonError::into_inner);
            }
        };
        if shared.config.max_backlog.is_some() {
            // The pop above freed one bounded-queue slot.
            shared.capacity.notify_one();
        }
        // Contain a panicking job: it must not take the worker down with
        // `in_flight` still incremented (that wedged every later
        // `drain()`/`wait()` forever). `AssertUnwindSafe` is sound here:
        // `run_job` only reads the config and the job, all its mutable
        // state is local to the call, and the queue mutex is not held.
        let result = catch_unwind(AssertUnwindSafe(|| run_job(&shared.config, &job)))
            .unwrap_or_else(|payload| {
                Err(SchedulerError::JobPanicked {
                    message: panic_message(payload),
                })
            });
        let Job {
            id,
            label,
            doc,
            jitter,
            resolver,
            solve,
        } = job;
        // Release the job's shared references (document, resolver,
        // precomputed solve) *before* the outcome becomes observable, so a
        // producer that sees the outcome can reclaim sole ownership of
        // what it shared (`Arc::try_unwrap`) without racing this thread.
        drop((doc, jitter, resolver, solve));
        let outcome = DocOutcome { id, label, result };
        let mut state = shared.lock();
        state.in_flight -= 1;
        state.finished.push(outcome);
        drop(state);
        shared.done.notify_all();
    }
}

/// One document's full trip through the engine: derive, relax, play. Any
/// scheduler error — a `ConstraintCycle` above all — is the document's
/// outcome, not the worker's death.
fn run_job(config: &EngineConfig, job: &Job) -> Result<PlaybackReport> {
    if let Some(hook) = &config.job_hook {
        hook.fire(&job.label);
    }
    let resolver: &dyn DescriptorResolver = match &job.resolver {
        Some(resolver) => resolver.as_ref(),
        None => &job.doc.catalog,
    };
    let owned_solve;
    let solved: &SolveResult = match &job.solve {
        Some(precomputed) => precomputed,
        None => {
            let mut graph = ConstraintGraph::derive(&job.doc, resolver, &config.options)?;
            owned_solve = graph.solve(&job.doc, resolver)?;
            &owned_solve
        }
    };
    let mut session = PlayerSession::new(&job.doc, solved, resolver, &job.jitter)?;
    let total = session.total_duration().as_millis();
    let ticks = i64::from(config.ticks_per_document.max(1));
    for step in 1..=ticks {
        session.tick(total * step / ticks)?;
        session.poll_events();
    }
    // `total * ticks / ticks == total`, so the session is finished here;
    // the final tick is a no-op safeguard for zero-length documents.
    session.tick(total)?;
    session.poll_events();
    Ok(session.run_to_completion())
}

#[cfg(test)]
mod tests {
    use super::*;
    use cmif_core::arc::SyncArc;
    use cmif_core::prelude::*;
    use cmif_core::time::MediaTime;
    use std::time::Duration;

    use crate::error::SchedulerError;

    fn story(name: &str, secs: i64) -> Document {
        DocumentBuilder::new(name)
            .channel("audio", MediaKind::Audio)
            .channel("caption", MediaKind::Text)
            .descriptor(
                DataDescriptor::new("speech", MediaKind::Audio, "pcm8")
                    .with_duration(TimeMs::from_secs(secs)),
            )
            .root_par(|root| {
                root.ext("voice", "audio", "speech");
                root.imm_text("line", "caption", "hello", 1_000);
            })
            .build()
            .unwrap()
    }

    fn cyclic_doc() -> Document {
        let mut doc = story("cycle", 2);
        let voice = doc.find("/voice").unwrap();
        let line = doc.find("/line").unwrap();
        doc.add_arc(
            voice,
            SyncArc::hard_start("../line", "").with_offset(MediaTime::seconds(1)),
        )
        .unwrap();
        doc.add_arc(
            line,
            SyncArc::hard_start("../voice", "").with_offset(MediaTime::seconds(1)),
        )
        .unwrap();
        doc
    }

    /// A manually opened barrier the stall-hook tests park workers on.
    struct Gate {
        open: Mutex<bool>,
        cv: Condvar,
    }

    impl Gate {
        fn new() -> Arc<Gate> {
            Arc::new(Gate {
                open: Mutex::new(false),
                cv: Condvar::new(),
            })
        }

        fn wait(&self) {
            let mut open = self.open.lock().unwrap();
            while !*open {
                open = self.cv.wait(open).unwrap();
            }
        }

        fn release(&self) {
            *self.open.lock().unwrap() = true;
            self.cv.notify_all();
        }
    }

    /// An engine whose workers park on `gate` at the start of every job.
    fn stalled_engine(workers: usize, max_backlog: Option<usize>, gate: &Arc<Gate>) -> Engine {
        let gate = Arc::clone(gate);
        Engine::new(EngineConfig {
            workers,
            max_backlog,
            job_hook: Some(JobHook::new(move |_| gate.wait())),
            ..EngineConfig::default()
        })
    }

    #[test]
    fn engine_plays_a_batch_and_reports_each() {
        let engine = Engine::with_workers(4);
        let ids: Vec<DocId> = (0..12)
            .map(|i| {
                engine
                    .submit(
                        story("batch", 2 + (i % 3)),
                        JitterModel::uniform(100, i as u64),
                    )
                    .unwrap()
            })
            .collect();
        let outcomes = engine.drain();
        assert_eq!(outcomes.len(), 12);
        for (id, outcome) in ids.iter().zip(&outcomes) {
            assert_eq!(*id, outcome.id);
            assert!(outcome.is_ok(), "{:?}", outcome.result);
        }
    }

    #[test]
    fn concurrent_reports_match_sequential_runs() {
        let engine = Engine::with_workers(4);
        let mut ids = Vec::new();
        for seed in 0..8u64 {
            ids.push(
                engine
                    .submit(story("det", 3), JitterModel::uniform(200, seed))
                    .unwrap(),
            );
        }
        let outcomes = engine.drain();

        let sequential = Engine::with_workers(1);
        let mut seq_ids = Vec::new();
        for seed in 0..8u64 {
            seq_ids.push(
                sequential
                    .submit(story("det", 3), JitterModel::uniform(200, seed))
                    .unwrap(),
            );
        }
        let seq_outcomes = sequential.drain();

        for (a, b) in outcomes.iter().zip(&seq_outcomes) {
            assert_eq!(
                a.result.as_ref().unwrap(),
                b.result.as_ref().unwrap(),
                "concurrency changed a playback report"
            );
        }
    }

    #[test]
    fn bad_document_is_rejected_without_tearing_down_the_worker() {
        // One worker: the cyclic document and the good one share it, so the
        // good one only completes if the worker survives the rejection.
        let engine = Engine::with_workers(1);
        let bad = engine
            .submit_labeled("bad", cyclic_doc(), JitterModel::ideal())
            .unwrap();
        let good = engine
            .submit_labeled("good", story("good", 2), JitterModel::ideal())
            .unwrap();
        let bad_outcome = engine.wait(bad);
        assert!(matches!(
            bad_outcome.result,
            Err(SchedulerError::ConstraintCycle { .. })
        ));
        let good_outcome = engine.wait(good);
        assert!(good_outcome.is_ok());
        assert_eq!(good_outcome.label, "good");
    }

    #[test]
    fn panicking_job_is_an_outcome_not_a_wedge() {
        // The panic twin of the test above — the regression that motivated
        // `catch_unwind`: before it, a panic killed the worker with
        // `in_flight` still incremented and every later `drain()`/`wait()`
        // blocked forever. One worker: the sibling only completes if that
        // worker survived the panic.
        let engine = Engine::new(EngineConfig {
            workers: 1,
            job_hook: Some(JobHook::new(|label| {
                if label == "boom" {
                    panic!("injected playback fault in {label}");
                }
            })),
            ..EngineConfig::default()
        });
        let bad = engine
            .submit_labeled("boom", story("doomed", 2), JitterModel::ideal())
            .unwrap();
        let good = engine
            .submit_labeled("survivor", story("fine", 2), JitterModel::ideal())
            .unwrap();
        let bad_outcome = engine.wait(bad);
        match bad_outcome.result {
            Err(SchedulerError::JobPanicked { ref message }) => {
                assert!(message.contains("injected playback fault"), "{message}");
            }
            other => panic!("expected JobPanicked, got {other:?}"),
        }
        // The same worker still serves; drain() terminates.
        let good_outcome = engine.wait(good);
        assert!(good_outcome.is_ok(), "{:?}", good_outcome.result);
        assert!(engine.drain().is_empty());
        assert_eq!(engine.backlog(), 0);
    }

    #[test]
    fn every_job_panicking_still_drains() {
        let engine = Engine::new(EngineConfig {
            workers: 2,
            job_hook: Some(JobHook::new(|_| panic!("nothing works today"))),
            ..EngineConfig::default()
        });
        for _ in 0..6 {
            engine
                .submit(story("cursed", 2), JitterModel::ideal())
                .unwrap();
        }
        let outcomes = engine.drain();
        assert_eq!(outcomes.len(), 6);
        assert!(outcomes
            .iter()
            .all(|o| matches!(o.result, Err(SchedulerError::JobPanicked { .. }))));
    }

    #[test]
    fn try_submit_backpressure_when_saturated() {
        let gate = Gate::new();
        let engine = stalled_engine(1, Some(1), &gate);
        // First job: popped by the worker, which then parks on the gate.
        let first = engine.submit(story("a", 2), JitterModel::ideal()).unwrap();
        // Second: sits in the queue's single slot once the worker took the
        // first (the blocking submit waits for exactly that).
        let second = engine.submit(story("b", 2), JitterModel::ideal()).unwrap();
        // Third: the slot is provably full and the worker parked.
        let refused = engine.try_submit(story("c", 2), JitterModel::ideal());
        match refused {
            Err(SchedulerError::Backpressure { backlog }) => assert_eq!(backlog, 2),
            other => panic!("expected Backpressure, got {other:?}"),
        }
        assert_eq!(engine.backlog(), 2);
        gate.release();
        assert!(engine.wait(first).is_ok());
        assert!(engine.wait(second).is_ok());
    }

    #[test]
    fn blocked_submit_resumes_when_capacity_frees() {
        let gate = Gate::new();
        let engine = Arc::new(stalled_engine(1, Some(1), &gate));
        engine.submit(story("a", 2), JitterModel::ideal()).unwrap();
        engine.submit(story("b", 2), JitterModel::ideal()).unwrap();

        let (tx, rx) = std::sync::mpsc::channel();
        let submitter = {
            let engine = Arc::clone(&engine);
            thread::spawn(move || {
                let id = engine.submit(story("c", 2), JitterModel::ideal());
                tx.send(()).unwrap();
                id
            })
        };
        // While the worker is parked the queue stays full, so the submit
        // cannot have returned (a false pass here is impossible: returning
        // would need a queue slot only the parked worker can free).
        assert!(rx.recv_timeout(Duration::from_millis(100)).is_err());
        gate.release();
        let id = submitter.join().unwrap().expect("unblocked submit admits");
        assert!(engine.wait(id).is_ok());
        assert_eq!(engine.drain().len(), 2);
    }

    #[test]
    fn close_stops_admission_while_the_backlog_drains() {
        let gate = Gate::new();
        let engine = stalled_engine(1, None, &gate);
        let ids: Vec<DocId> = (0..3)
            .map(|i| {
                engine
                    .submit(story("queued", 2), JitterModel::uniform(50, i))
                    .unwrap()
            })
            .collect();
        engine.close();
        assert!(engine.is_closed());
        assert!(matches!(
            engine.submit(story("late", 2), JitterModel::ideal()),
            Err(SchedulerError::EngineClosed)
        ));
        assert!(matches!(
            engine.try_submit(story("late", 2), JitterModel::ideal()),
            Err(SchedulerError::EngineClosed)
        ));
        // The already-admitted backlog still drains to completion.
        gate.release();
        let outcomes = engine.drain();
        assert_eq!(outcomes.len(), ids.len());
        assert!(outcomes.iter().all(DocOutcome::is_ok));
        // close() is idempotent and keeps delivering nothing new.
        engine.close();
        assert!(engine.drain().is_empty());
    }

    #[test]
    fn close_unblocks_a_submitter_waiting_for_capacity() {
        let gate = Gate::new();
        let engine = Arc::new(stalled_engine(1, Some(1), &gate));
        engine.submit(story("a", 2), JitterModel::ideal()).unwrap();
        engine.submit(story("b", 2), JitterModel::ideal()).unwrap();
        let blocked = {
            let engine = Arc::clone(&engine);
            thread::spawn(move || engine.submit(story("c", 2), JitterModel::ideal()))
        };
        // Whether the close lands before or after the thread starts
        // waiting, the submit must come back with EngineClosed.
        thread::sleep(Duration::from_millis(50));
        engine.close();
        assert!(matches!(
            blocked.join().unwrap(),
            Err(SchedulerError::EngineClosed)
        ));
        gate.release();
        assert_eq!(engine.drain().len(), 2);
    }

    #[test]
    fn zero_backlog_is_clamped_so_blocking_submits_make_progress() {
        let engine = Engine::new(EngineConfig {
            workers: 1,
            max_backlog: Some(0),
            ..EngineConfig::default()
        });
        let id = engine
            .submit(story("only", 2), JitterModel::ideal())
            .unwrap();
        assert!(engine.wait(id).is_ok());
    }

    #[test]
    fn delivery_bookkeeping_stays_bounded_on_a_long_lived_engine() {
        let engine = Engine::with_workers(1);
        for i in 0..40 {
            let id = engine
                .submit(story("long", 2), JitterModel::uniform(30, i))
                .unwrap();
            assert!(engine.wait(id).is_ok());
        }
        let (floor, parked) = engine.delivery_bookkeeping();
        assert_eq!(floor, 40);
        assert_eq!(
            parked, 0,
            "delivery set must not grow with documents played"
        );

        // Out-of-order delivery parks an id only until the floor catches up.
        let a = engine.submit(story("a", 2), JitterModel::ideal()).unwrap();
        let b = engine.submit(story("b", 2), JitterModel::ideal()).unwrap();
        assert!(engine.wait(b).is_ok());
        let (_, parked) = engine.delivery_bookkeeping();
        assert_eq!(parked, 1);
        assert!(engine.wait(a).is_ok());
        let (floor, parked) = engine.delivery_bookkeeping();
        assert_eq!(floor, 42);
        assert_eq!(parked, 0);
    }

    #[test]
    fn undelivered_counts_finished_outcomes_until_collected() {
        let engine = Engine::with_workers(2);
        for i in 0..3 {
            engine
                .submit(story("idle", 2), JitterModel::uniform(40, i))
                .unwrap();
        }
        // Wait for the jobs to finish without delivering their outcomes.
        let deadline = std::time::Instant::now() + Duration::from_secs(30);
        while engine.backlog() > 0 {
            assert!(std::time::Instant::now() < deadline, "jobs never finished");
            thread::sleep(Duration::from_millis(5));
        }
        assert_eq!(engine.undelivered(), 3);
        assert_eq!(engine.backlog(), 0);
        assert_eq!(engine.drain().len(), 3);
        assert_eq!(engine.undelivered(), 0);
    }

    #[test]
    fn precomputed_solve_skips_derivation_but_matches_it() {
        let doc = Arc::new(story("pre", 3));
        let jitter = JitterModel::uniform(150, 11);
        let engine = Engine::with_workers(1);
        let derived = engine.submit(Arc::clone(&doc), jitter.clone()).unwrap();
        let solve = ConstraintGraph::derive(&doc, &doc.catalog, &ScheduleOptions::default())
            .unwrap()
            .solve(&doc, &doc.catalog)
            .unwrap();
        let precomputed = engine
            .admit(Submission::new(Arc::clone(&doc), jitter).solved(solve))
            .unwrap();
        assert_eq!(
            engine.wait(derived).result.unwrap(),
            engine.wait(precomputed).result.unwrap(),
            "the precomputed-solve path diverged from the derive path"
        );
    }

    #[test]
    fn drain_on_an_idle_engine_returns_empty() {
        let engine = Engine::with_workers(2);
        assert!(engine.drain().is_empty());
        assert_eq!(engine.backlog(), 0);
        engine.shutdown();
    }

    #[test]
    #[should_panic(expected = "never admitted")]
    fn waiting_for_a_foreign_ticket_panics() {
        let engine = Engine::with_workers(1);
        engine.wait(DocId(99));
    }

    #[test]
    #[should_panic(expected = "already delivered")]
    fn waiting_twice_for_one_outcome_panics_instead_of_hanging() {
        let engine = Engine::with_workers(1);
        let id = engine
            .submit(story("once", 2), JitterModel::ideal())
            .unwrap();
        assert!(engine.wait(id).is_ok());
        engine.wait(id);
    }

    #[test]
    #[should_panic(expected = "already delivered")]
    fn waiting_after_drain_panics_instead_of_hanging() {
        let engine = Engine::with_workers(1);
        let id = engine
            .submit(story("drained", 2), JitterModel::ideal())
            .unwrap();
        assert_eq!(engine.drain().len(), 1);
        engine.wait(id);
    }

    #[test]
    fn drain_returns_each_outcome_once_across_batches() {
        let engine = Engine::with_workers(2);
        for _ in 0..3 {
            engine
                .submit(story("batch-a", 2), JitterModel::ideal())
                .unwrap();
        }
        assert_eq!(engine.drain().len(), 3);
        for _ in 0..2 {
            engine
                .submit(story("batch-b", 2), JitterModel::ideal())
                .unwrap();
        }
        // The second drain sees only the second batch.
        assert_eq!(engine.drain().len(), 2);
    }
}
