//! FIFO admission ticketing for submitters blocked on a full bounded queue.
//!
//! A condvar alone cannot promise wake-order: `notify_all` races every
//! blocked submitter back to the capacity check, and the OS is free to let
//! the newest arrival win every time — the oldest submitter can starve
//! behind a stream of younger ones indefinitely. The gate fixes that with
//! bakery-style tickets: each blocked admission draws a monotonically
//! increasing ticket on arrival, and only the *head* ticket is allowed to
//! consume freed capacity; everyone else goes back to waiting even if they
//! were woken first. When the head admits (or gives up — engine closed,
//! quota refused), it advances the head and re-notifies, so admission order
//! equals arrival order regardless of how the condvar orders its wakeups.

/// A bakery-counter gate ordering blocked submitters by arrival.
///
/// The gate itself holds no lock — it lives inside the engine's plane
/// mutex, and its counters are only touched under that lock.
#[derive(Debug, Default)]
pub(super) struct TicketGate {
    /// The next ticket to hand out.
    next: u64,
    /// The ticket currently allowed to consume capacity. Every ticket
    /// below it has admitted or abandoned.
    head: u64,
}

impl TicketGate {
    /// Draws the next ticket; the caller is now queued behind
    /// `self.waiting() - 1` older submitters.
    pub(super) fn enter(&mut self) -> u64 {
        let ticket = self.next;
        self.next += 1;
        ticket
    }

    /// True when `ticket` is the oldest outstanding ticket — the only one
    /// allowed to take freed capacity.
    pub(super) fn is_head(&self, ticket: u64) -> bool {
        ticket == self.head
    }

    /// Retires the head ticket (it admitted, or abandoned on close/quota).
    /// The caller must re-notify the capacity condvar so the next ticket
    /// in line can observe that it is now the head.
    pub(super) fn leave(&mut self) {
        debug_assert!(self.head < self.next, "leave() without a live ticket");
        self.head += 1;
    }

    /// Number of tickets outstanding (blocked submitters, including one
    /// that may currently be admitting).
    pub(super) fn waiting(&self) -> u64 {
        self.next - self.head
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tickets_are_served_in_arrival_order() {
        let mut gate = TicketGate::default();
        let a = gate.enter();
        let b = gate.enter();
        let c = gate.enter();
        assert_eq!(gate.waiting(), 3);
        assert!(gate.is_head(a));
        assert!(!gate.is_head(b));
        gate.leave();
        assert!(gate.is_head(b));
        assert!(!gate.is_head(c));
        gate.leave();
        gate.leave();
        assert_eq!(gate.waiting(), 0);
    }

    #[test]
    fn abandoning_the_head_unblocks_the_next_ticket() {
        let mut gate = TicketGate::default();
        let quota_refused = gate.enter();
        let patient = gate.enter();
        assert!(gate.is_head(quota_refused));
        // The head gives up (quota refusal / engine closed): the next
        // arrival becomes the head instead of starving.
        gate.leave();
        assert!(gate.is_head(patient));
        assert_eq!(gate.waiting(), 1);
    }
}
