//! Tenants: identity, admission quotas, weighted fair queuing, stats.
//!
//! The ROADMAP's "millions of users" story needs the engine to serve many
//! *clients*, not just many documents — and a shared engine without tenant
//! isolation hands the whole machine to whichever client submits fastest.
//! This module supplies the three isolation mechanisms:
//!
//! * **identity** — [`TenantId`], a `Copy` handle carried by every
//!   [`Submission`](super::Submission) (untagged work belongs to
//!   [`TenantId::DEFAULT`]);
//! * **admission quota** — an optional token bucket per tenant
//!   ([`QuotaConfig`]): a tenant may burst to `burst` admissions and then
//!   sustain `per_second`, and beyond that admission fails fast with
//!   [`SchedulerError::QuotaExceeded`] — the engine never buffers work the
//!   policy already refused;
//! * **weighted fair queuing** — the run queue is one FIFO *per tenant*,
//!   scheduled by stride scheduling: each dispatch advances the chosen
//!   tenant's virtual time (`pass`) by `STRIDE_ONE / weight`, and the
//!   tenant with the smallest pass dispatches next. A tenant with 10 000
//!   queued documents therefore advances its pass 10 000 strides while a
//!   1-document tenant advances one — the small tenant's document
//!   dispatches within a bounded number of slots of its arrival instead
//!   of behind the whole flood. Weights buy proportional throughput:
//!   weight 3 dispatches 3× as often as weight 1 while both are backlogged.
//!
//! A tenant (re)entering the ready set starts at
//! `max(own pass, global pass)`, so idling never banks credit: you cannot
//! go quiet for an hour and then monopolise the engine with a burst.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap, VecDeque};
use std::fmt;
use std::time::{Duration, Instant};

use crate::error::SchedulerError;

/// Identity of one engine client. A plain `Copy` handle — the engine
/// creates tenant state lazily on first sight, so any id is valid without
/// registration. Work submitted without an explicit tenant belongs to
/// [`TenantId::DEFAULT`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TenantId(u64);

impl TenantId {
    /// The tenant untagged submissions belong to.
    pub const DEFAULT: TenantId = TenantId(0);

    /// A tenant id from a raw integer (stable across engines).
    pub const fn new(id: u64) -> TenantId {
        TenantId(id)
    }

    /// The raw id.
    pub const fn as_u64(self) -> u64 {
        self.0
    }
}

impl fmt::Display for TenantId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "tenant#{}", self.0)
    }
}

/// Token-bucket admission quota: a tenant may burst to `burst` admissions
/// at once and sustain `per_second` admissions per second thereafter.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QuotaConfig {
    /// Bucket capacity: admissions available after a long quiet period.
    /// Clamped to at least 1 (a zero-burst bucket could never admit).
    pub burst: u32,
    /// Sustained admission rate, tokens per second. Zero means the bucket
    /// never refills: the tenant gets `burst` admissions, ever.
    pub per_second: f64,
}

impl QuotaConfig {
    /// A quota sustaining `per_second` with bursts up to `burst`.
    pub fn new(burst: u32, per_second: f64) -> QuotaConfig {
        QuotaConfig { burst, per_second }
    }
}

/// Per-tenant scheduling policy: fair-queuing weight plus optional quota.
#[derive(Debug, Clone, PartialEq)]
pub struct TenantPolicy {
    /// Relative throughput share while backlogged: a weight-3 tenant
    /// dispatches 3× as often as a weight-1 tenant. Zero is clamped to 1.
    pub weight: u32,
    /// Admission quota; `None` admits without rate limit.
    pub quota: Option<QuotaConfig>,
}

impl Default for TenantPolicy {
    fn default() -> TenantPolicy {
        TenantPolicy {
            weight: 1,
            quota: None,
        }
    }
}

impl TenantPolicy {
    /// A policy with the given weight and no quota.
    pub fn weighted(weight: u32) -> TenantPolicy {
        TenantPolicy {
            weight,
            quota: None,
        }
    }

    /// Sets the admission quota.
    pub fn with_quota(mut self, quota: QuotaConfig) -> TenantPolicy {
        self.quota = Some(quota);
        self
    }
}

/// Stride-scheduling quantum: a weight-`w` tenant's pass advances by
/// `STRIDE_ONE / w` per dispatched job.
const STRIDE_ONE: u64 = 1 << 20;

fn stride_of(weight: u32) -> u64 {
    (STRIDE_ONE / u64::from(weight.max(1))).max(1)
}

/// The classic leaky bucket, refilled lazily from elapsed wall time.
#[derive(Debug, Clone)]
struct TokenBucket {
    tokens: f64,
    config: QuotaConfig,
    last: Instant,
}

impl TokenBucket {
    fn new(config: QuotaConfig, now: Instant) -> TokenBucket {
        TokenBucket {
            tokens: f64::from(config.burst.max(1)),
            config,
            last: now,
        }
    }

    fn refill(&mut self, now: Instant) {
        // `checked_duration_since`: callers may pass an Instant captured
        // before another thread's later charge advanced `last`.
        let elapsed = now.checked_duration_since(self.last).unwrap_or_default();
        if elapsed.is_zero() {
            return;
        }
        let burst = f64::from(self.config.burst.max(1));
        self.tokens = (self.tokens + elapsed.as_secs_f64() * self.config.per_second).min(burst);
        self.last = now;
    }

    /// Milliseconds until `deficit` more tokens exist; `u64::MAX` when the
    /// bucket never refills.
    fn retry_after_ms(&self, deficit: f64) -> u64 {
        if self.config.per_second <= 0.0 {
            return u64::MAX;
        }
        (deficit / self.config.per_second * 1_000.0).ceil() as u64
    }
}

struct TenantState<T> {
    queue: VecDeque<T>,
    /// Stride-scheduling virtual time; smallest pass dispatches next.
    pass: u64,
    /// Sequence number of this tenant's live ready-heap entry; heap
    /// entries with any other sequence are stale and skipped.
    live_entry: Option<u64>,
    policy: TenantPolicy,
    bucket: Option<TokenBucket>,
    submitted: u64,
    quota_refusals: u64,
}

impl<T> TenantState<T> {
    fn new(policy: TenantPolicy, now: Instant) -> TenantState<T> {
        let bucket = policy.quota.map(|q| TokenBucket::new(q, now));
        TenantState {
            queue: VecDeque::new(),
            pass: 0,
            live_entry: None,
            policy,
            bucket,
            submitted: 0,
            quota_refusals: 0,
        }
    }
}

/// Admission-side counters for one tenant (the completion-side half lives
/// with the engine's outcome bookkeeping and is merged into
/// [`TenantStatsSnapshot`] by `Engine::tenant_stats`).
pub(super) struct TenantAdmissionRow {
    pub(super) tenant: TenantId,
    pub(super) weight: u32,
    pub(super) submitted: u64,
    pub(super) quota_refusals: u64,
}

/// The shared run queue: one FIFO per tenant, dispatched by stride
/// scheduling. Generic over the job type so the scheduling discipline is
/// testable without building documents.
pub(super) struct TenantRunQueue<T> {
    tenants: HashMap<TenantId, TenantState<T>>,
    /// Min-heap of `(pass, entry_seq, tenant)`; entries are lazily
    /// invalidated via `TenantState::live_entry`.
    ready: BinaryHeap<Reverse<(u64, u64, TenantId)>>,
    default_policy: TenantPolicy,
    /// Pass of the most recently dispatched tenant: the floor newly
    /// activated tenants start from, so idling banks no credit.
    global_pass: u64,
    entry_seq: u64,
    len: usize,
}

impl<T> TenantRunQueue<T> {
    pub(super) fn new(default_policy: TenantPolicy) -> TenantRunQueue<T> {
        TenantRunQueue {
            tenants: HashMap::new(),
            ready: BinaryHeap::new(),
            default_policy,
            global_pass: 0,
            entry_seq: 0,
            len: 0,
        }
    }

    /// Queued jobs across all tenants.
    pub(super) fn len(&self) -> usize {
        self.len
    }

    fn state_mut(&mut self, tenant: TenantId, now: Instant) -> &mut TenantState<T> {
        let default_policy = self.default_policy.clone();
        self.tenants
            .entry(tenant)
            .or_insert_with(|| TenantState::new(default_policy, now))
    }

    /// Replaces a tenant's policy. The quota bucket restarts full under
    /// the new configuration; the fair-queuing pass is preserved.
    pub(super) fn set_policy(&mut self, tenant: TenantId, policy: TenantPolicy, now: Instant) {
        let state = self.state_mut(tenant, now);
        state.bucket = policy.quota.map(|q| TokenBucket::new(q, now));
        state.policy = policy;
    }

    /// Takes `count` quota tokens from each listed tenant, all-or-nothing
    /// across the whole batch: either every tenant had the tokens and all
    /// are consumed, or nothing is consumed and the first exhausted tenant
    /// is reported via [`SchedulerError::QuotaExceeded`].
    pub(super) fn charge(
        &mut self,
        counts: &[(TenantId, usize)],
        now: Instant,
    ) -> Result<(), SchedulerError> {
        for &(tenant, count) in counts {
            let state = self.state_mut(tenant, now);
            let Some(bucket) = state.bucket.as_mut() else {
                continue;
            };
            bucket.refill(now);
            let needed = count as f64;
            if bucket.tokens + 1e-9 < needed {
                let retry_after_ms = bucket.retry_after_ms(needed - bucket.tokens);
                state.quota_refusals += count as u64;
                return Err(SchedulerError::QuotaExceeded {
                    tenant,
                    retry_after_ms,
                });
            }
        }
        for &(tenant, count) in counts {
            if let Some(bucket) = self
                .tenants
                .get_mut(&tenant)
                .and_then(|state| state.bucket.as_mut())
            {
                bucket.tokens -= count as f64;
            }
        }
        Ok(())
    }

    /// Enqueues one job for `tenant`, activating it in the ready heap if
    /// its queue was empty.
    pub(super) fn push(&mut self, tenant: TenantId, item: T, now: Instant) {
        self.entry_seq += 1;
        let seq = self.entry_seq;
        let global_pass = self.global_pass;
        let activation = {
            let state = self.state_mut(tenant, now);
            state.queue.push_back(item);
            state.submitted += 1;
            if state.live_entry.is_none() {
                state.pass = state.pass.max(global_pass);
                state.live_entry = Some(seq);
                Some(state.pass)
            } else {
                None
            }
        };
        if let Some(pass) = activation {
            self.ready.push(Reverse((pass, seq, tenant)));
        }
        self.len += 1;
    }

    /// Dispatches the next job in weighted-fair order: the ready tenant
    /// with the smallest pass (ties broken by activation order, so equal
    /// weights interleave FIFO).
    pub(super) fn pop_fair(&mut self) -> Option<T> {
        loop {
            let Reverse((pass, seq, tenant)) = self.ready.pop()?;
            let Some(state) = self.tenants.get_mut(&tenant) else {
                continue;
            };
            if state.live_entry != Some(seq) {
                continue; // stale entry, superseded by a later activation
            }
            let item = state
                .queue
                .pop_front()
                // repo_lint: allow(live_entry is cleared whenever the queue drains)
                .expect("a live ready entry implies a nonempty tenant queue");
            self.len -= 1;
            self.global_pass = pass;
            state.pass = pass.saturating_add(stride_of(state.policy.weight));
            if state.queue.is_empty() {
                state.live_entry = None;
            } else {
                self.entry_seq += 1;
                let next_seq = self.entry_seq;
                let state = self
                    .tenants
                    .get_mut(&tenant)
                    // repo_lint: allow(the same key was read a few lines up)
                    .expect("tenant state just touched");
                state.live_entry = Some(next_seq);
                self.ready.push(Reverse((state.pass, next_seq, tenant)));
            }
            return Some(item);
        }
    }

    /// Admission-side stats rows for every tenant ever seen.
    pub(super) fn admission_rows(&self) -> Vec<TenantAdmissionRow> {
        self.tenants
            .iter()
            .map(|(&tenant, state)| TenantAdmissionRow {
                tenant,
                weight: state.policy.weight.max(1),
                submitted: state.submitted,
                quota_refusals: state.quota_refusals,
            })
            .collect()
    }
}

/// Number of log2 latency buckets: bucket `i` counts completions whose
/// admission→completion latency was in `[2^i, 2^(i+1))` microseconds, so
/// the range spans 1 µs to ~17 minutes with constant memory.
const LATENCY_BUCKETS: usize = 30;

/// Completion-side accumulator: outcome counts plus a log2 latency
/// histogram (bounded memory, approximate upper-bound percentiles).
#[derive(Debug, Clone)]
pub(super) struct LatencyStats {
    completed: u64,
    ok: u64,
    sum_ms: f64,
    max_ms: f64,
    buckets: [u64; LATENCY_BUCKETS],
}

impl Default for LatencyStats {
    fn default() -> LatencyStats {
        LatencyStats {
            completed: 0,
            ok: 0,
            sum_ms: 0.0,
            max_ms: 0.0,
            buckets: [0; LATENCY_BUCKETS],
        }
    }
}

impl LatencyStats {
    /// Records one completed job's admission→completion latency.
    pub(super) fn record(&mut self, latency: Duration, is_ok: bool) {
        self.completed += 1;
        if is_ok {
            self.ok += 1;
        }
        let ms = latency.as_secs_f64() * 1_000.0;
        self.sum_ms += ms;
        self.max_ms = self.max_ms.max(ms);
        let micros = latency.as_micros().max(1);
        let bucket = (micros.ilog2() as usize).min(LATENCY_BUCKETS - 1);
        self.buckets[bucket] += 1;
    }

    fn mean_ms(&self) -> f64 {
        if self.completed == 0 {
            return 0.0;
        }
        self.sum_ms / self.completed as f64
    }

    /// Approximate p99: the upper bound of the smallest histogram bucket
    /// covering 99 % of completions, capped by the observed maximum.
    fn p99_ms(&self) -> f64 {
        if self.completed == 0 {
            return 0.0;
        }
        let target = (self.completed as f64 * 0.99).ceil() as u64;
        let mut seen = 0;
        for (bucket, &count) in self.buckets.iter().enumerate() {
            seen += count;
            if seen >= target {
                let upper_micros = 1u64 << (bucket as u32 + 1).min(63);
                return (upper_micros as f64 / 1_000.0).min(self.max_ms);
            }
        }
        self.max_ms
    }
}

/// Point-in-time per-tenant statistics, merged from the admission side
/// (submissions, quota refusals) and the completion side (outcomes,
/// latency). Returned by `Engine::tenant_stats`, sorted by tenant id.
#[derive(Debug, Clone, PartialEq)]
pub struct TenantStatsSnapshot {
    /// The tenant the row describes.
    pub tenant: TenantId,
    /// Effective fair-queuing weight.
    pub weight: u32,
    /// Documents admitted (quota refusals are *not* included).
    pub submitted: u64,
    /// Admissions refused by the tenant's token bucket.
    pub quota_refusals: u64,
    /// Outcomes produced (delivered or not).
    pub completed: u64,
    /// Completions that played to a report.
    pub ok: u64,
    /// Completions that ended in a scheduler error.
    pub failed: u64,
    /// Mean admission→completion latency, milliseconds.
    pub mean_latency_ms: f64,
    /// Approximate 99th-percentile latency (log2-histogram upper bound).
    pub p99_latency_ms: f64,
    /// Worst observed latency, milliseconds.
    pub max_latency_ms: f64,
}

impl TenantStatsSnapshot {
    pub(super) fn merge(row: TenantAdmissionRow, latency: Option<&LatencyStats>) -> Self {
        let stats = latency.cloned().unwrap_or_default();
        TenantStatsSnapshot {
            tenant: row.tenant,
            weight: row.weight,
            submitted: row.submitted,
            quota_refusals: row.quota_refusals,
            completed: stats.completed,
            ok: stats.ok,
            failed: stats.completed - stats.ok,
            mean_latency_ms: stats.mean_ms(),
            p99_latency_ms: stats.p99_ms(),
            max_latency_ms: stats.max_ms,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drain_order(queue: &mut TenantRunQueue<&'static str>) -> Vec<&'static str> {
        std::iter::from_fn(|| queue.pop_fair()).collect()
    }

    #[test]
    fn equal_weights_interleave_instead_of_draining_the_flood_first() {
        let now = Instant::now();
        let mut queue = TenantRunQueue::new(TenantPolicy::default());
        let flood = TenantId::new(1);
        let small = TenantId::new(2);
        for _ in 0..100 {
            queue.push(flood, "flood", now);
        }
        queue.push(small, "small", now);
        // The single-document tenant dispatches within a couple of slots,
        // not behind the 100-document backlog.
        let order = drain_order(&mut queue);
        let position = order.iter().position(|&j| j == "small").unwrap();
        assert!(position <= 2, "small tenant waited {position} slots");
        assert_eq!(order.len(), 101);
    }

    #[test]
    fn weights_buy_proportional_dispatch_share() {
        let now = Instant::now();
        let mut queue = TenantRunQueue::new(TenantPolicy::default());
        let heavy = TenantId::new(1);
        let light = TenantId::new(2);
        queue.set_policy(heavy, TenantPolicy::weighted(3), now);
        for _ in 0..90 {
            queue.push(heavy, "heavy", now);
            queue.push(light, "light", now);
        }
        // While both stay backlogged, the first 40 dispatches should split
        // roughly 3:1.
        let first: Vec<_> = (0..40).map(|_| queue.pop_fair().unwrap()).collect();
        let heavy_share = first.iter().filter(|&&j| j == "heavy").count();
        assert!(
            (28..=32).contains(&heavy_share),
            "weight-3 tenant got {heavy_share}/40 dispatch slots"
        );
    }

    #[test]
    fn idling_banks_no_credit() {
        let now = Instant::now();
        let mut queue = TenantRunQueue::new(TenantPolicy::default());
        let active = TenantId::new(1);
        let sleeper = TenantId::new(2);
        // The active tenant dispatches 1000 jobs while the sleeper idles.
        for _ in 0..1000 {
            queue.push(active, "active", now);
        }
        for _ in 0..1000 {
            queue.pop_fair().unwrap();
        }
        // When the sleeper finally shows up with a burst, it starts from
        // the global pass: the two tenants now alternate instead of the
        // sleeper draining its whole burst first.
        for _ in 0..10 {
            queue.push(active, "active", now);
            queue.push(sleeper, "sleeper", now);
        }
        let first_six: Vec<_> = (0..6).map(|_| queue.pop_fair().unwrap()).collect();
        assert!(
            first_six.iter().filter(|&&j| j == "sleeper").count() <= 4,
            "sleeper monopolised the queue after idling: {first_six:?}"
        );
    }

    #[test]
    fn charge_is_all_or_nothing_across_the_batch() {
        let now = Instant::now();
        let mut queue: TenantRunQueue<&str> = TenantRunQueue::new(TenantPolicy::default());
        let limited = TenantId::new(1);
        let free = TenantId::new(2);
        queue.set_policy(
            limited,
            TenantPolicy::default().with_quota(QuotaConfig::new(2, 0.0)),
            now,
        );
        // Batch needs 3 tokens from a 2-token bucket: refused, and the
        // unlimited tenant is not charged either (nothing to observe — but
        // the limited bucket keeps both its tokens).
        let err = queue
            .charge(&[(free, 5), (limited, 3)], now)
            .expect_err("over-quota batch admitted");
        assert!(matches!(
            err,
            SchedulerError::QuotaExceeded { tenant, retry_after_ms }
                if tenant == limited && retry_after_ms == u64::MAX
        ));
        // The 2 tokens survived the refusal: a batch that fits succeeds.
        queue.charge(&[(limited, 2)], now).expect("within quota");
        let err = queue.charge(&[(limited, 1)], now).expect_err("exhausted");
        assert!(matches!(err, SchedulerError::QuotaExceeded { .. }));
        let rows = queue.admission_rows();
        let row = rows.iter().find(|r| r.tenant == limited).unwrap();
        assert_eq!(row.quota_refusals, 4);
    }

    #[test]
    fn token_bucket_refills_from_elapsed_time() {
        let start = Instant::now();
        let mut bucket = TokenBucket::new(QuotaConfig::new(4, 10.0), start);
        bucket.tokens = 0.0;
        bucket.refill(start + Duration::from_millis(250));
        assert!((bucket.tokens - 2.5).abs() < 1e-9);
        // Refill saturates at the burst capacity.
        bucket.refill(start + Duration::from_secs(60));
        assert!((bucket.tokens - 4.0).abs() < 1e-9);
        // A stale `now` (earlier than `last`) is a no-op, not a panic.
        bucket.refill(start);
        assert!((bucket.tokens - 4.0).abs() < 1e-9);
        assert_eq!(bucket.retry_after_ms(5.0), 500);
    }

    #[test]
    fn latency_stats_percentiles_are_ordered_and_capped() {
        let mut stats = LatencyStats::default();
        for micros in [10u64, 20, 30, 40, 50, 60, 70, 80, 90, 5_000] {
            stats.record(Duration::from_micros(micros), true);
        }
        stats.record(Duration::from_micros(100), false);
        let snapshot = TenantStatsSnapshot::merge(
            TenantAdmissionRow {
                tenant: TenantId::DEFAULT,
                weight: 1,
                submitted: 11,
                quota_refusals: 0,
            },
            Some(&stats),
        );
        assert_eq!(snapshot.completed, 11);
        assert_eq!(snapshot.ok, 10);
        assert_eq!(snapshot.failed, 1);
        assert!(snapshot.mean_latency_ms > 0.0);
        assert!(snapshot.mean_latency_ms <= snapshot.p99_latency_ms);
        assert!(snapshot.p99_latency_ms <= snapshot.max_latency_ms + 1e-9);
        assert!((snapshot.max_latency_ms - 5.0).abs() < 0.5);
    }

    #[test]
    fn empty_queue_and_unknown_tenants_are_harmless() {
        let now = Instant::now();
        let mut queue: TenantRunQueue<&str> = TenantRunQueue::new(TenantPolicy::default());
        assert_eq!(queue.pop_fair(), None);
        assert_eq!(queue.len(), 0);
        // Charging a never-seen tenant with no default quota succeeds and
        // creates its stats row.
        queue.charge(&[(TenantId::new(9), 3)], now).unwrap();
        assert_eq!(queue.admission_rows().len(), 1);
    }
}
