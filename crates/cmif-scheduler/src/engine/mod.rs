//! The multi-document, multi-tenant scheduling engine.
//!
//! The one-shot entry points processed one document per call and rebuilt
//! all state each time — a dead end for a server that must multiplex many
//! cheap client sessions over shared worker state (Gray's *Locally Served
//! Network Computers* argument). [`Engine`] is that server side: it admits
//! N documents, schedules and plays them concurrently across a fixed pool
//! of worker threads, and returns one [`PlaybackReport`] per document.
//!
//! The run queue is hand-rolled on `std::sync::{Mutex, Condvar}` (no
//! registry access, so no tokio) and split into two planes so the shared
//! lock stops being the serialization point as workers multiply:
//!
//! * the **tenant plane** ([`tenant`]) — one mutex holding a FIFO per
//!   [`TenantId`], dispatched by stride scheduling so a noisy tenant with
//!   10 000 queued documents cannot delay a tenant submitting one, plus
//!   the token-bucket admission quotas and the FIFO admission ticket gate
//!   ([`ticket`]);
//! * the **worker plane** ([`queue`]) — one deque per worker. A worker
//!   runs out of its own shard, refills a small batch
//!   ([`EngineConfig::refill_batch`]) from the tenant plane when its shard
//!   runs dry, and steals from a sibling when the plane is empty too.
//!   Submitters and workers therefore contend on the shared lock once per
//!   *batch*, not once per job — and [`Engine::submit_batch`] amortises
//!   the submitter side the same way.
//!
//! A job can only fail *as itself*: a document whose constraints are
//! unsatisfiable is rejected with [`SchedulerError::ConstraintCycle`] as
//! its outcome, and a job that *panics* is contained by `catch_unwind`
//! into a [`SchedulerError::JobPanicked`] outcome. Either way the worker
//! keeps serving and `drain()`/`wait()` terminate.
//!
//! Admission is controlled on two axes:
//!
//! * **capacity** — with [`EngineConfig::max_backlog`] set, a full queue
//!   makes [`Engine::submit`] block until a worker frees capacity while
//!   [`Engine::try_submit`] refuses immediately with
//!   [`SchedulerError::Backpressure`]. Blocked submitters hold FIFO
//!   tickets: they are admitted in *arrival order*, however the condvar
//!   orders its wakeups.
//! * **policy** — a tenant with a [`QuotaConfig`] is refused with
//!   [`SchedulerError::QuotaExceeded`] (telling it when to retry) once its
//!   token bucket runs dry; quota refusals are never queued.
//!
//! [`Engine::close`] stops admission (further submits get
//! [`SchedulerError::EngineClosed`]) while the backlog already admitted
//! keeps draining.
//!
//! Determinism: each submission carries its own seeded [`JitterModel`], so
//! the report produced for a document is identical whether it played alone
//! or next to 63 concurrent siblings — and regardless of which worker
//! stole it.
//!
//! **Live edits.** Every admitted document owns an edit mailbox for its
//! whole engine lifetime. [`Engine::apply_edit`] routes a
//! [`cmif_core::edit::Edit`] into that mailbox from any thread; the owning
//! worker drains it before solving and again at every tick boundary,
//! repairing the constraint fixpoint incrementally
//! ([`crate::author::EditSession`]) and swapping the playing session onto
//! the new revision ([`crate::session::PlayerSession::swap_revision`]).
//! Each routed edit is accounted for exactly once in
//! [`DocOutcome::edits`] — applied at a boundary, refused by validation,
//! or rejected because it arrived after the document completed.

mod queue;
mod tenant;
mod ticket;

pub use queue::QueueStats;
pub use tenant::{QuotaConfig, TenantId, TenantPolicy, TenantStatsSnapshot};

use std::any::Any;
use std::collections::{HashMap, HashSet};
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::thread::{self, JoinHandle};
use std::time::Instant;

use cmif_core::descriptor::DescriptorResolver;
use cmif_core::diag::{Diagnostic, SeverityConfig};
use cmif_core::edit::{DocRevision, Edit};
use cmif_core::time::TimeMs;
use cmif_core::tree::Document;

use crate::author::EditSession;
use crate::environment::JitterModel;
use crate::error::{Result, SchedulerError};
use crate::graph::ConstraintGraph;
use crate::player::PlaybackReport;
use crate::session::PlayerSession;
use crate::solver::SolveResult;
use crate::types::ScheduleOptions;

use self::queue::WorkerShards;
use self::tenant::{LatencyStats, TenantRunQueue};
use self::ticket::TicketGate;

/// Test-only fault injection: runs at the start of every job with the
/// job's label. A panic raised here is deliberately indistinguishable from
/// a panic inside scheduling or playback — the panic-containment
/// regression tests use it to wedge or kill specific jobs on demand.
/// Production code has no reason to install one.
#[doc(hidden)]
#[derive(Clone)]
pub struct JobHook(Arc<dyn Fn(&str) + Send + Sync>);

impl JobHook {
    /// Wraps a closure as a job hook.
    pub fn new(hook: impl Fn(&str) + Send + Sync + 'static) -> JobHook {
        JobHook(Arc::new(hook))
    }

    fn fire(&self, label: &str) {
        (self.0)(label)
    }
}

impl fmt::Debug for JobHook {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("JobHook(..)")
    }
}

/// Admission-time static analysis, installed via
/// [`EngineConfig::lint_gate`].
///
/// The gate wraps a callback so the scheduler does not depend on the lint
/// crate that sits above it: `cmif-lint` provides the canonical constructor
/// (`cmif_lint::admission_gate`). The callback receives the document and an
/// optional per-submission [`SeverityConfig`] override
/// ([`LintPolicy::Configured`]) and returns every diagnostic it collected;
/// any deny-severity diagnostic refuses the submission with
/// [`SchedulerError::LintRejected`] **before** the plane lock is taken, a
/// quota token charged, or a worker costed.
#[derive(Clone)]
pub struct LintGate {
    check: Arc<GateCheck>,
}

/// The callback shape a [`LintGate`] wraps: document plus optional
/// per-submission severity override, out come the collected diagnostics.
type GateCheck = dyn Fn(&Document, Option<&SeverityConfig>) -> Vec<Diagnostic> + Send + Sync;

impl LintGate {
    /// Wraps a diagnostic-collecting callback as an admission gate.
    pub fn new(
        check: impl Fn(&Document, Option<&SeverityConfig>) -> Vec<Diagnostic> + Send + Sync + 'static,
    ) -> LintGate {
        LintGate {
            check: Arc::new(check),
        }
    }

    /// Runs the gate under the submission's policy. `Ok(())` admits;
    /// [`SchedulerError::LintRejected`] carries every collected diagnostic.
    pub fn inspect(&self, doc: &Document, policy: &LintPolicy) -> Result<()> {
        let config = match policy {
            LintPolicy::Skip => return Ok(()),
            LintPolicy::Default => None,
            LintPolicy::Configured(config) => Some(config),
        };
        let diagnostics = (self.check)(doc, config);
        if diagnostics.iter().any(Diagnostic::is_deny) {
            return Err(SchedulerError::LintRejected { diagnostics });
        }
        Ok(())
    }
}

impl fmt::Debug for LintGate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("LintGate(..)")
    }
}

/// How one [`Submission`] interacts with the engine's lint gate.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub enum LintPolicy {
    /// Run the gate with its own severity configuration.
    #[default]
    Default,
    /// Bypass the gate for this submission (pre-linted documents, e.g. the
    /// pipeline's, which already passed stage 2).
    Skip,
    /// Run the gate with this severity configuration instead of its own.
    Configured(SeverityConfig),
}

/// Configuration of an [`Engine`].
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Number of worker threads. Zero is clamped to one.
    pub workers: usize,
    /// Scheduling policy applied to every admitted document.
    pub options: ScheduleOptions,
    /// How many clock steps each worker drives a session through. Playback
    /// outcomes do not depend on this (the causal timeline is fixed at
    /// session creation); it only exercises the step-wise machinery.
    pub ticks_per_document: u32,
    /// Maximum number of admitted-but-unstarted documents (counting jobs
    /// parked in worker shards). `None` (the default) admits without bound
    /// — a fast producer can then grow the queue faster than the workers
    /// drain it. With `Some(k)`, a full queue makes [`Engine::submit`]
    /// block (FIFO, see [`Engine::waiting_submitters`]) until a worker
    /// takes a job, and [`Engine::try_submit`] return
    /// [`SchedulerError::Backpressure`] immediately. `Some(0)` is treated
    /// as `Some(1)`: jobs reach workers only through the queue, so a
    /// zero-slot queue would deadlock every blocking admission.
    pub max_backlog: Option<usize>,
    /// How many jobs a worker moves from the shared tenant plane into its
    /// own shard per refill — the batch size that amortises the shared
    /// lock. The first job runs immediately; the extras are parked where
    /// idle siblings can steal them. Zero is clamped to one. Larger
    /// batches mean fewer shared-lock acquisitions but a coarser
    /// interleaving of the weighted-fair dispatch order.
    pub refill_batch: usize,
    /// Policy applied to tenants that never got an explicit
    /// [`Engine::set_tenant_policy`]: by default weight 1, no quota.
    pub default_tenant_policy: TenantPolicy,
    /// Admission-time static analysis: when set, every submission is
    /// checked **before** it takes the plane lock or charges a quota
    /// token, and documents with deny-severity findings are refused with
    /// [`SchedulerError::LintRejected`]. `None` (the default) admits
    /// everything unchecked. See [`LintGate`] and [`Submission::lint`].
    pub lint_gate: Option<LintGate>,
    /// Test-only fault injection; see [`JobHook`]. Leave `None`.
    #[doc(hidden)]
    pub job_hook: Option<JobHook>,
}

impl Default for EngineConfig {
    fn default() -> EngineConfig {
        EngineConfig {
            workers: thread::available_parallelism()
                .map(|n| n.get().min(8))
                .unwrap_or(1),
            options: ScheduleOptions::default(),
            ticks_per_document: 8,
            max_backlog: None,
            refill_batch: 4,
            default_tenant_policy: TenantPolicy::default(),
            lint_gate: None,
            job_hook: None,
        }
    }
}

/// Identifier of one admitted document, in admission order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct DocId(pub(crate) u64);

impl std::fmt::Display for DocId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "doc#{}", self.0)
    }
}

/// A mailbox of live edits routed to one admitted document
/// ([`Engine::apply_edit`]), drained by the owning worker at tick
/// boundaries. A leaf lock: it may be taken while holding any engine lock,
/// and no other lock is ever taken while it is held.
type Mailbox = Arc<Mutex<Vec<Edit>>>;

/// The fate of one live edit routed through [`Engine::apply_edit`],
/// reported in [`DocOutcome::edits`] in the order the owning worker
/// processed them.
#[derive(Debug, Clone)]
pub struct EditOutcome {
    /// The edit as routed.
    pub edit: Edit,
    /// The presentation time (tick boundary) at which the worker processed
    /// the edit; [`TimeMs::ZERO`] when it was folded into the document
    /// before playback began — or never reached a running session at all.
    pub at: TimeMs,
    /// `Ok(())` when the revision applied and the playing session swapped
    /// onto it; otherwise the validation or repair error that refused it
    /// (the document keeps playing its previous revision), or
    /// [`SchedulerError::EditRejected`] when the edit arrived too late to
    /// be applied.
    pub result: Result<()>,
}

/// The engine's verdict on one admitted document.
#[derive(Debug, Clone)]
pub struct DocOutcome {
    /// The admission ticket the outcome belongs to.
    pub id: DocId,
    /// The tenant the document was submitted under.
    pub tenant: TenantId,
    /// The label given at submission.
    pub label: String,
    /// The playback report, or the scheduler error that made the engine
    /// reject the document — including [`SchedulerError::JobPanicked`]
    /// when the job panicked (its worker survives either way).
    pub result: Result<PlaybackReport>,
    /// One entry per live edit routed to this document
    /// ([`Engine::apply_edit`]), in processing order. Empty for documents
    /// never edited.
    pub edits: Vec<EditOutcome>,
}

impl DocOutcome {
    /// True when the document played to completion.
    pub fn is_ok(&self) -> bool {
        self.result.is_ok()
    }
}

/// One admission request: a document plus its playback context.
///
/// The convenience entry points ([`Engine::submit`], `submit_labeled`,
/// `try_submit`) build one internally; build it yourself when you need the
/// full form — a label *and* a non-blocking admission, a descriptor
/// resolver other than the document's own catalog (the pipeline submits
/// against a snapshot of its block store so materialised degradations are
/// what the sessions see), or a [`Submission::tenant`] so the engine's
/// fair scheduler and quotas know whose work this is.
#[derive(Clone)]
pub struct Submission {
    doc: Arc<Document>,
    jitter: JitterModel,
    tenant: TenantId,
    label: Option<String>,
    resolver: Option<Arc<dyn DescriptorResolver + Send + Sync>>,
    solve: Option<Arc<SolveResult>>,
    lint: LintPolicy,
}

impl Submission {
    /// A submission resolving descriptors from the document's own catalog,
    /// owned by [`TenantId::DEFAULT`].
    pub fn new(doc: impl Into<Arc<Document>>, jitter: JitterModel) -> Submission {
        Submission {
            doc: doc.into(),
            jitter,
            tenant: TenantId::DEFAULT,
            label: None,
            resolver: None,
            solve: None,
            lint: LintPolicy::default(),
        }
    }

    /// Sets the label used in reports and logs (default: the ticket id).
    pub fn labeled(mut self, label: impl Into<String>) -> Submission {
        self.label = Some(label.into());
        self
    }

    /// Attributes the document to `tenant`: its dispatch order follows the
    /// tenant's fair-queuing weight, its admission counts against the
    /// tenant's quota, and its outcome lands in the tenant's stats row.
    pub fn tenant(mut self, tenant: TenantId) -> Submission {
        self.tenant = tenant;
        self
    }

    /// Resolves descriptors through `resolver` instead of the document's
    /// catalog.
    pub fn resolver(mut self, resolver: Arc<dyn DescriptorResolver + Send + Sync>) -> Submission {
        self.resolver = Some(resolver);
        self
    }

    /// Supplies a precomputed solve result, so the job skips its own
    /// derive + solve pass and goes straight to playback — the pipeline
    /// submits the stage-5a result this way, and N submissions of one
    /// solved document share the `Arc`. The result must belong to this
    /// document: playback over a mismatched solve fails with the usual
    /// typed `UnscheduledNode` outcome, never a panic.
    pub fn solved(mut self, solve: impl Into<Arc<SolveResult>>) -> Submission {
        self.solve = Some(solve.into());
        self
    }

    /// Sets how this submission interacts with the engine's lint gate
    /// (when [`EngineConfig::lint_gate`] is set): bypass it, or override
    /// its severity configuration. The default runs the gate as
    /// configured. Without a gate the policy is ignored.
    pub fn lint(mut self, policy: LintPolicy) -> Submission {
        self.lint = policy;
        self
    }
}

impl fmt::Debug for Submission {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Submission")
            .field("doc", &Arc::as_ptr(&self.doc))
            .field("jitter", &self.jitter)
            .field("tenant", &self.tenant)
            .field("label", &self.label)
            .field(
                "resolver",
                &self.resolver.as_ref().map(|_| "<custom resolver>"),
            )
            .field("solve", &self.solve.as_ref().map(|_| "<precomputed>"))
            .field("lint", &self.lint)
            .finish()
    }
}

struct Job {
    id: DocId,
    tenant: TenantId,
    label: String,
    doc: Arc<Document>,
    jitter: JitterModel,
    resolver: Option<Arc<dyn DescriptorResolver + Send + Sync>>,
    solve: Option<Arc<SolveResult>>,
    /// The document's edit mailbox; the registry in [`Shared::mailboxes`]
    /// holds the other reference until the job completes.
    edits: Mailbox,
    admitted_at: Instant,
}

/// The admission side of the engine: everything a submitter touches, under
/// one mutex. Workers touch it once per refill batch, not once per job.
struct Plane {
    run: TenantRunQueue<Job>,
    gate: TicketGate,
    next_id: u64,
    /// Admission is closed (`close()`); the backlog still drains.
    closed: bool,
    /// Workers exit once the queue is empty (`shutdown()`/drop).
    shutdown: bool,
}

/// The delivery side: finished outcomes and who already collected what.
struct Outcomes {
    finished: Vec<DocOutcome>,
    /// Every id below this has had its outcome handed out by
    /// `wait`/`drain`.
    delivered_floor: u64,
    /// Out-of-order deliveries at or above the floor. Pruned as the floor
    /// advances, so a long-lived engine's delivery bookkeeping stays
    /// proportional to the out-of-order window — never to every document
    /// it ever played.
    delivered: HashSet<u64>,
    /// Completion-side per-tenant stats (admission→completion latency and
    /// outcome counts); the admission-side half lives in the plane.
    latency: HashMap<TenantId, LatencyStats>,
}

impl Outcomes {
    fn mark_delivered(&mut self, id: u64) {
        if id == self.delivered_floor {
            self.delivered_floor += 1;
            while self.delivered.remove(&self.delivered_floor) {
                self.delivered_floor += 1;
            }
        } else {
            self.delivered.insert(id);
        }
    }

    fn is_delivered(&self, id: u64) -> bool {
        id < self.delivered_floor || self.delivered.contains(&id)
    }
}

/// Lock order (a thread may take locks only downward in this list, and at
/// most one shard lock at a time):
///
/// 1. `outcomes` (drain's completion predicate peeks at the plane);
/// 2. `plane` (refill parks shard extras under it, so sleeping workers —
///    who decide to sleep under the plane lock — cannot miss parked work);
/// 3. one shard mutex inside `shards`.
///
/// `in_flight` counts jobs popped from any queue but not yet completed. It
/// is incremented *before* the pop becomes visible in any queue length and
/// decremented under the `outcomes` lock, both `SeqCst` — so a `drain()`
/// that holds `outcomes` and reads every queue empty and `in_flight == 0`
/// has proof that no job is in transit between the two.
struct Shared {
    plane: Mutex<Plane>,
    outcomes: Mutex<Outcomes>,
    /// Edit mailboxes of every admitted-but-unfinished document, keyed by
    /// raw [`DocId`]. Registered under the plane lock at admission (so a
    /// mailbox exists before its job is visible to any worker), removed by
    /// `run_and_complete` before the outcome publishes. A leaf lock — see
    /// [`Mailbox`].
    mailboxes: Mutex<HashMap<u64, Mailbox>>,
    shards: WorkerShards<Job>,
    in_flight: AtomicUsize,
    /// Signalled when a job reaches the tenant plane, when refill extras
    /// are parked, or when shutdown begins (workers wait, with `plane`).
    work: Condvar,
    /// Signalled when a job completes (waiters wait, with `outcomes`).
    done: Condvar,
    /// Signalled when capacity frees on a bounded queue, when the ticket
    /// head advances, and on close/shutdown (blocked submitters wait,
    /// with `plane`).
    capacity: Condvar,
    config: EngineConfig,
}

impl Shared {
    fn lock_plane(&self) -> MutexGuard<'_, Plane> {
        self.plane.lock().unwrap_or_else(PoisonError::into_inner)
    }

    fn lock_outcomes(&self) -> MutexGuard<'_, Outcomes> {
        self.outcomes.lock().unwrap_or_else(PoisonError::into_inner)
    }

    fn lock_mailboxes(&self) -> MutexGuard<'_, HashMap<u64, Mailbox>> {
        self.mailboxes
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
    }

    /// Admitted-but-unstarted documents: tenant plane plus parked shards.
    /// This is what `max_backlog` bounds.
    fn unstarted(&self, plane: &Plane) -> usize {
        plane.run.len() + self.shards.parked()
    }

    /// The clamped bound, if any.
    fn backlog_limit(&self) -> Option<usize> {
        self.config.max_backlog.map(|limit| limit.max(1))
    }

    /// Wakes blocked submitters after a shard pop freed backlog capacity
    /// *outside* the plane lock. Taking and releasing the plane lock first
    /// closes the race against a submitter that already read the old queue
    /// lengths but has not yet parked on the condvar (the condvar releases
    /// the plane mutex atomically, so after this lock round-trip the
    /// notify must land).
    fn poke_capacity(&self) {
        if self.config.max_backlog.is_none() {
            return;
        }
        drop(self.lock_plane());
        self.capacity.notify_all();
    }
}

/// A pool of worker threads playing many documents concurrently, fairly
/// across tenants.
///
/// Each outcome is delivered exactly once — by the `wait(id)` or `drain()`
/// call that first sees it. Memory is bounded by the admission bound
/// ([`EngineConfig::max_backlog`]) *plus* the finished-but-undelivered
/// outcomes, which accumulate until a `wait`/`drain` collects them —
/// [`Engine::undelivered`] counts that half, [`Engine::backlog`] the
/// other. A long-lived engine therefore stays bounded exactly when its
/// producers keep collecting outcomes (delivery bookkeeping is a watermark
/// plus the out-of-order window, not a record of every document ever
/// played). Asking again for an already-delivered outcome panics with a
/// clear message rather than blocking forever.
///
/// ```
/// use std::sync::Arc;
///
/// use cmif_core::prelude::*;
/// use cmif_scheduler::{Engine, EngineConfig, JitterModel};
///
/// # fn main() -> std::result::Result<(), cmif_scheduler::SchedulerError> {
/// let doc = Arc::new(
///     DocumentBuilder::new("spot")
///         .channel("audio", MediaKind::Audio)
///         .descriptor(
///             DataDescriptor::new("jingle", MediaKind::Audio, "pcm8")
///                 .with_duration(TimeMs::from_secs(3)),
///         )
///         .root_seq(|root| {
///             root.ext("jingle", "audio", "jingle");
///         })
///         .build()?,
/// );
///
/// let engine = Engine::new(EngineConfig { workers: 2, ..EngineConfig::default() });
/// // Submitting an `Arc<Document>` clones a pointer, never the tree.
/// let a = engine.submit(Arc::clone(&doc), JitterModel::ideal())?;
/// let b = engine.submit(Arc::clone(&doc), JitterModel::uniform(100, 7))?;
/// let outcome = engine.wait(a);
/// assert!(outcome.is_ok());
/// assert!(engine.wait(b).is_ok());
/// // No new work after close(), but anything admitted still drains:
/// engine.close();
/// assert!(engine.try_submit(doc, JitterModel::ideal()).is_err());
/// # Ok(()) }
/// ```
pub struct Engine {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
}

impl Engine {
    /// Starts an engine with the given configuration.
    pub fn new(config: EngineConfig) -> Engine {
        let worker_count = config.workers.max(1);
        let default_policy = config.default_tenant_policy.clone();
        let shared = Arc::new(Shared {
            plane: Mutex::new(Plane {
                run: TenantRunQueue::new(default_policy),
                gate: TicketGate::default(),
                next_id: 0,
                closed: false,
                shutdown: false,
            }),
            outcomes: Mutex::new(Outcomes {
                finished: Vec::new(),
                delivered_floor: 0,
                delivered: HashSet::new(),
                latency: HashMap::new(),
            }),
            mailboxes: Mutex::new(HashMap::new()),
            shards: WorkerShards::new(worker_count),
            in_flight: AtomicUsize::new(0),
            work: Condvar::new(),
            done: Condvar::new(),
            capacity: Condvar::new(),
            config,
        });
        let workers = (0..worker_count)
            .map(|index| {
                let shared = Arc::clone(&shared);
                thread::Builder::new()
                    .name(format!("cmif-engine-{index}"))
                    .spawn(move || worker_loop(&shared, index))
                    .unwrap_or_else(|e| panic!("spawning engine worker {index} failed: {e}"))
            })
            .collect();
        Engine { shared, workers }
    }

    /// Starts an engine with `workers` worker threads and default policy.
    pub fn with_workers(workers: usize) -> Engine {
        Engine::new(EngineConfig {
            workers,
            ..EngineConfig::default()
        })
    }

    /// Number of worker threads.
    pub fn worker_count(&self) -> usize {
        self.workers.len()
    }

    /// Admits a document for scheduling and playback under the given
    /// (seeded, hence deterministic) jitter model.
    ///
    /// The document travels as an [`Arc`]: submitting the same tree 64
    /// times clones a pointer 64 times, never the tree. An owned
    /// [`Document`] is accepted too (`impl Into<Arc<Document>>`) and is
    /// moved — not copied — into its ref-counted box.
    ///
    /// With a bounded queue ([`EngineConfig::max_backlog`]) and the queue
    /// full, this *blocks* until a worker frees a slot; submitters blocked
    /// this way are admitted in arrival order. Errors with
    /// [`SchedulerError::EngineClosed`] if the engine was closed or shut
    /// down — including while blocked waiting for capacity.
    pub fn submit(&self, doc: impl Into<Arc<Document>>, jitter: JitterModel) -> Result<DocId> {
        self.admit(Submission::new(doc, jitter))
    }

    /// Admits a document under a caller-chosen label (for reports and logs).
    /// Blocks and errors exactly like [`Engine::submit`].
    pub fn submit_labeled(
        &self,
        label: impl Into<String>,
        doc: impl Into<Arc<Document>>,
        jitter: JitterModel,
    ) -> Result<DocId> {
        self.admit(Submission::new(doc, jitter).labeled(label))
    }

    /// Non-blocking admission: like [`Engine::submit`], but a full bounded
    /// queue — or one with blocked submitters already queued ahead, whose
    /// FIFO turn must not be stolen — returns
    /// [`SchedulerError::Backpressure`] immediately instead of blocking
    /// (and a closed engine [`SchedulerError::EngineClosed`]).
    pub fn try_submit(&self, doc: impl Into<Arc<Document>>, jitter: JitterModel) -> Result<DocId> {
        self.try_admit(Submission::new(doc, jitter))
    }

    /// Admits a full [`Submission`], blocking while a bounded queue is
    /// full. The blocking twin of [`Engine::try_admit`].
    pub fn admit(&self, submission: Submission) -> Result<DocId> {
        self.enqueue_one(submission, true)
    }

    /// Admits a full [`Submission`] without blocking: a full bounded queue
    /// is [`SchedulerError::Backpressure`], a closed engine
    /// [`SchedulerError::EngineClosed`], an exhausted tenant quota
    /// [`SchedulerError::QuotaExceeded`].
    pub fn try_admit(&self, submission: Submission) -> Result<DocId> {
        self.enqueue_one(submission, false)
    }

    /// Admits N submissions under **one** queue transaction: one lock
    /// acquisition, one quota charge (all-or-nothing per tenant — either
    /// every document is admitted or none is and no token is consumed),
    /// and contiguous [`DocId`]s in the order given.
    ///
    /// On a bounded queue the batch blocks (FIFO with every other blocked
    /// submitter) until the *whole* batch fits, so a batch is never
    /// half-admitted; a batch larger than `max_backlog` can never fit and
    /// is refused immediately with [`SchedulerError::Backpressure`].
    pub fn submit_batch(
        &self,
        submissions: impl IntoIterator<Item = Submission>,
    ) -> Result<Vec<DocId>> {
        self.enqueue_batch(submissions.into_iter().collect())
    }

    /// Sets the scheduling policy (fair-queuing weight, admission quota)
    /// for one tenant. Takes effect for subsequent dispatches and
    /// admissions; the tenant's quota bucket restarts full under the new
    /// configuration. Tenants never configured use
    /// [`EngineConfig::default_tenant_policy`].
    pub fn set_tenant_policy(&self, tenant: TenantId, policy: TenantPolicy) {
        let mut plane = self.shared.lock_plane();
        plane.run.set_policy(tenant, policy, Instant::now());
    }

    /// Per-tenant statistics — admissions, quota refusals, outcomes and
    /// admission→completion latency (mean / approximate p99 / max) — for
    /// every tenant the engine has seen, sorted by tenant id. The two
    /// halves (admission side, completion side) are snapshotted one lock
    /// at a time, so a row can transiently show a submission whose
    /// completion is not counted yet — never the reverse.
    pub fn tenant_stats(&self) -> Vec<TenantStatsSnapshot> {
        let rows = {
            let plane = self.shared.lock_plane();
            plane.run.admission_rows()
        };
        let outcomes = self.shared.lock_outcomes();
        let mut stats: Vec<TenantStatsSnapshot> = rows
            .into_iter()
            .map(|row| {
                let latency = outcomes.latency.get(&row.tenant);
                TenantStatsSnapshot::merge(row, latency)
            })
            .collect();
        stats.sort_by_key(|row| row.tenant);
        stats
    }

    /// How jobs have reached the workers so far: own-shard pops, direct
    /// plane pops, refill transactions, steals. The steal ratio is the
    /// load-imbalance indicator the `ext_engine` bench banners.
    pub fn queue_stats(&self) -> QueueStats {
        self.shared.shards.stats()
    }

    /// Routes a live edit to an admitted document's mailbox. The owning
    /// worker drains the mailbox before solving and at every tick
    /// boundary: it applies the edit to the document's revision chain,
    /// repairs the constraint fixpoint incrementally, and swaps the
    /// playing session onto the new revision without rewriting any event
    /// already delivered.
    ///
    /// `Ok(())` means *routed*, not *applied* — the per-edit verdict
    /// arrives in [`DocOutcome::edits`] when the document's outcome is
    /// collected. Errors with [`SchedulerError::EditRejected`] when the id
    /// was never admitted here or the document already completed.
    pub fn apply_edit(&self, doc: DocId, edit: Edit) -> Result<()> {
        {
            let plane = self.shared.lock_plane();
            if doc.0 >= plane.next_id {
                return Err(SchedulerError::EditRejected {
                    doc,
                    reason: "unknown document",
                });
            }
        }
        let mailboxes = self.shared.lock_mailboxes();
        match mailboxes.get(&doc.0) {
            Some(mailbox) => {
                mailbox
                    .lock()
                    .unwrap_or_else(PoisonError::into_inner)
                    .push(edit);
                Ok(())
            }
            None => Err(SchedulerError::EditRejected {
                doc,
                reason: "document already completed",
            }),
        }
    }

    /// Number of submitters currently blocked on a full bounded queue
    /// (holding FIFO admission tickets). Observability for tests and
    /// monitoring; racy by nature.
    pub fn waiting_submitters(&self) -> usize {
        let plane = self.shared.lock_plane();
        plane.gate.waiting() as usize
    }

    fn enqueue_one(&self, submission: Submission, block: bool) -> Result<DocId> {
        let shared = &self.shared;
        // Lint before anything is locked or charged: a refused document
        // costs neither a quota token nor a queue slot, and concurrent
        // submitters are not serialized behind the analysis.
        if let Some(gate) = &shared.config.lint_gate {
            gate.inspect(&submission.doc, &submission.lint)?;
        }
        let limit = shared.backlog_limit();
        let mut plane = shared.lock_plane();
        if plane.closed || plane.shutdown {
            return Err(SchedulerError::EngineClosed);
        }
        // Fast path: nobody queued ahead and capacity free. `gate.waiting()`
        // must be empty even when capacity is free — jumping ahead of a
        // blocked ticket would reintroduce the starvation the gate exists
        // to prevent.
        let fast = plane.gate.waiting() == 0
            && limit.map_or(true, |limit| shared.unstarted(&plane) < limit);
        if !fast {
            if !block {
                return Err(SchedulerError::Backpressure {
                    backlog: shared.unstarted(&plane) + shared.in_flight.load(Ordering::SeqCst),
                });
            }
            let ticket = plane.gate.enter();
            loop {
                if plane.closed || plane.shutdown {
                    // Abandoning mid-queue only happens when *everyone* is
                    // abandoning (the engine closed), so the bakery head
                    // can advance unconditionally.
                    plane.gate.leave();
                    drop(plane);
                    shared.capacity.notify_all();
                    return Err(SchedulerError::EngineClosed);
                }
                if plane.gate.is_head(ticket)
                    && limit.map_or(true, |limit| shared.unstarted(&plane) < limit)
                {
                    break;
                }
                plane = shared
                    .capacity
                    .wait(plane)
                    .unwrap_or_else(PoisonError::into_inner);
            }
        }
        // Quota is charged at the admission moment — *after* the capacity
        // wait, so a refusal for capacity (Backpressure) or a long block
        // never burns the tenant's tokens.
        if let Err(refusal) = plane.run.charge(&[(submission.tenant, 1)], Instant::now()) {
            if !fast {
                plane.gate.leave();
            }
            drop(plane);
            shared.capacity.notify_all();
            return Err(refusal);
        }
        let id = admit_locked(shared, &mut plane, submission);
        if !fast {
            plane.gate.leave();
        }
        drop(plane);
        if limit.is_some() {
            // Let the next ticket observe the advanced head.
            shared.capacity.notify_all();
        }
        shared.work.notify_one();
        Ok(id)
    }

    fn enqueue_batch(&self, submissions: Vec<Submission>) -> Result<Vec<DocId>> {
        if submissions.is_empty() {
            return Ok(Vec::new());
        }
        let shared = &self.shared;
        // Lint the whole batch up front, before the lock: consistent with
        // the all-or-nothing quota charge below, one deny-level document
        // refuses the batch and nothing is admitted or charged.
        if let Some(gate) = &shared.config.lint_gate {
            for submission in &submissions {
                gate.inspect(&submission.doc, &submission.lint)?;
            }
        }
        let need = submissions.len();
        let limit = shared.backlog_limit();
        let mut counts: Vec<(TenantId, usize)> = Vec::new();
        for submission in &submissions {
            match counts.iter_mut().find(|(t, _)| *t == submission.tenant) {
                Some((_, n)) => *n += 1,
                None => counts.push((submission.tenant, 1)),
            }
        }

        let mut plane = shared.lock_plane();
        if plane.closed || plane.shutdown {
            return Err(SchedulerError::EngineClosed);
        }
        if limit.is_some_and(|limit| need > limit) {
            // Could never fit in one transaction, no matter how long we wait.
            return Err(SchedulerError::Backpressure {
                backlog: shared.unstarted(&plane) + shared.in_flight.load(Ordering::SeqCst),
            });
        }
        // All-or-nothing quota, charged up front: the batch either owns its
        // tokens through the capacity wait or fails now without consuming
        // any.
        plane.run.charge(&counts, Instant::now())?;
        let mut ticket = None;
        loop {
            if plane.closed || plane.shutdown {
                if ticket.is_some() {
                    plane.gate.leave();
                }
                drop(plane);
                shared.capacity.notify_all();
                return Err(SchedulerError::EngineClosed);
            }
            let fits = limit.map_or(true, |limit| shared.unstarted(&plane) + need <= limit);
            let may_admit = match ticket {
                None => plane.gate.waiting() == 0,
                Some(ticket) => plane.gate.is_head(ticket),
            };
            if may_admit && fits {
                break;
            }
            if ticket.is_none() {
                ticket = Some(plane.gate.enter());
            }
            plane = shared
                .capacity
                .wait(plane)
                .unwrap_or_else(PoisonError::into_inner);
        }
        let ids = submissions
            .into_iter()
            .map(|submission| admit_locked(shared, &mut plane, submission))
            .collect();
        if ticket.is_some() {
            plane.gate.leave();
        }
        drop(plane);
        if limit.is_some() {
            shared.capacity.notify_all();
        }
        shared.work.notify_all();
        Ok(ids)
    }

    /// Blocks until the given document has finished (or been rejected) and
    /// returns its outcome.
    ///
    /// The outcome is delivered exactly once. Panics if the id was never
    /// issued by this engine, or if its outcome was already taken by an
    /// earlier `wait(id)` or [`Engine::drain`] — a clear error instead of
    /// the silent permanent block that re-waiting would otherwise be.
    pub fn wait(&self, id: DocId) -> DocOutcome {
        {
            let plane = self.shared.lock_plane();
            assert!(id.0 < plane.next_id, "{id} was never admitted here");
        }
        let mut outcomes = self.shared.lock_outcomes();
        loop {
            if let Some(pos) = outcomes.finished.iter().position(|o| o.id == id) {
                outcomes.mark_delivered(id.0);
                return outcomes.finished.swap_remove(pos);
            }
            assert!(
                !outcomes.is_delivered(id.0),
                "the outcome of {id} was already delivered by a previous wait() or drain()"
            );
            outcomes = self
                .shared
                .done
                .wait(outcomes)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// Blocks until every admitted document has finished and returns the
    /// not-yet-delivered outcomes in admission order (outcomes already
    /// taken by `wait(id)` are not repeated).
    ///
    /// "Every admitted" is a snapshot: producers admitting concurrently
    /// with a `drain` may land their documents after it returned.
    pub fn drain(&self) -> Vec<DocOutcome> {
        let mut outcomes = self.shared.lock_outcomes();
        loop {
            // Holding `outcomes` freezes both completion (workers record
            // outcomes under it) and `in_flight` decrements; `in_flight`
            // is incremented before any queue length visibly drops. So
            // "all queues empty and nothing in flight", observed in this
            // order, proves no job is anywhere.
            let unstarted = {
                let plane = self.shared.lock_plane();
                self.shared.unstarted(&plane)
            };
            if unstarted == 0 && self.shared.in_flight.load(Ordering::SeqCst) == 0 {
                break;
            }
            outcomes = self
                .shared
                .done
                .wait(outcomes)
                .unwrap_or_else(PoisonError::into_inner);
        }
        let mut finished = std::mem::take(&mut outcomes.finished);
        finished.sort_by_key(|o| o.id);
        // Ascending marks let the delivered floor swallow each id as it
        // comes — after a full drain the out-of-order set is empty.
        for outcome in &finished {
            outcomes.mark_delivered(outcome.id.0);
        }
        finished
    }

    /// Number of documents admitted but not yet finished (queued — in the
    /// tenant plane or parked in a worker shard — plus in flight).
    /// Finished-but-undelivered outcomes are *not* counted here — see
    /// [`Engine::undelivered`].
    pub fn backlog(&self) -> usize {
        let plane = self.shared.lock_plane();
        self.shared.unstarted(&plane) + self.shared.in_flight.load(Ordering::SeqCst)
    }

    /// Number of finished outcomes no `wait`/`drain` has collected yet.
    /// This is the half of the engine's memory [`Engine::backlog`] does
    /// not cover: it grows without bound if producers never collect.
    pub fn undelivered(&self) -> usize {
        self.shared.lock_outcomes().finished.len()
    }

    /// (delivered watermark, parked out-of-order deliveries) — the
    /// boundedness regression test reads these.
    #[cfg(test)]
    fn delivery_bookkeeping(&self) -> (u64, usize) {
        let outcomes = self.shared.lock_outcomes();
        (outcomes.delivered_floor, outcomes.delivered.len())
    }

    /// Stops admission: every later `submit`/`try_submit` (and any
    /// admission currently blocked on a full queue) gets
    /// [`SchedulerError::EngineClosed`]. The backlog already admitted
    /// keeps draining, and `wait`/`drain` keep delivering — the graceful
    /// half of [`Engine::shutdown`]'s "no new work, then stop". Idempotent.
    pub fn close(&self) {
        {
            let mut plane = self.shared.lock_plane();
            plane.closed = true;
        }
        // Submitters blocked on capacity must observe the closure.
        self.shared.capacity.notify_all();
    }

    /// True once [`Engine::close`] (or shutdown) stopped admission.
    pub fn is_closed(&self) -> bool {
        let plane = self.shared.lock_plane();
        plane.closed || plane.shutdown
    }

    /// Stops the workers after the queue drains and joins them.
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    fn stop_and_join(&mut self) {
        {
            let mut plane = self.shared.lock_plane();
            plane.shutdown = true;
        }
        self.shared.work.notify_all();
        // Admissions blocked on a full queue must fail, not wait forever
        // for workers that are about to exit.
        self.shared.capacity.notify_all();
        for worker in self.workers.drain(..) {
            // Worker threads contain job panics themselves; a panic in the
            // loop machinery would abort if propagated out of drop, so
            // swallow it.
            let _ = worker.join();
        }
    }
}

impl Drop for Engine {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

/// Allocates the next id, registers the document's edit mailbox, and
/// enqueues the job on the tenant plane. Caller holds the plane lock and
/// has already charged the quota — registering under that lock guarantees
/// the mailbox exists before any worker can see (let alone complete) the
/// job.
fn admit_locked(shared: &Shared, plane: &mut Plane, submission: Submission) -> DocId {
    let id = DocId(plane.next_id);
    plane.next_id += 1;
    let mailbox: Mailbox = Arc::new(Mutex::new(Vec::new()));
    shared.lock_mailboxes().insert(id.0, Arc::clone(&mailbox));
    let admitted_at = Instant::now();
    let tenant = submission.tenant;
    let job = Job {
        id,
        tenant,
        label: submission.label.unwrap_or_else(|| id.to_string()),
        doc: submission.doc,
        jitter: submission.jitter,
        resolver: submission.resolver,
        solve: submission.solve,
        edits: mailbox,
        admitted_at,
    };
    plane.run.push(tenant, job, admitted_at);
    id
}

/// Renders a caught panic payload (the usual `&str`/`String` cases).
fn panic_message(payload: Box<dyn Any + Send>) -> String {
    match payload.downcast::<String>() {
        Ok(message) => *message,
        Err(payload) => match payload.downcast::<&'static str>() {
            Ok(message) => (*message).to_string(),
            Err(_) => "non-string panic payload".to_string(),
        },
    }
}

/// What the shared-plane check told an out-of-work worker to do next.
enum Next {
    /// Run this refilled job (`true`: extras were parked, wake a sibling).
    Run(Job, bool),
    /// The plane is empty but some shard is not: try stealing.
    Steal,
    /// Shutdown with nothing left anywhere.
    Exit,
}

fn worker_loop(shared: &Shared, me: usize) {
    loop {
        // 1. Own shard first: the contention-free path.
        if let Some(job) = shared.shards.pop_own(me, &shared.in_flight) {
            // The pop freed one bounded-queue slot (parked jobs count
            // against `max_backlog`).
            shared.poke_capacity();
            run_and_complete(shared, job);
            continue;
        }
        // 2. Refill a batch from the tenant plane, or find out why not.
        let next = {
            let mut plane = shared.lock_plane();
            loop {
                if plane.run.len() > 0 {
                    // `in_flight` rises before the queue length visibly
                    // drops — the drain() invariant.
                    shared.in_flight.fetch_add(1, Ordering::SeqCst);
                    let first = plane
                        .run
                        .pop_fair()
                        // repo_lint: allow(guarded by the !is_empty() wake condition above)
                        .expect("nonempty tenant plane dispenses a job");
                    let mut extras = Vec::new();
                    for _ in 1..shared.config.refill_batch.max(1) {
                        match plane.run.pop_fair() {
                            Some(job) => extras.push(job),
                            None => break,
                        }
                    }
                    let parked = !extras.is_empty();
                    shared.shards.note_refill(1);
                    // Parked under the plane lock: a sibling deciding to
                    // sleep decides under this lock, so it cannot miss them.
                    shared.shards.park_own(me, extras);
                    break Next::Run(first, parked);
                }
                if shared.shards.parked() > 0 {
                    break Next::Steal;
                }
                if plane.shutdown {
                    break Next::Exit;
                }
                plane = shared
                    .work
                    .wait(plane)
                    .unwrap_or_else(PoisonError::into_inner);
            }
        };
        match next {
            Next::Run(job, parked_extras) => {
                if parked_extras {
                    // The extras are stealable: wake one sibling in case
                    // every other worker is asleep.
                    shared.work.notify_one();
                }
                if shared.config.max_backlog.is_some() {
                    // The refill freed backlog capacity.
                    shared.capacity.notify_all();
                }
                run_and_complete(shared, job);
            }
            Next::Steal => {
                if let Some(job) = shared.shards.steal(me, &shared.in_flight) {
                    shared.poke_capacity();
                    run_and_complete(shared, job);
                }
                // Steal lost the race: loop around — the plane is
                // re-checked under its lock before any sleep, so nothing
                // admitted meanwhile is missed.
            }
            Next::Exit => return,
        }
    }
}

/// Runs one job with panic containment and publishes its outcome (with
/// per-tenant latency accounting) exactly once.
fn run_and_complete(shared: &Shared, job: Job) {
    // Contain a panicking job: it must not take the worker down with
    // `in_flight` still incremented (that wedged every later
    // `drain()`/`wait()` forever). `AssertUnwindSafe` is sound here:
    // `run_job` only reads the config and the job, all its mutable state
    // is local to the call, and no engine lock is held.
    let caught = catch_unwind(AssertUnwindSafe(|| run_job(&shared.config, &job)));
    let (result, mut edits) = match caught {
        Ok(Ok((report, edits))) => (Ok(report), edits),
        Ok(Err(error)) => (Err(error), Vec::new()),
        Err(payload) => (
            Err(SchedulerError::JobPanicked {
                message: panic_message(payload),
            }),
            Vec::new(),
        ),
    };
    let Job {
        id,
        tenant,
        label,
        doc,
        jitter,
        resolver,
        solve,
        edits: mailbox,
        admitted_at,
    } = job;
    // Retire the mailbox before the outcome publishes: later apply_edit
    // calls fail fast with EditRejected, and anything that raced in after
    // the job's final drain (or that a failed job never drained) is
    // accounted for as a rejected outcome rather than silently lost.
    {
        let mut mailboxes = shared.lock_mailboxes();
        mailboxes.remove(&id.0);
    }
    let stranded = std::mem::take(&mut *mailbox.lock().unwrap_or_else(PoisonError::into_inner));
    for edit in stranded {
        edits.push(EditOutcome {
            edit,
            at: TimeMs::ZERO,
            result: Err(SchedulerError::EditRejected {
                doc: id,
                reason: "document already completed",
            }),
        });
    }
    // Release the job's shared references (document, resolver, precomputed
    // solve) *before* the outcome becomes observable, so a producer that
    // sees the outcome can reclaim sole ownership of what it shared
    // (`Arc::try_unwrap`) without racing this thread.
    drop((doc, jitter, resolver, solve, mailbox));
    let latency = admitted_at.elapsed();
    let outcome = DocOutcome {
        id,
        tenant,
        label,
        result,
        edits,
    };
    let mut outcomes = shared.lock_outcomes();
    outcomes
        .latency
        .entry(tenant)
        .or_default()
        .record(latency, outcome.is_ok());
    outcomes.finished.push(outcome);
    // Under the outcomes lock, so drain() (which holds it) never sees the
    // decrement without the outcome.
    shared.in_flight.fetch_sub(1, Ordering::SeqCst);
    drop(outcomes);
    shared.done.notify_all();
}

/// Empties a document's edit mailbox, returning the routed edits in
/// arrival order.
fn drain_mailbox(mailbox: &Mailbox) -> Vec<Edit> {
    std::mem::take(&mut *mailbox.lock().unwrap_or_else(PoisonError::into_inner))
}

/// One document's full trip through the engine: derive, relax, play —
/// draining its live-edit mailbox before the solve and again at every tick
/// boundary. Any scheduler error — a `ConstraintCycle` above all — is the
/// document's outcome, not the worker's death.
fn run_job(config: &EngineConfig, job: &Job) -> Result<(PlaybackReport, Vec<EditOutcome>)> {
    if let Some(hook) = &config.job_hook {
        hook.fire(&job.label);
    }
    let resolver: &dyn DescriptorResolver = match &job.resolver {
        Some(resolver) => resolver.as_ref(),
        None => &job.doc.catalog,
    };
    let mut edits: Vec<EditOutcome> = Vec::new();
    let mut revision = DocRevision::initial(Arc::clone(&job.doc));
    // Edits that raced admission fold into the revision before anything is
    // solved: cheaper than a swap, and a precomputed solve for the
    // unedited tree must not be trusted past the first applied edit.
    let mut edited_before_start = false;
    for edit in drain_mailbox(&job.edits) {
        match revision.apply(&edit) {
            Ok((next, _delta)) => {
                revision = next;
                edited_before_start = true;
                edits.push(EditOutcome {
                    edit,
                    at: TimeMs::ZERO,
                    result: Ok(()),
                });
            }
            Err(refusal) => edits.push(EditOutcome {
                edit,
                at: TimeMs::ZERO,
                result: Err(refusal.into()),
            }),
        }
    }
    let owned_solve;
    let solved: &SolveResult = match &job.solve {
        Some(precomputed) if !edited_before_start => precomputed,
        _ => {
            let doc = revision.doc();
            let mut graph = ConstraintGraph::derive(doc, resolver, &config.options)?;
            owned_solve = graph.solve(doc, resolver)?;
            &owned_solve
        }
    };
    let mut session = PlayerSession::new(revision.doc(), solved, resolver, &job.jitter)?;
    let ticks = i64::from(config.ticks_per_document.max(1));
    // The incremental repair session is opened lazily on the first
    // mid-playback edit (its cold fixpoint costs one full relax) and kept
    // warm across later edits of the same document.
    let mut edit_session: Option<EditSession<'_>> = None;
    let mut last_boundary = 0i64;
    for step in 1..=ticks {
        // Applied edits can lengthen (or shorten) the presentation, so the
        // remaining boundaries re-span the *current* total; the clamp
        // keeps the tick sequence monotone when an edit shortened it.
        let total = session.total_duration().as_millis();
        let boundary = (total * step / ticks).max(last_boundary);
        session.tick(boundary)?;
        session.poll_events();
        last_boundary = boundary;
        for edit in drain_mailbox(&job.edits) {
            let mut repair = match edit_session.take() {
                Some(open) => open,
                None => EditSession::begin(revision.clone(), resolver, config.options)?,
            };
            let applied = repair.apply(&edit).and_then(|_| repair.solve_result());
            match applied {
                Ok(solve) => {
                    revision = repair.revision().clone();
                    session.swap_revision(revision.doc(), &solve, resolver)?;
                    edits.push(EditOutcome {
                        edit,
                        at: TimeMs::from_millis(boundary),
                        result: Ok(()),
                    });
                    edit_session = Some(repair);
                }
                Err(refusal) => {
                    // A failed repair may leave the session's fixpoint
                    // poisoned (e.g. a constraint cycle detected
                    // mid-relaxation); drop it and reopen from the last
                    // good revision on the next edit. The playing session
                    // is untouched either way.
                    edits.push(EditOutcome {
                        edit,
                        at: TimeMs::from_millis(boundary),
                        result: Err(refusal),
                    });
                }
            }
        }
    }
    // The loop's final boundary already reached the then-current total;
    // this closes out anything a very last edit appended (and zero-length
    // documents, for which the loop never advanced).
    let total = session.total_duration().as_millis().max(last_boundary);
    session.tick(total)?;
    session.poll_events();
    Ok((session.run_to_completion(), edits))
}

#[cfg(test)]
mod tests {
    use super::*;
    use cmif_core::arc::SyncArc;
    use cmif_core::prelude::*;
    use cmif_core::time::MediaTime;
    use std::time::Duration;

    use crate::error::SchedulerError;

    fn story(name: &str, secs: i64) -> Document {
        DocumentBuilder::new(name)
            .channel("audio", MediaKind::Audio)
            .channel("caption", MediaKind::Text)
            .descriptor(
                DataDescriptor::new("speech", MediaKind::Audio, "pcm8")
                    .with_duration(TimeMs::from_secs(secs)),
            )
            .root_par(|root| {
                root.ext("voice", "audio", "speech");
                root.imm_text("line", "caption", "hello", 1_000);
            })
            .build()
            .unwrap()
    }

    fn cyclic_doc() -> Document {
        let mut doc = story("cycle", 2);
        let voice = doc.find("/voice").unwrap();
        let line = doc.find("/line").unwrap();
        doc.add_arc(
            voice,
            SyncArc::hard_start("../line", "").with_offset(MediaTime::seconds(1)),
        )
        .unwrap();
        doc.add_arc(
            line,
            SyncArc::hard_start("../voice", "").with_offset(MediaTime::seconds(1)),
        )
        .unwrap();
        doc
    }

    /// A manually opened barrier the stall-hook tests park workers on.
    struct Gate {
        open: Mutex<bool>,
        cv: Condvar,
    }

    impl Gate {
        fn new() -> Arc<Gate> {
            Arc::new(Gate {
                open: Mutex::new(false),
                cv: Condvar::new(),
            })
        }

        fn wait(&self) {
            let mut open = self.open.lock().unwrap();
            while !*open {
                open = self.cv.wait(open).unwrap();
            }
        }

        fn release(&self) {
            *self.open.lock().unwrap() = true;
            self.cv.notify_all();
        }
    }

    /// An engine whose workers park on `gate` at the start of every job.
    fn stalled_engine(workers: usize, max_backlog: Option<usize>, gate: &Arc<Gate>) -> Engine {
        let gate = Arc::clone(gate);
        Engine::new(EngineConfig {
            workers,
            max_backlog,
            job_hook: Some(JobHook::new(move |_| gate.wait())),
            ..EngineConfig::default()
        })
    }

    #[test]
    fn engine_plays_a_batch_and_reports_each() {
        let engine = Engine::with_workers(4);
        let ids: Vec<DocId> = (0..12)
            .map(|i| {
                engine
                    .submit(
                        story("batch", 2 + (i % 3)),
                        JitterModel::uniform(100, i as u64),
                    )
                    .unwrap()
            })
            .collect();
        let outcomes = engine.drain();
        assert_eq!(outcomes.len(), 12);
        for (id, outcome) in ids.iter().zip(&outcomes) {
            assert_eq!(*id, outcome.id);
            assert!(outcome.is_ok(), "{:?}", outcome.result);
        }
    }

    #[test]
    fn concurrent_reports_match_sequential_runs() {
        let engine = Engine::with_workers(4);
        let mut ids = Vec::new();
        for seed in 0..8u64 {
            ids.push(
                engine
                    .submit(story("det", 3), JitterModel::uniform(200, seed))
                    .unwrap(),
            );
        }
        let outcomes = engine.drain();

        let sequential = Engine::with_workers(1);
        let mut seq_ids = Vec::new();
        for seed in 0..8u64 {
            seq_ids.push(
                sequential
                    .submit(story("det", 3), JitterModel::uniform(200, seed))
                    .unwrap(),
            );
        }
        let seq_outcomes = sequential.drain();

        for (a, b) in outcomes.iter().zip(&seq_outcomes) {
            assert_eq!(
                a.result.as_ref().unwrap(),
                b.result.as_ref().unwrap(),
                "concurrency changed a playback report"
            );
        }
    }

    #[test]
    fn bad_document_is_rejected_without_tearing_down_the_worker() {
        // One worker: the cyclic document and the good one share it, so the
        // good one only completes if the worker survives the rejection.
        let engine = Engine::with_workers(1);
        let bad = engine
            .submit_labeled("bad", cyclic_doc(), JitterModel::ideal())
            .unwrap();
        let good = engine
            .submit_labeled("good", story("good", 2), JitterModel::ideal())
            .unwrap();
        let bad_outcome = engine.wait(bad);
        assert!(matches!(
            bad_outcome.result,
            Err(SchedulerError::ConstraintCycle { .. })
        ));
        let good_outcome = engine.wait(good);
        assert!(good_outcome.is_ok());
        assert_eq!(good_outcome.label, "good");
    }

    #[test]
    fn panicking_job_is_an_outcome_not_a_wedge() {
        // The panic twin of the test above — the regression that motivated
        // `catch_unwind`: before it, a panic killed the worker with
        // `in_flight` still incremented and every later `drain()`/`wait()`
        // blocked forever. One worker: the sibling only completes if that
        // worker survived the panic.
        let engine = Engine::new(EngineConfig {
            workers: 1,
            job_hook: Some(JobHook::new(|label| {
                if label == "boom" {
                    panic!("injected playback fault in {label}");
                }
            })),
            ..EngineConfig::default()
        });
        let bad = engine
            .submit_labeled("boom", story("doomed", 2), JitterModel::ideal())
            .unwrap();
        let good = engine
            .submit_labeled("survivor", story("fine", 2), JitterModel::ideal())
            .unwrap();
        let bad_outcome = engine.wait(bad);
        match bad_outcome.result {
            Err(SchedulerError::JobPanicked { ref message }) => {
                assert!(message.contains("injected playback fault"), "{message}");
            }
            other => panic!("expected JobPanicked, got {other:?}"),
        }
        // The same worker still serves; drain() terminates.
        let good_outcome = engine.wait(good);
        assert!(good_outcome.is_ok(), "{:?}", good_outcome.result);
        assert!(engine.drain().is_empty());
        assert_eq!(engine.backlog(), 0);
    }

    #[test]
    fn every_job_panicking_still_drains() {
        let engine = Engine::new(EngineConfig {
            workers: 2,
            job_hook: Some(JobHook::new(|_| panic!("nothing works today"))),
            ..EngineConfig::default()
        });
        for _ in 0..6 {
            engine
                .submit(story("cursed", 2), JitterModel::ideal())
                .unwrap();
        }
        let outcomes = engine.drain();
        assert_eq!(outcomes.len(), 6);
        assert!(outcomes
            .iter()
            .all(|o| matches!(o.result, Err(SchedulerError::JobPanicked { .. }))));
    }

    #[test]
    fn try_submit_backpressure_when_saturated() {
        let gate = Gate::new();
        let engine = stalled_engine(1, Some(1), &gate);
        // First job: popped by the worker, which then parks on the gate.
        let first = engine.submit(story("a", 2), JitterModel::ideal()).unwrap();
        // Second: sits in the queue's single slot once the worker took the
        // first (the blocking submit waits for exactly that).
        let second = engine.submit(story("b", 2), JitterModel::ideal()).unwrap();
        // Third: the slot is provably full and the worker parked.
        let refused = engine.try_submit(story("c", 2), JitterModel::ideal());
        match refused {
            Err(SchedulerError::Backpressure { backlog }) => assert_eq!(backlog, 2),
            other => panic!("expected Backpressure, got {other:?}"),
        }
        assert_eq!(engine.backlog(), 2);
        gate.release();
        assert!(engine.wait(first).is_ok());
        assert!(engine.wait(second).is_ok());
    }

    #[test]
    fn blocked_submit_resumes_when_capacity_frees() {
        let gate = Gate::new();
        let engine = Arc::new(stalled_engine(1, Some(1), &gate));
        engine.submit(story("a", 2), JitterModel::ideal()).unwrap();
        engine.submit(story("b", 2), JitterModel::ideal()).unwrap();

        let (tx, rx) = std::sync::mpsc::channel();
        let submitter = {
            let engine = Arc::clone(&engine);
            thread::spawn(move || {
                let id = engine.submit(story("c", 2), JitterModel::ideal());
                tx.send(()).unwrap();
                id
            })
        };
        // While the worker is parked the queue stays full, so the submit
        // cannot have returned (a false pass here is impossible: returning
        // would need a queue slot only the parked worker can free).
        assert!(rx.recv_timeout(Duration::from_millis(100)).is_err());
        gate.release();
        let id = submitter.join().unwrap().expect("unblocked submit admits");
        assert!(engine.wait(id).is_ok());
        assert_eq!(engine.drain().len(), 2);
    }

    #[test]
    fn close_stops_admission_while_the_backlog_drains() {
        let gate = Gate::new();
        let engine = stalled_engine(1, None, &gate);
        let ids: Vec<DocId> = (0..3)
            .map(|i| {
                engine
                    .submit(story("queued", 2), JitterModel::uniform(50, i))
                    .unwrap()
            })
            .collect();
        engine.close();
        assert!(engine.is_closed());
        assert!(matches!(
            engine.submit(story("late", 2), JitterModel::ideal()),
            Err(SchedulerError::EngineClosed)
        ));
        assert!(matches!(
            engine.try_submit(story("late", 2), JitterModel::ideal()),
            Err(SchedulerError::EngineClosed)
        ));
        // The already-admitted backlog still drains to completion.
        gate.release();
        let outcomes = engine.drain();
        assert_eq!(outcomes.len(), ids.len());
        assert!(outcomes.iter().all(DocOutcome::is_ok));
        // close() is idempotent and keeps delivering nothing new.
        engine.close();
        assert!(engine.drain().is_empty());
    }

    #[test]
    fn close_unblocks_a_submitter_waiting_for_capacity() {
        let gate = Gate::new();
        let engine = Arc::new(stalled_engine(1, Some(1), &gate));
        engine.submit(story("a", 2), JitterModel::ideal()).unwrap();
        engine.submit(story("b", 2), JitterModel::ideal()).unwrap();
        let blocked = {
            let engine = Arc::clone(&engine);
            thread::spawn(move || engine.submit(story("c", 2), JitterModel::ideal()))
        };
        // Whether the close lands before or after the thread starts
        // waiting, the submit must come back with EngineClosed.
        thread::sleep(Duration::from_millis(50));
        engine.close();
        assert!(matches!(
            blocked.join().unwrap(),
            Err(SchedulerError::EngineClosed)
        ));
        gate.release();
        assert_eq!(engine.drain().len(), 2);
    }

    #[test]
    fn zero_backlog_is_clamped_so_blocking_submits_make_progress() {
        let engine = Engine::new(EngineConfig {
            workers: 1,
            max_backlog: Some(0),
            ..EngineConfig::default()
        });
        let id = engine
            .submit(story("only", 2), JitterModel::ideal())
            .unwrap();
        assert!(engine.wait(id).is_ok());
    }

    #[test]
    fn delivery_bookkeeping_stays_bounded_on_a_long_lived_engine() {
        let engine = Engine::with_workers(1);
        for i in 0..40 {
            let id = engine
                .submit(story("long", 2), JitterModel::uniform(30, i))
                .unwrap();
            assert!(engine.wait(id).is_ok());
        }
        let (floor, parked) = engine.delivery_bookkeeping();
        assert_eq!(floor, 40);
        assert_eq!(
            parked, 0,
            "delivery set must not grow with documents played"
        );

        // Out-of-order delivery parks an id only until the floor catches up.
        let a = engine.submit(story("a", 2), JitterModel::ideal()).unwrap();
        let b = engine.submit(story("b", 2), JitterModel::ideal()).unwrap();
        assert!(engine.wait(b).is_ok());
        let (_, parked) = engine.delivery_bookkeeping();
        assert_eq!(parked, 1);
        assert!(engine.wait(a).is_ok());
        let (floor, parked) = engine.delivery_bookkeeping();
        assert_eq!(floor, 42);
        assert_eq!(parked, 0);
    }

    #[test]
    fn undelivered_counts_finished_outcomes_until_collected() {
        let engine = Engine::with_workers(2);
        for i in 0..3 {
            engine
                .submit(story("idle", 2), JitterModel::uniform(40, i))
                .unwrap();
        }
        // Wait for the jobs to finish without delivering their outcomes.
        let deadline = std::time::Instant::now() + Duration::from_secs(30);
        while engine.backlog() > 0 {
            assert!(std::time::Instant::now() < deadline, "jobs never finished");
            thread::sleep(Duration::from_millis(5));
        }
        assert_eq!(engine.undelivered(), 3);
        assert_eq!(engine.backlog(), 0);
        assert_eq!(engine.drain().len(), 3);
        assert_eq!(engine.undelivered(), 0);
    }

    #[test]
    fn precomputed_solve_skips_derivation_but_matches_it() {
        let doc = Arc::new(story("pre", 3));
        let jitter = JitterModel::uniform(150, 11);
        let engine = Engine::with_workers(1);
        let derived = engine.submit(Arc::clone(&doc), jitter.clone()).unwrap();
        let solve = ConstraintGraph::derive(&doc, &doc.catalog, &ScheduleOptions::default())
            .unwrap()
            .solve(&doc, &doc.catalog)
            .unwrap();
        let precomputed = engine
            .admit(Submission::new(Arc::clone(&doc), jitter).solved(solve))
            .unwrap();
        assert_eq!(
            engine.wait(derived).result.unwrap(),
            engine.wait(precomputed).result.unwrap(),
            "the precomputed-solve path diverged from the derive path"
        );
    }

    #[test]
    fn drain_on_an_idle_engine_returns_empty() {
        let engine = Engine::with_workers(2);
        assert!(engine.drain().is_empty());
        assert_eq!(engine.backlog(), 0);
        engine.shutdown();
    }

    #[test]
    #[should_panic(expected = "never admitted")]
    fn waiting_for_a_foreign_ticket_panics() {
        let engine = Engine::with_workers(1);
        engine.wait(DocId(99));
    }

    #[test]
    #[should_panic(expected = "already delivered")]
    fn waiting_twice_for_one_outcome_panics_instead_of_hanging() {
        let engine = Engine::with_workers(1);
        let id = engine
            .submit(story("once", 2), JitterModel::ideal())
            .unwrap();
        assert!(engine.wait(id).is_ok());
        engine.wait(id);
    }

    #[test]
    #[should_panic(expected = "already delivered")]
    fn waiting_after_drain_panics_instead_of_hanging() {
        let engine = Engine::with_workers(1);
        let id = engine
            .submit(story("drained", 2), JitterModel::ideal())
            .unwrap();
        assert_eq!(engine.drain().len(), 1);
        engine.wait(id);
    }

    #[test]
    fn drain_returns_each_outcome_once_across_batches() {
        let engine = Engine::with_workers(2);
        for _ in 0..3 {
            engine
                .submit(story("batch-a", 2), JitterModel::ideal())
                .unwrap();
        }
        assert_eq!(engine.drain().len(), 3);
        for _ in 0..2 {
            engine
                .submit(story("batch-b", 2), JitterModel::ideal())
                .unwrap();
        }
        // The second drain sees only the second batch.
        assert_eq!(engine.drain().len(), 2);
    }

    #[test]
    fn submit_batch_admits_contiguously_and_plays_everything() {
        let engine = Engine::with_workers(2);
        let doc = Arc::new(story("batched", 2));
        let ids = engine
            .submit_batch((0..10u64).map(|i| {
                Submission::new(Arc::clone(&doc), JitterModel::uniform(60, i))
                    .labeled(format!("job-{i}"))
            }))
            .unwrap();
        assert_eq!(ids.len(), 10);
        // One transaction, contiguous admission-order ids.
        for pair in ids.windows(2) {
            assert_eq!(pair[1].0, pair[0].0 + 1);
        }
        let outcomes = engine.drain();
        assert_eq!(outcomes.len(), 10);
        assert!(outcomes.iter().all(DocOutcome::is_ok));
        assert_eq!(outcomes[3].label, "job-3");
        assert!(engine.submit_batch(Vec::new()).unwrap().is_empty());
    }

    #[test]
    fn oversized_batch_on_a_bounded_queue_is_refused_not_deadlocked() {
        let engine = Engine::new(EngineConfig {
            workers: 1,
            max_backlog: Some(2),
            ..EngineConfig::default()
        });
        let doc = Arc::new(story("big", 2));
        let err = engine
            .submit_batch((0..5).map(|_| Submission::new(Arc::clone(&doc), JitterModel::ideal())))
            .expect_err("a 5-doc batch can never fit a 2-slot queue");
        assert!(matches!(err, SchedulerError::Backpressure { .. }));
        // A batch that exactly fits the bound goes through.
        let ids = engine
            .submit_batch((0..2).map(|_| Submission::new(Arc::clone(&doc), JitterModel::ideal())))
            .unwrap();
        assert_eq!(ids.len(), 2);
        assert_eq!(engine.drain().len(), 2);
    }

    #[test]
    fn quota_refuses_with_retry_hint_and_spares_capacity_refusals() {
        let tenant = TenantId::new(7);
        let engine = Engine::with_workers(1);
        engine.set_tenant_policy(
            tenant,
            TenantPolicy::default().with_quota(QuotaConfig::new(2, 1000.0)),
        );
        let doc = Arc::new(story("metered", 2));
        let submit = || Submission::new(Arc::clone(&doc), JitterModel::ideal()).tenant(tenant);
        let a = engine.admit(submit()).unwrap();
        let b = engine.admit(submit()).unwrap();
        // Third admission in the same burst: over quota, with a finite
        // retry hint (the bucket refills at 1000/s).
        match engine.try_admit(submit()) {
            Err(SchedulerError::QuotaExceeded {
                tenant: refused,
                retry_after_ms,
            }) => {
                assert_eq!(refused, tenant);
                assert!(retry_after_ms <= 1_000, "hint {retry_after_ms}ms");
            }
            other => panic!("expected QuotaExceeded, got {other:?}"),
        }
        assert!(engine.wait(a).is_ok());
        assert!(engine.wait(b).is_ok());
        let stats = engine.tenant_stats();
        let row = stats.iter().find(|r| r.tenant == tenant).unwrap();
        assert_eq!(row.submitted, 2);
        assert_eq!(row.quota_refusals, 1);
        assert_eq!(row.completed, 2);
        assert_eq!(row.ok, 2);
        assert!(row.max_latency_ms >= row.mean_latency_ms);
    }

    #[test]
    fn batch_quota_is_all_or_nothing() {
        let tenant = TenantId::new(3);
        let engine = Engine::with_workers(1);
        engine.set_tenant_policy(
            tenant,
            // Never refills: 3 admissions, ever.
            TenantPolicy::default().with_quota(QuotaConfig::new(3, 0.0)),
        );
        let doc = Arc::new(story("burst", 2));
        let batch = |n: usize| {
            (0..n)
                .map(|_| Submission::new(Arc::clone(&doc), JitterModel::ideal()).tenant(tenant))
                .collect::<Vec<_>>()
        };
        // A 4-doc batch over a 3-token bucket: nothing admitted, nothing
        // charged.
        let err = engine.submit_batch(batch(4)).expect_err("over quota");
        assert!(matches!(
            err,
            SchedulerError::QuotaExceeded {
                retry_after_ms: u64::MAX,
                ..
            }
        ));
        assert_eq!(engine.backlog() + engine.undelivered(), 0);
        // The refusal consumed no tokens: a 3-doc batch still fits.
        let ids = engine.submit_batch(batch(3)).unwrap();
        assert_eq!(ids.len(), 3);
        assert_eq!(engine.drain().len(), 3);
    }

    #[test]
    fn outcomes_carry_their_tenant_and_stats_split_by_tenant() {
        let news = TenantId::new(1);
        let sport = TenantId::new(2);
        let engine = Engine::with_workers(2);
        let doc = Arc::new(story("tagged", 2));
        let mut expected = HashMap::new();
        for (tenant, n) in [(news, 3usize), (sport, 2usize)] {
            for _ in 0..n {
                engine
                    .admit(Submission::new(Arc::clone(&doc), JitterModel::ideal()).tenant(tenant))
                    .unwrap();
            }
            expected.insert(tenant, n);
        }
        let outcomes = engine.drain();
        let mut by_tenant: HashMap<TenantId, usize> = HashMap::new();
        for outcome in &outcomes {
            *by_tenant.entry(outcome.tenant).or_default() += 1;
        }
        assert_eq!(by_tenant, expected);
        for row in engine.tenant_stats() {
            assert_eq!(row.submitted as usize, expected[&row.tenant]);
            assert_eq!(row.completed as usize, expected[&row.tenant]);
            assert_eq!(row.failed, 0);
        }
    }

    #[test]
    fn work_stealing_accounts_for_every_dispatched_job() {
        let engine = Engine::new(EngineConfig {
            workers: 4,
            refill_batch: 8,
            ..EngineConfig::default()
        });
        let doc = Arc::new(story("spread", 2));
        let ids = engine
            .submit_batch(
                (0..32u64).map(|i| Submission::new(Arc::clone(&doc), JitterModel::uniform(40, i))),
            )
            .unwrap();
        assert_eq!(engine.drain().len(), ids.len());
        let stats = engine.queue_stats();
        assert_eq!(stats.dispatched(), 32, "{stats:?}");
        // Large refill batches on a multi-worker engine must leave parked
        // work behind at least once.
        assert!(stats.refills > 0);
        assert!(stats.steal_ratio() >= 0.0 && stats.steal_ratio() <= 1.0);
    }

    #[test]
    fn apply_edit_rejects_unknown_and_completed_documents() {
        let engine = Engine::with_workers(1);
        let doc = story("target", 2);
        let line = doc.find("/line").unwrap();
        let edit = Edit::RemoveSubtree { node: line };
        match engine.apply_edit(DocId(5), edit.clone()) {
            Err(SchedulerError::EditRejected { doc, reason }) => {
                assert_eq!(doc, DocId(5));
                assert_eq!(reason, "unknown document");
            }
            other => panic!("expected EditRejected, got {other:?}"),
        }
        let id = engine.submit(doc, JitterModel::ideal()).unwrap();
        assert!(engine.wait(id).is_ok());
        // The mailbox retires with the job: late routing fails fast.
        assert!(matches!(
            engine.apply_edit(id, edit),
            Err(SchedulerError::EditRejected {
                reason: "document already completed",
                ..
            })
        ));
    }

    #[test]
    fn pre_start_edits_fold_into_the_document_and_report_outcomes() {
        use cmif_core::edit::NodeSpec;
        let gate = Gate::new();
        let engine = stalled_engine(1, None, &gate);
        let doc = story("edited", 2);
        let root = doc.root().unwrap();
        let id = engine.submit(doc, JitterModel::ideal()).unwrap();
        // The worker is parked at the job hook, which fires before the
        // pre-start drain: both edits provably land before the solve.
        engine
            .apply_edit(
                id,
                Edit::InsertSubtree {
                    parent: root,
                    spec: NodeSpec::imm_text("coda", "and one more thing")
                        .on_channel("caption")
                        .lasting_ms(5_000),
                },
            )
            .unwrap();
        // Removing the root is invalid: refused, document unharmed.
        engine
            .apply_edit(id, Edit::RemoveSubtree { node: root })
            .unwrap();
        gate.release();
        let outcome = engine.wait(id);
        let report = outcome.result.expect("edited document still plays");
        // The par root now holds a 5s caption next to the 2s voice.
        assert_eq!(report.total_duration, TimeMs::from_secs(5));
        assert!(report.events.iter().any(|e| e.name.as_str() == "coda"));
        assert_eq!(outcome.edits.len(), 2);
        assert!(outcome.edits[0].result.is_ok(), "{:?}", outcome.edits[0]);
        assert_eq!(outcome.edits[0].at, TimeMs::ZERO);
        assert!(outcome.edits[1].result.is_err(), "{:?}", outcome.edits[1]);
    }

    /// Delegates to the document's catalog — and the first time anything
    /// resolves through it, drops the prepared edit into the mailbox.
    /// Resolution first happens during constraint derivation, i.e. *after*
    /// the job's pre-start drain, so the edit deterministically arrives
    /// mid-playback and must be picked up at a tick boundary. No threads,
    /// no races.
    struct EditingResolver {
        doc: Arc<Document>,
        mailbox: Mailbox,
        edit: Mutex<Option<Edit>>,
    }

    impl DescriptorResolver for EditingResolver {
        fn resolve(&self, key: &str) -> Option<DataDescriptor> {
            if let Some(edit) = self.edit.lock().unwrap().take() {
                self.mailbox.lock().unwrap().push(edit);
            }
            self.doc.catalog.resolve(key)
        }
    }

    #[test]
    fn mid_playback_edits_swap_at_a_tick_boundary() {
        use cmif_core::edit::NodeSpec;
        let doc = Arc::new(story("live", 2));
        let root = doc.root().unwrap();
        let mailbox: Mailbox = Arc::new(Mutex::new(Vec::new()));
        let edit = Edit::InsertSubtree {
            parent: root,
            spec: NodeSpec::imm_text("coda", "breaking update")
                .on_channel("caption")
                .lasting_ms(6_000),
        };
        let resolver = EditingResolver {
            doc: Arc::clone(&doc),
            mailbox: Arc::clone(&mailbox),
            edit: Mutex::new(Some(edit)),
        };
        let job = Job {
            id: DocId(0),
            tenant: TenantId::DEFAULT,
            label: "live".to_string(),
            doc: Arc::clone(&doc),
            jitter: JitterModel::ideal(),
            resolver: Some(Arc::new(resolver)),
            solve: None,
            edits: Arc::clone(&mailbox),
            admitted_at: Instant::now(),
        };
        let (report, outcomes) = run_job(&EngineConfig::default(), &job).unwrap();
        assert_eq!(outcomes.len(), 1);
        assert!(outcomes[0].result.is_ok(), "{:?}", outcomes[0].result);
        assert!(
            outcomes[0].at.as_millis() > 0,
            "a mid-playback edit lands at a boundary, not pre-start: {:?}",
            outcomes[0].at
        );
        assert_eq!(report.total_duration, TimeMs::from_secs(6));
        assert!(report.events.iter().any(|e| e.name.as_str() == "coda"));
        assert!(mailbox.lock().unwrap().is_empty());
    }

    #[test]
    fn edits_stranded_by_a_failed_job_become_rejected_outcomes() {
        let gate = Gate::new();
        let hook_gate = Arc::clone(&gate);
        let engine = Engine::new(EngineConfig {
            workers: 1,
            job_hook: Some(JobHook::new(move |_| {
                hook_gate.wait();
                panic!("wedged mid-broadcast");
            })),
            ..EngineConfig::default()
        });
        let doc = story("doomed", 2);
        let line = doc.find("/line").unwrap();
        let id = engine.submit(doc, JitterModel::ideal()).unwrap();
        engine
            .apply_edit(id, Edit::RemoveSubtree { node: line })
            .unwrap();
        gate.release();
        let outcome = engine.wait(id);
        assert!(matches!(
            outcome.result,
            Err(SchedulerError::JobPanicked { .. })
        ));
        // The routed edit was never drained — accounted for, not lost.
        assert_eq!(outcome.edits.len(), 1);
        assert!(matches!(
            outcome.edits[0].result,
            Err(SchedulerError::EditRejected {
                reason: "document already completed",
                ..
            })
        ));
    }

    #[test]
    fn default_tenant_policy_applies_quota_to_untagged_work() {
        let engine = Engine::new(EngineConfig {
            workers: 1,
            default_tenant_policy: TenantPolicy::default().with_quota(QuotaConfig::new(1, 0.0)),
            ..EngineConfig::default()
        });
        let doc = Arc::new(story("default", 2));
        engine
            .submit(Arc::clone(&doc), JitterModel::ideal())
            .unwrap();
        assert!(matches!(
            engine.submit(Arc::clone(&doc), JitterModel::ideal()),
            Err(SchedulerError::QuotaExceeded { tenant, .. }) if tenant == TenantId::DEFAULT
        ));
        assert_eq!(engine.drain().len(), 1);
    }
}
