//! Per-worker sharded run deques with work stealing.
//!
//! The engine's old run queue was a single `Mutex<VecDeque>` that every
//! submitter *and* every worker hit for every job — the central resource
//! became the serialization point exactly as the worker count grew. The
//! sharded layout splits the two planes:
//!
//! * submitters touch only the shared tenant plane (one lock, amortised
//!   further by `submit_batch`);
//! * workers run out of their *own* shard (`pop_own`, uncontended in the
//!   common case), refill a small batch from the tenant plane only when
//!   their shard runs dry, and **steal** from a sibling's shard when the
//!   plane is empty too — so parked work never waits for the worker that
//!   happened to refill it.
//!
//! Thieves take from the *back* of a victim's deque while the owner pops
//! the front, which keeps the two ends from colliding and preserves the
//! victim's FIFO order for the jobs it keeps. One job moves per steal: a
//! stolen job is executed immediately by the thief, so work in transit is
//! never parked anywhere a sleeping worker would need to be woken for.
//!
//! Every transfer is counted ([`QueueStats`]): the `ext_engine` bench
//! prints the local/refill/steal split so a run shows *where* jobs came
//! from, not just how fast they went.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Mutex, PoisonError};

/// How jobs reached the workers: one counter per acquisition path, plus
/// the number of plane→shard refill transactions. Snapshot via
/// `Engine::queue_stats`; all counters are cumulative since engine start.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct QueueStats {
    /// Jobs a worker popped from its own shard (the contention-free path).
    pub local_pops: u64,
    /// Jobs taken straight off the shared tenant plane by a refilling
    /// worker (the first job of every refill batch).
    pub direct_pops: u64,
    /// Jobs moved from the tenant plane into a worker's shard by refill
    /// batches (they are later counted in `local_pops` when popped).
    pub refilled: u64,
    /// Plane→worker refill transactions (each moves `direct + refilled`
    /// jobs under one plane-lock acquisition).
    pub refills: u64,
    /// Jobs stolen from a sibling worker's shard.
    pub steals: u64,
}

impl QueueStats {
    /// Total jobs dispatched to workers so far.
    pub fn dispatched(&self) -> u64 {
        self.local_pops + self.direct_pops + self.steals
    }

    /// Fraction of dispatched jobs that arrived by stealing — the
    /// imbalance indicator the bench banner prints. Zero when nothing ran.
    pub fn steal_ratio(&self) -> f64 {
        let dispatched = self.dispatched();
        if dispatched == 0 {
            return 0.0;
        }
        self.steals as f64 / dispatched as f64
    }
}

struct Shard<T> {
    jobs: Mutex<VecDeque<T>>,
    /// Mirror of `jobs.len()`, readable without the shard lock: the
    /// admission path sums these against `max_backlog`, and idle workers
    /// scan them to decide between stealing and sleeping.
    len: AtomicUsize,
}

/// One deque per worker plus the transfer counters.
///
/// Lock ordering: a shard lock may be taken *while holding* the engine's
/// plane lock (refill pushes extras under it), but never the other way
/// around; at most one shard lock is ever held at a time.
pub(super) struct WorkerShards<T> {
    shards: Vec<Shard<T>>,
    local_pops: AtomicU64,
    direct_pops: AtomicU64,
    refilled: AtomicU64,
    refills: AtomicU64,
    steals: AtomicU64,
}

impl<T> WorkerShards<T> {
    pub(super) fn new(workers: usize) -> WorkerShards<T> {
        WorkerShards {
            shards: (0..workers.max(1))
                .map(|_| Shard {
                    jobs: Mutex::new(VecDeque::new()),
                    len: AtomicUsize::new(0),
                })
                .collect(),
            local_pops: AtomicU64::new(0),
            direct_pops: AtomicU64::new(0),
            refilled: AtomicU64::new(0),
            refills: AtomicU64::new(0),
            steals: AtomicU64::new(0),
        }
    }

    /// Total jobs parked across all shards. Monotonic-consistent, not a
    /// snapshot: concurrent pops can make the sum stale by the time it is
    /// read, which only ever causes an extra scan or a spurious capacity
    /// check — never lost work (pushes happen under the plane lock, so a
    /// sleeping worker deciding under that lock cannot miss one).
    pub(super) fn parked(&self) -> usize {
        self.shards
            .iter()
            .map(|shard| shard.len.load(Ordering::SeqCst))
            .sum()
    }

    /// Pops the front of `me`'s own shard. `in_flight` is incremented
    /// *before* the shard's visible length drops, so a `drain()` that
    /// observes the queue empty is guaranteed to still see this job in
    /// flight (SeqCst on both sides makes the orders compose).
    pub(super) fn pop_own(&self, me: usize, in_flight: &AtomicUsize) -> Option<T> {
        let shard = &self.shards[me];
        let mut jobs = shard.jobs.lock().unwrap_or_else(PoisonError::into_inner);
        if jobs.is_empty() {
            return None;
        }
        in_flight.fetch_add(1, Ordering::SeqCst);
        let job = jobs.pop_front();
        shard.len.fetch_sub(1, Ordering::SeqCst);
        self.local_pops.fetch_add(1, Ordering::Relaxed);
        job
    }

    /// Parks refill-batch extras at the back of `me`'s own shard. Must be
    /// called while holding the plane lock, so sleeping workers (who check
    /// for parked work under that lock) cannot miss the new jobs.
    pub(super) fn park_own(&self, me: usize, extras: Vec<T>) {
        if extras.is_empty() {
            return;
        }
        let shard = &self.shards[me];
        let mut jobs = shard.jobs.lock().unwrap_or_else(PoisonError::into_inner);
        shard.len.fetch_add(extras.len(), Ordering::SeqCst);
        self.refilled
            .fetch_add(extras.len() as u64, Ordering::Relaxed);
        jobs.extend(extras);
    }

    /// Records one refill transaction taking `first_jobs` jobs directly.
    pub(super) fn note_refill(&self, direct: u64) {
        self.refills.fetch_add(1, Ordering::Relaxed);
        self.direct_pops.fetch_add(direct, Ordering::Relaxed);
    }

    /// Steals one job from the back of a sibling's shard, scanning victims
    /// round-robin from `me + 1`. Same `in_flight` contract as
    /// [`WorkerShards::pop_own`]. Returns `None` when every sibling came
    /// up empty (the caller re-checks the plane and may sleep).
    pub(super) fn steal(&self, me: usize, in_flight: &AtomicUsize) -> Option<T> {
        let workers = self.shards.len();
        for offset in 1..workers {
            let victim = &self.shards[(me + offset) % workers];
            if victim.len.load(Ordering::SeqCst) == 0 {
                continue;
            }
            let mut jobs = victim.jobs.lock().unwrap_or_else(PoisonError::into_inner);
            if jobs.is_empty() {
                continue;
            }
            in_flight.fetch_add(1, Ordering::SeqCst);
            let job = jobs.pop_back();
            victim.len.fetch_sub(1, Ordering::SeqCst);
            self.steals.fetch_add(1, Ordering::Relaxed);
            return job;
        }
        None
    }

    /// Cumulative transfer counters.
    pub(super) fn stats(&self) -> QueueStats {
        QueueStats {
            local_pops: self.local_pops.load(Ordering::Relaxed),
            direct_pops: self.direct_pops.load(Ordering::Relaxed),
            refilled: self.refilled.load(Ordering::Relaxed),
            refills: self.refills.load(Ordering::Relaxed),
            steals: self.steals.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn own_pops_are_fifo_and_counted() {
        let shards: WorkerShards<u32> = WorkerShards::new(2);
        let in_flight = AtomicUsize::new(0);
        shards.park_own(0, vec![1, 2, 3]);
        assert_eq!(shards.parked(), 3);
        assert_eq!(shards.pop_own(0, &in_flight), Some(1));
        assert_eq!(shards.pop_own(0, &in_flight), Some(2));
        assert_eq!(in_flight.load(Ordering::SeqCst), 2);
        assert_eq!(shards.parked(), 1);
        assert_eq!(shards.stats().local_pops, 2);
    }

    #[test]
    fn stealing_takes_from_the_back_of_a_sibling() {
        let shards: WorkerShards<u32> = WorkerShards::new(3);
        let in_flight = AtomicUsize::new(0);
        shards.park_own(1, vec![10, 11, 12]);
        // Worker 2 steals the newest parked job; worker 1's FIFO head is
        // untouched.
        assert_eq!(shards.steal(2, &in_flight), Some(12));
        assert_eq!(shards.pop_own(1, &in_flight), Some(10));
        assert_eq!(shards.stats().steals, 1);
        assert_eq!(in_flight.load(Ordering::SeqCst), 2);
    }

    #[test]
    fn stealing_from_empty_siblings_returns_none_without_in_flight_bump() {
        let shards: WorkerShards<u32> = WorkerShards::new(4);
        let in_flight = AtomicUsize::new(0);
        assert_eq!(shards.steal(0, &in_flight), None);
        assert_eq!(in_flight.load(Ordering::SeqCst), 0);
        // A worker never steals from itself.
        shards.park_own(0, vec![7]);
        assert_eq!(shards.steal(0, &in_flight), None);
    }

    #[test]
    fn steal_ratio_reflects_the_dispatch_split() {
        let stats = QueueStats {
            local_pops: 6,
            direct_pops: 2,
            refilled: 6,
            refills: 2,
            steals: 2,
        };
        assert_eq!(stats.dispatched(), 10);
        assert!((stats.steal_ratio() - 0.2).abs() < 1e-12);
        assert_eq!(QueueStats::default().steal_ratio(), 0.0);
    }
}
