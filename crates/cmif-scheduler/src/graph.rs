//! The reusable constraint graph: derivation split from relaxation.
//!
//! The old one-shot `solve` entry point re-derived the
//! document's constraint set and re-ran longest-path relaxation from zero on
//! every call — and the playback simulator carried its own copy of the same
//! relaxation loop. [`ConstraintGraph`] separates the two phases:
//!
//! * **derivation** ([`ConstraintGraph::derive`]) walks the document once
//!   and records the structural arcs, leaf durations and explicit arcs;
//! * **relaxation** ([`ConstraintGraph::relax`]) computes the ASAP fixpoint
//!   over the current constraint set, caching the fixpoint of the *base*
//!   (document-derived) constraints so that *injected* constraints — the
//!   hypermedia extension's conditional arcs, for example — re-relax
//!   incrementally from the cached fixpoint instead of re-deriving and
//!   re-solving the whole document.
//!
//! The warm start is sound because relaxation is an inflationary monotone
//! fixpoint over `max`: the base fixpoint is pointwise ≤ the fixpoint of
//! base ∪ injected, and iterating the combined update map from any point
//! below the least fixpoint converges to exactly that least fixpoint.
//!
//! The same relaxation core ([`ConstraintGraph::relax_with_latencies`])
//! drives the playback side: per-leaf startup latencies are folded into the
//! lower bound of every constraint that targets a leaf's begin point, which
//! is what [`crate::session::PlayerSession`] uses to compute the causal
//! "what actually happened" timeline.

use std::collections::HashMap;

use cmif_core::arc::Anchor;
use cmif_core::descriptor::DescriptorResolver;
use cmif_core::node::NodeId;
use cmif_core::time::TimeMs;
use cmif_core::tree::Document;

use crate::defaults::derive_constraints;
use crate::error::{Result, SchedulerError};
use crate::solver::{build_schedule, SolveResult, WindowViolation};
use crate::types::{Constraint, EventPoint, ScheduleOptions};

/// The assignment of a time to every event point — the output of one
/// relaxation run.
pub type PointTimes = HashMap<EventPoint, TimeMs>;

/// A document's constraint set with cached relaxation state.
///
/// Build it once per document ([`ConstraintGraph::derive`] or
/// [`ConstraintGraph::from_constraints`]), then [`inject`] extra constraints
/// and [`relax`] as often as the presentation context changes: only the
/// first relaxation pays for the full fixpoint, later ones warm-start from
/// it.
///
/// [`inject`]: ConstraintGraph::inject
/// [`relax`]: ConstraintGraph::relax
#[derive(Debug, Clone)]
pub struct ConstraintGraph {
    /// Constraints derived from (or supplied for) the document itself.
    base: Vec<Constraint>,
    /// Constraints injected after construction (conditional arcs, reader
    /// choices). Cleared by [`ConstraintGraph::retract_injected`].
    injected: Vec<Constraint>,
    /// Every event point of the document (begin and end of each node).
    points: Vec<EventPoint>,
    /// Cached fixpoint over `base` alone, lazily computed.
    base_times: Option<PointTimes>,
}

impl ConstraintGraph {
    /// Derives the document's constraint set (structural arcs, leaf
    /// durations, explicit arcs) and prepares it for relaxation.
    pub fn derive(
        doc: &Document,
        resolver: &dyn DescriptorResolver,
        options: &ScheduleOptions,
    ) -> Result<ConstraintGraph> {
        let constraints = derive_constraints(doc, resolver, options)?;
        ConstraintGraph::from_constraints(doc, constraints)
    }

    /// Wraps a pre-built constraint set (the derivation has already
    /// happened, e.g. through `cmif-hyper`'s conditional-arc expansion).
    pub fn from_constraints(
        doc: &Document,
        constraints: Vec<Constraint>,
    ) -> Result<ConstraintGraph> {
        // `root()` also rejects empty documents up front.
        doc.root()?;
        let nodes = doc.preorder();
        let mut points = Vec::with_capacity(nodes.len() * 2);
        for node in &nodes {
            points.push(EventPoint::begin(*node));
            points.push(EventPoint::end(*node));
        }
        Ok(ConstraintGraph {
            base: constraints,
            injected: Vec::new(),
            points,
            base_times: None,
        })
    }

    /// Adds one constraint on top of the derived set without invalidating
    /// the cached base fixpoint.
    pub fn inject(&mut self, constraint: Constraint) {
        self.injected.push(constraint);
    }

    /// Adds several constraints on top of the derived set.
    pub fn inject_all(&mut self, constraints: impl IntoIterator<Item = Constraint>) {
        self.injected.extend(constraints);
    }

    /// Removes every injected constraint, returning the graph to the pure
    /// document-derived set. The cached base fixpoint survives.
    pub fn retract_injected(&mut self) {
        self.injected.clear();
    }

    /// The base (document-derived) constraints.
    pub fn base_constraints(&self) -> &[Constraint] {
        &self.base
    }

    /// The currently injected constraints.
    pub fn injected_constraints(&self) -> &[Constraint] {
        &self.injected
    }

    /// All constraints, base first, in relaxation order.
    pub fn constraints(&self) -> impl Iterator<Item = &Constraint> {
        self.base.iter().chain(self.injected.iter())
    }

    /// Number of constraints (base plus injected).
    pub fn len(&self) -> usize {
        self.base.len() + self.injected.len()
    }

    /// True when the graph holds no constraints at all.
    pub fn is_empty(&self) -> bool {
        self.base.is_empty() && self.injected.is_empty()
    }

    /// Number of event points in the graph.
    pub fn point_count(&self) -> usize {
        self.points.len()
    }

    fn zero_times(&self) -> PointTimes {
        let mut times = PointTimes::with_capacity(self.points.len());
        for point in &self.points {
            times.insert(*point, TimeMs::ZERO);
        }
        times
    }

    /// Computes (and caches) the ASAP fixpoint of the base constraints.
    fn base_fixpoint(&mut self) -> Result<&PointTimes> {
        if self.base_times.is_none() {
            let mut times = self.zero_times();
            relax_in_place(&mut times, &self.base, None, "solve")?;
            self.base_times = Some(times);
        }
        Ok(self
            .base_times
            .as_ref()
            // repo_lint: allow(assigned in the branch directly above)
            .expect("base fixpoint was just computed"))
    }

    /// Relaxes the graph to its ASAP fixpoint.
    ///
    /// The fixpoint of the base constraints is computed once and cached;
    /// when constraints have been injected, relaxation warm-starts from the
    /// cached fixpoint and only iterates the (small) remaining distance.
    /// Returns [`SchedulerError::ConstraintCycle`] when the constraints
    /// force events ever later.
    pub fn relax(&mut self) -> Result<PointTimes> {
        self.base_fixpoint()?;
        let base = self
            .base_times
            .as_ref()
            // repo_lint: allow(base_fixpoint() above populated the cache)
            .expect("base fixpoint cached by base_fixpoint");
        if self.injected.is_empty() {
            return Ok(base.clone());
        }
        let mut times = base.clone();
        // The combined relaxation still iterates over every constraint (an
        // injected bound can propagate through base constraints), but it
        // starts at the base fixpoint instead of zero, so already-settled
        // regions of the graph converge immediately.
        let combined: Vec<&Constraint> = self.base.iter().chain(self.injected.iter()).collect();
        relax_with(&mut times, &combined, None, "solve")?;
        Ok(times)
    }

    /// Relaxes the graph with per-leaf startup latencies folded into every
    /// constraint that targets a leaf's begin point — the playback-side
    /// twin of [`ConstraintGraph::relax`], sharing the same core loop.
    ///
    /// This always runs cold (latencies change the bounds themselves, so
    /// the cached fixpoint does not apply).
    pub fn relax_with_latencies(&self, latencies: &HashMap<NodeId, i64>) -> Result<PointTimes> {
        let mut times = self.zero_times();
        let combined: Vec<&Constraint> = self.base.iter().chain(self.injected.iter()).collect();
        relax_with(&mut times, &combined, Some(latencies), "playback")?;
        Ok(times)
    }

    /// Relaxes the graph and assembles the full [`SolveResult`]: the ASAP
    /// schedule, the upper-bound (window) verification, and the constraint
    /// set the schedule was derived from.
    pub fn solve(
        &mut self,
        doc: &Document,
        resolver: &dyn DescriptorResolver,
    ) -> Result<SolveResult> {
        let times = self.relax()?;

        let mut violations = Vec::new();
        for constraint in self.constraints() {
            let source_time = times[&constraint.source];
            let actual = times[&constraint.target];
            if let Some(latest) = constraint.upper_bound(source_time) {
                if actual > latest {
                    violations.push(WindowViolation {
                        constraint: constraint.clone(),
                        reference: TimeMs(source_time.as_millis() + constraint.offset_ms),
                        latest,
                        actual,
                    });
                }
            }
        }

        let schedule = build_schedule(doc, resolver, &times)?;
        Ok(SolveResult {
            schedule,
            violations,
            constraints: self.constraints().cloned().collect(),
        })
    }
}

/// The single longest-path relaxation loop shared by the solver and the
/// playback simulator (formerly duplicated between `solver.rs` and
/// `player.rs`).
///
/// Repeatedly raises each constraint target to the constraint's lower bound
/// until nothing changes. When `latencies` is given, every bound on a begin
/// point is additionally pushed by that node's startup latency. A graph that
/// is still changing after `|points| + 1` passes contains a positive cycle
/// and is reported as [`SchedulerError::ConstraintCycle`] with the given
/// phase name.
pub(crate) fn relax_in_place(
    times: &mut PointTimes,
    constraints: &[Constraint],
    latencies: Option<&HashMap<NodeId, i64>>,
    phase: &'static str,
) -> Result<()> {
    let refs: Vec<&Constraint> = constraints.iter().collect();
    relax_with(times, &refs, latencies, phase)
}

fn relax_with(
    times: &mut PointTimes,
    constraints: &[&Constraint],
    latencies: Option<&HashMap<NodeId, i64>>,
    phase: &'static str,
) -> Result<()> {
    let max_passes = times.len() + 1;
    let mut changed = true;
    let mut passes = 0;
    while changed {
        changed = false;
        passes += 1;
        if passes > max_passes {
            return Err(SchedulerError::ConstraintCycle {
                phase,
                points: times.len(),
            });
        }
        for constraint in constraints {
            let source_time = match times.get(&constraint.source) {
                Some(t) => *t,
                None => continue,
            };
            let mut bound = constraint.lower_bound(source_time);
            if let Some(latencies) = latencies {
                if constraint.target.anchor == Anchor::Begin {
                    if let Some(latency) = latencies.get(&constraint.target.node) {
                        bound = TimeMs(bound.as_millis() + latency);
                    }
                }
            }
            let entry = times.entry(constraint.target).or_insert(TimeMs::ZERO);
            if bound > *entry {
                *entry = bound;
                changed = true;
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use cmif_core::arc::{Strictness, SyncArc};
    use cmif_core::prelude::*;
    use cmif_core::time::MediaTime;

    use crate::types::ConstraintOrigin;

    fn audio(key: &str, secs: i64) -> DataDescriptor {
        DataDescriptor::new(key, MediaKind::Audio, "pcm8").with_duration(TimeMs::from_secs(secs))
    }

    fn two_leaf_par() -> Document {
        DocumentBuilder::new("graph")
            .channel("audio", MediaKind::Audio)
            .channel("caption", MediaKind::Text)
            .descriptor(audio("a", 4))
            .root_par(|root| {
                root.ext("voice", "audio", "a");
                root.imm_text("line", "caption", "hi", 1_500);
            })
            .build()
            .unwrap()
    }

    fn arc_constraint(doc: &Document, source: &str, target: &str, offset_secs: i64) -> Constraint {
        let source = doc.find(source).unwrap();
        let target = doc.find(target).unwrap();
        Constraint {
            source: EventPoint::begin(source),
            target: EventPoint::begin(target),
            offset_ms: offset_secs * 1_000,
            min_delay_ms: 0,
            max_delay_ms: None,
            strictness: Strictness::Must,
            origin: ConstraintOrigin::Explicit {
                carrier: target,
                index: usize::MAX,
            },
        }
    }

    #[test]
    fn repeated_solves_of_one_graph_are_identical() {
        let doc = two_leaf_par();
        let mut graph =
            ConstraintGraph::derive(&doc, &doc.catalog, &ScheduleOptions::default()).unwrap();
        let first = graph.solve(&doc, &doc.catalog).unwrap();
        // The second solve reuses the cached base fixpoint.
        let second = graph.solve(&doc, &doc.catalog).unwrap();
        assert_eq!(first, second);
        let mut fresh =
            ConstraintGraph::derive(&doc, &doc.catalog, &ScheduleOptions::default()).unwrap();
        assert_eq!(fresh.solve(&doc, &doc.catalog).unwrap(), first);
    }

    #[test]
    fn injected_constraints_re_relax_without_re_deriving() {
        let doc = two_leaf_par();
        let mut graph =
            ConstraintGraph::derive(&doc, &doc.catalog, &ScheduleOptions::default()).unwrap();
        let line = doc.find("/line").unwrap();

        // Cold solve: the caption starts at t=0.
        let before = graph.solve(&doc, &doc.catalog).unwrap();
        assert_eq!(before.schedule.node_times[&line].0, TimeMs::ZERO);
        let base_len = graph.base_constraints().len();

        // Inject a "wait 2 s into the voice" constraint and re-relax: same
        // graph object, no re-derivation, new fixpoint.
        graph.inject(arc_constraint(&doc, "/voice", "/line", 2));
        let after = graph.solve(&doc, &doc.catalog).unwrap();
        assert_eq!(after.schedule.node_times[&line].0, TimeMs::from_secs(2));
        assert_eq!(graph.base_constraints().len(), base_len);
        assert_eq!(graph.injected_constraints().len(), 1);

        // Retracting the injection restores the original fixpoint.
        graph.retract_injected();
        let restored = graph.solve(&doc, &doc.catalog).unwrap();
        assert_eq!(restored.schedule.node_times[&line].0, TimeMs::ZERO);
    }

    #[test]
    fn warm_start_equals_cold_solve_of_the_combined_set() {
        let doc = two_leaf_par();
        let mut warm =
            ConstraintGraph::derive(&doc, &doc.catalog, &ScheduleOptions::default()).unwrap();
        warm.relax().unwrap(); // populate the base cache
        warm.inject(arc_constraint(&doc, "/voice", "/line", 3));
        let warm_result = warm.solve(&doc, &doc.catalog).unwrap();

        // Cold: derive and add the same arc through the document itself.
        let mut doc2 = two_leaf_par();
        let line = doc2.find("/line").unwrap();
        doc2.add_arc(
            line,
            SyncArc::hard_start("../voice", "").with_offset(MediaTime::seconds(3)),
        )
        .unwrap();
        let mut cold =
            ConstraintGraph::derive(&doc2, &doc2.catalog, &ScheduleOptions::default()).unwrap();
        let cold_result = cold.solve(&doc2, &doc2.catalog).unwrap();

        assert_eq!(
            warm_result.schedule.node_times[&line],
            cold_result.schedule.node_times[&line]
        );
        assert_eq!(
            warm_result.schedule.total_duration,
            cold_result.schedule.total_duration
        );
    }

    #[test]
    fn injected_cycle_is_detected_and_graph_stays_usable() {
        let doc = two_leaf_par();
        let mut graph =
            ConstraintGraph::derive(&doc, &doc.catalog, &ScheduleOptions::default()).unwrap();
        graph.inject(arc_constraint(&doc, "/voice", "/line", 1));
        graph.inject(arc_constraint(&doc, "/line", "/voice", 1));
        let err = graph.relax().unwrap_err();
        assert!(matches!(
            err,
            SchedulerError::ConstraintCycle { phase: "solve", .. }
        ));
        // The cycle lived in the injected set only: retract and recover.
        graph.retract_injected();
        assert!(graph.relax().is_ok());
    }

    #[test]
    fn latency_relaxation_pushes_begin_points_only() {
        let doc = two_leaf_par();
        let graph =
            ConstraintGraph::derive(&doc, &doc.catalog, &ScheduleOptions::default()).unwrap();
        let voice = doc.find("/voice").unwrap();
        let mut latencies = HashMap::new();
        latencies.insert(voice, 250i64);
        let times = graph.relax_with_latencies(&latencies).unwrap();
        assert_eq!(times[&EventPoint::begin(voice)], TimeMs::from_millis(250));
        // The leaf's rigid duration carries the latency to its end.
        assert_eq!(times[&EventPoint::end(voice)], TimeMs::from_millis(4_250));
    }

    #[test]
    fn accessors_report_sizes() {
        let doc = two_leaf_par();
        let mut graph =
            ConstraintGraph::derive(&doc, &doc.catalog, &ScheduleOptions::default()).unwrap();
        assert!(!graph.is_empty());
        assert_eq!(graph.point_count(), doc.preorder().len() * 2);
        let before = graph.len();
        graph.inject(arc_constraint(&doc, "/voice", "/line", 1));
        assert_eq!(graph.len(), before + 1);
        assert_eq!(graph.constraints().count(), graph.len());
    }
}
