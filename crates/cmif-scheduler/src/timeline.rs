//! Schedules and timeline rendering.
//!
//! A [`Schedule`] is the output of the solver: begin/end times for every
//! node plus a flat, per-leaf event list. [`Schedule::channel_timelines`]
//! regroups the events per channel — the columns of Figures 3 and 10 — and
//! [`Schedule::render_gantt`] draws a proportional text chart of them, which
//! is what the Figure 4/10 benches print when they regenerate the paper's
//! news-fragment artwork.

use std::collections::{BTreeMap, HashMap};
use std::fmt;

use cmif_core::channel::MediaKind;
use cmif_core::node::NodeId;
use cmif_core::symbol::Symbol;
use cmif_core::time::TimeMs;

/// One presented event on the timeline: a leaf node on its channel.
#[derive(Debug, Clone, PartialEq)]
pub struct TimelineEntry {
    /// The leaf node presented.
    pub node: NodeId,
    /// The node's interned name (or the `#<index>` node-id form when
    /// unnamed — a bounded vocabulary, unlike per-document paths).
    pub name: Symbol,
    /// The channel the event plays on.
    pub channel: Symbol,
    /// The medium presented.
    pub medium: MediaKind,
    /// Scheduled beginning.
    pub begin: TimeMs,
    /// Scheduled end.
    pub end: TimeMs,
}

impl TimelineEntry {
    /// The entry's scheduled duration.
    pub fn duration(&self) -> TimeMs {
        TimeMs(self.end.as_millis() - self.begin.as_millis())
    }

    /// True when two entries overlap in time.
    pub fn overlaps(&self, other: &TimelineEntry) -> bool {
        self.begin < other.end && other.begin < self.end
    }
}

impl fmt::Display for TimelineEntry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{} .. {}] {:<10} {} ({})",
            self.begin, self.end, self.channel, self.name, self.medium
        )
    }
}

/// The complete schedule of a document.
#[derive(Debug, Clone, PartialEq)]
pub struct Schedule {
    /// Per-leaf events, ordered by begin time.
    pub entries: Vec<TimelineEntry>,
    /// Begin and end times of every node (interior nodes included).
    pub node_times: HashMap<NodeId, (TimeMs, TimeMs)>,
    /// The end time of the root node.
    pub total_duration: TimeMs,
}

impl Schedule {
    /// Groups the entries per channel, keeping begin-time order inside each
    /// channel.
    pub fn channel_timelines(&self) -> BTreeMap<Symbol, Vec<&TimelineEntry>> {
        let mut out: BTreeMap<Symbol, Vec<&TimelineEntry>> = BTreeMap::new();
        for entry in &self.entries {
            out.entry(entry.channel).or_default().push(entry);
        }
        out
    }

    /// The events active at a given instant.
    pub fn active_at(&self, at: TimeMs) -> Vec<&TimelineEntry> {
        self.entries
            .iter()
            .filter(|e| e.begin <= at && at < e.end)
            .collect()
    }

    /// The maximum number of simultaneously active events on one channel.
    ///
    /// On a single channel events are serialized "in linear time order"
    /// (§3.1); a value greater than one means the schedule asks a channel to
    /// present two blocks at once, which a conflict detector reports as a
    /// device-class conflict.
    pub fn max_channel_concurrency(&self, channel: &str) -> usize {
        let Some(channel) = Symbol::lookup(channel) else {
            return 0;
        };
        let mut boundaries: Vec<(TimeMs, i64)> = Vec::new();
        for entry in self.entries.iter().filter(|e| e.channel == channel) {
            if entry.begin < entry.end {
                boundaries.push((entry.begin, 1));
                boundaries.push((entry.end, -1));
            }
        }
        boundaries.sort_by_key(|(t, delta)| (*t, *delta));
        let mut current = 0i64;
        let mut max = 0i64;
        for (_, delta) in boundaries {
            current += delta;
            max = max.max(current);
        }
        max.max(0) as usize
    }

    /// Peak number of simultaneously active events across all channels.
    pub fn peak_concurrency(&self) -> usize {
        let mut boundaries: Vec<(TimeMs, i64)> = Vec::new();
        for entry in &self.entries {
            if entry.begin < entry.end {
                boundaries.push((entry.begin, 1));
                boundaries.push((entry.end, -1));
            }
        }
        boundaries.sort_by_key(|(t, delta)| (*t, *delta));
        let mut current = 0i64;
        let mut max = 0i64;
        for (_, delta) in boundaries {
            current += delta;
            max = max.max(current);
        }
        max.max(0) as usize
    }

    /// Renders a proportional text Gantt chart: one row per event, grouped
    /// by channel, `width` characters spanning the whole document.
    pub fn render_gantt(&self, width: usize) -> String {
        let total = self.total_duration.as_millis().max(1);
        let width = width.max(10);
        let mut out = String::new();
        // Symbol order is intern order; render channels alphabetically so
        // charts stay stable and human-scannable.
        let mut timelines: Vec<(Symbol, Vec<&TimelineEntry>)> =
            self.channel_timelines().into_iter().collect();
        timelines.sort_by_key(|(channel, _)| channel.as_str());
        for (channel, entries) in timelines {
            out.push_str(&format!("{channel}\n"));
            for entry in entries {
                let start = (entry.begin.as_millis() * width as i64 / total) as usize;
                let end = (entry.end.as_millis() * width as i64 / total) as usize;
                let end = end.max(start + 1).min(width);
                let mut bar = String::with_capacity(width);
                bar.push_str(&" ".repeat(start));
                bar.push_str(&"#".repeat(end - start));
                bar.push_str(&" ".repeat(width - end));
                out.push_str(&format!("  |{bar}| {}\n", entry.name));
            }
        }
        out.push_str(&format!("total: {}\n", self.total_duration));
        out
    }

    /// Renders the schedule as a plain event table.
    pub fn render_table(&self) -> String {
        let mut out = String::new();
        out.push_str("begin      end        channel      event\n");
        for entry in &self.entries {
            out.push_str(&format!(
                "{:<10} {:<10} {:<12} {}\n",
                entry.begin.to_string(),
                entry.end.to_string(),
                entry.channel,
                entry.name
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cmif_core::node::NodeId;

    fn entry(name: &str, channel: &str, begin: i64, end: i64, index: u32) -> TimelineEntry {
        TimelineEntry {
            node: NodeId::from_index(index),
            name: Symbol::intern(name),
            channel: Symbol::intern(channel),
            medium: MediaKind::Text,
            begin: TimeMs::from_millis(begin),
            end: TimeMs::from_millis(end),
        }
    }

    fn schedule() -> Schedule {
        let entries = vec![
            entry("a", "audio", 0, 4_000, 1),
            entry("b", "caption", 0, 2_000, 2),
            entry("c", "caption", 2_000, 5_000, 3),
            entry("d", "audio", 4_000, 6_000, 4),
        ];
        let mut node_times = HashMap::new();
        for e in &entries {
            node_times.insert(e.node, (e.begin, e.end));
        }
        Schedule {
            entries,
            node_times,
            total_duration: TimeMs::from_millis(6_000),
        }
    }

    #[test]
    fn durations_and_overlap() {
        let a = entry("a", "audio", 0, 1_000, 1);
        let b = entry("b", "audio", 500, 1_500, 2);
        let c = entry("c", "audio", 1_000, 2_000, 3);
        assert_eq!(a.duration(), TimeMs::from_millis(1_000));
        assert!(a.overlaps(&b));
        assert!(!a.overlaps(&c));
    }

    #[test]
    fn channel_timelines_group_and_keep_order() {
        let s = schedule();
        let groups = s.channel_timelines();
        assert_eq!(groups[&Symbol::intern("audio")].len(), 2);
        assert_eq!(groups[&Symbol::intern("caption")].len(), 2);
        assert_eq!(groups[&Symbol::intern("caption")][0].name, "b");
        assert_eq!(groups[&Symbol::intern("caption")][1].name, "c");
    }

    #[test]
    fn active_at_finds_running_events() {
        let s = schedule();
        let names: Vec<_> = s
            .active_at(TimeMs::from_millis(2_500))
            .iter()
            .map(|e| e.name.as_str())
            .collect();
        assert_eq!(names, vec!["a", "c"]);
        assert!(s.active_at(TimeMs::from_millis(6_000)).is_empty());
    }

    #[test]
    fn concurrency_measures() {
        let s = schedule();
        assert_eq!(s.max_channel_concurrency("audio"), 1);
        assert_eq!(s.max_channel_concurrency("caption"), 1);
        assert_eq!(s.max_channel_concurrency("video"), 0);
        assert_eq!(s.peak_concurrency(), 2);
    }

    #[test]
    fn overlapping_channel_events_are_detected() {
        let mut s = schedule();
        s.entries.push(entry("e", "audio", 3_000, 5_000, 5));
        assert_eq!(s.max_channel_concurrency("audio"), 2);
    }

    #[test]
    fn gantt_renders_rows_for_every_event() {
        let s = schedule();
        let chart = s.render_gantt(40);
        assert_eq!(chart.matches('|').count(), 8); // two bars per event row
        assert!(chart.contains("audio"));
        assert!(chart.contains("caption"));
        assert!(chart.contains("total: 6s"));
    }

    #[test]
    fn table_lists_all_events() {
        let s = schedule();
        let table = s.render_table();
        assert_eq!(table.lines().count(), 5);
        assert!(table.contains("caption"));
    }

    #[test]
    fn entry_display() {
        let e = entry("intro", "video", 0, 1_000, 1);
        let text = e.to_string();
        assert!(text.contains("intro"));
        assert!(text.contains("video"));
    }
}
