//! Step-wise playback sessions.
//!
//! The old one-shot `play` entry point simulated a whole presentation run
//! inside one call. A real player, however, reacts to device timing *at
//! presentation time* (the paper's Figure 1 ends in exactly such a player),
//! and a server multiplexing many documents cannot afford a blocking loop
//! per document. [`PlayerSession`] is the incremental form: a small state
//! machine that is driven from outside with [`PlayerSession::tick`] and
//! reports what happened through [`PlayerSession::poll_events`].
//!
//! The causal timeline itself — every event's actual launch time under the
//! device's [`JitterModel`] — is computed once at session creation with the
//! same relaxation core the solver uses (see [`crate::graph`]), so a
//! session's final [`PlaybackReport`] is bit-identical to the one-shot
//! simulation for the same seed, no matter how the session is ticked,
//! paused or sought in between.

use std::collections::{HashMap, HashSet};
use std::mem;

use cmif_core::arc::Strictness;
use cmif_core::descriptor::DescriptorResolver;
use cmif_core::node::NodeId;
use cmif_core::symbol::Symbol;
use cmif_core::time::TimeMs;
use cmif_core::tree::{unassigned_channel, Document};

use crate::environment::{JitterModel, JitterSampler};
use crate::error::Result;
use crate::graph::{relax_in_place, PointTimes};
use crate::player::{PlaybackReport, PlayedEvent};
use crate::solver::SolveResult;
use crate::types::{Constraint, EventPoint};

/// The lifecycle of a playback session.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SessionState {
    /// Created but not yet ticked; the first tick anchors the wall clock.
    Ready,
    /// Advancing: ticks move the presentation position forward.
    Playing,
    /// Frozen: ticks are ignored until [`PlayerSession::resume`].
    Paused,
    /// The presentation has run to its end; the report is available.
    Finished,
}

/// One observable occurrence during a session, drained with
/// [`PlayerSession::poll_events`].
#[derive(Debug, Clone, PartialEq)]
pub enum PlaybackEvent {
    /// A leaf event was launched on its channel.
    Started {
        /// The leaf node presented.
        node: NodeId,
        /// The node's interned name.
        name: Symbol,
        /// The channel it plays on.
        channel: Symbol,
        /// The begin time the schedule intended.
        scheduled_begin: TimeMs,
        /// The begin time the simulated device achieved.
        at: TimeMs,
    },
    /// A leaf event finished presenting.
    Ended {
        /// The leaf node that finished.
        node: NodeId,
        /// The actual end time.
        at: TimeMs,
    },
    /// The session was paused at the given presentation position.
    Paused {
        /// Presentation position at the pause.
        at: TimeMs,
    },
    /// The session resumed from the given presentation position.
    Resumed {
        /// Presentation position at the resume.
        at: TimeMs,
    },
    /// The session jumped from one presentation position to another.
    Sought {
        /// Position before the jump.
        from: TimeMs,
        /// Position after the jump.
        to: TimeMs,
    },
    /// The presentation reached its end.
    Finished {
        /// The actual total duration.
        at: TimeMs,
    },
    /// A mid-playback revision swap re-scheduled the unplayed suffix.
    Revised {
        /// Presentation position (the tick boundary) the swap happened at.
        at: TimeMs,
    },
}

/// Which edge of a played event a timeline item marks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum ItemKind {
    Begin,
    End,
}

/// One deliverable point on the precomputed actual timeline.
#[derive(Debug, Clone, Copy)]
struct TimelineItem {
    at: TimeMs,
    kind: ItemKind,
    event: usize,
}

/// What a merged event contributes to the rebuilt timeline after a
/// mid-playback revision swap.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Fate {
    /// Begin and end already delivered: kept verbatim, no items.
    Closed,
    /// Begin delivered, end still pending: one end item.
    EndPending,
    /// New or re-scheduled event that lands before the swap boundary: in
    /// the report, but never delivered (its moment has passed).
    Skipped,
    /// Future event: begin and end items.
    Scheduled,
}

/// Zeroes every event point of the document and relaxes the causal
/// ("what actually happened") timeline under the given startup latencies.
fn causal_times(
    doc: &Document,
    constraints: &[Constraint],
    latencies: &HashMap<NodeId, i64>,
) -> Result<PointTimes> {
    let mut actual: PointTimes = HashMap::new();
    for node in doc.preorder() {
        actual.insert(EventPoint::begin(node), TimeMs::ZERO);
        actual.insert(EventPoint::end(node), TimeMs::ZERO);
    }
    relax_in_place(&mut actual, constraints, Some(latencies), "playback")?;
    Ok(actual)
}

/// Counts (must, may) window violations of the constraints against the
/// actual times.
fn count_violations(constraints: &[Constraint], actual: &PointTimes) -> (usize, usize) {
    let mut must_violations = 0;
    let mut may_violations = 0;
    for constraint in constraints {
        let source_time = match actual.get(&constraint.source) {
            Some(t) => *t,
            None => continue,
        };
        let target_time = match actual.get(&constraint.target) {
            Some(t) => *t,
            None => continue,
        };
        if !constraint.satisfied(source_time, target_time) {
            if constraint.strictness == Strictness::Must {
                must_violations += 1;
            } else {
                may_violations += 1;
            }
        }
    }
    (must_violations, may_violations)
}

/// Builds the report entry of one leaf from the causal times.
fn make_event(
    doc: &Document,
    result: &SolveResult,
    actual: &PointTimes,
    channels: &HashMap<NodeId, Symbol>,
    leaf: NodeId,
) -> Result<PlayedEvent> {
    let scheduled_begin = result
        .schedule
        .node_times
        .get(&leaf)
        .map(|(begin, _)| *begin)
        .unwrap_or(TimeMs::ZERO);
    let actual_begin = actual[&EventPoint::begin(leaf)];
    let actual_end = actual[&EventPoint::end(leaf)].max(actual_begin);
    let channel = channels
        .get(&leaf)
        .copied()
        .unwrap_or_else(unassigned_channel);
    // The `#<index>` fallback keeps the pool bounded (see the same
    // choice in `solver::build_schedule`).
    let name = match doc.node(leaf)?.name_symbol() {
        Some(name) => name,
        None => Symbol::from_owned(format!("{leaf}")),
    };
    Ok(PlayedEvent {
        node: leaf,
        name,
        channel,
        scheduled_begin,
        actual_begin,
        actual_end,
    })
}

/// Freeze-frame time: gaps between consecutive events on channels that
/// carry continuous media (video keeps its last frame on screen, audio
/// goes silent) — the mechanism Figure 10 appeals to.
fn freeze_frame(
    doc: &Document,
    resolver: &dyn DescriptorResolver,
    events: &[PlayedEvent],
) -> Result<i64> {
    let mut freeze_frame_ms = 0;
    let mut per_channel: HashMap<Symbol, Vec<&PlayedEvent>> = HashMap::new();
    for event in events {
        per_channel.entry(event.channel).or_default().push(event);
    }
    for (channel, channel_events) in per_channel {
        let continuous = match doc.channels.get_symbol(channel) {
            Some(def) => def.medium.is_continuous(),
            // Channels that only exist on nodes: judge by the medium of
            // the first event presented on them.
            None => channel_events
                .first()
                .map(|event| doc.medium_of(event.node, resolver))
                .transpose()?
                .map(|medium| medium.is_continuous())
                .unwrap_or(false),
        };
        if !continuous {
            continue;
        }
        for pair in channel_events.windows(2) {
            let gap = pair[1].actual_begin.as_millis() - pair[0].actual_end.as_millis();
            if gap > 0 {
                freeze_frame_ms += gap;
            }
        }
    }
    Ok(freeze_frame_ms)
}

/// Both timeline items of every event, in delivery order.
fn full_timeline(events: &[PlayedEvent]) -> Vec<TimelineItem> {
    let mut timeline = Vec::with_capacity(events.len() * 2);
    for (index, event) in events.iter().enumerate() {
        timeline.push(TimelineItem {
            at: event.actual_begin,
            kind: ItemKind::Begin,
            event: index,
        });
        timeline.push(TimelineItem {
            at: event.actual_end,
            kind: ItemKind::End,
            event: index,
        });
    }
    timeline.sort_by_key(|item| (item.at, item.kind, item.event));
    timeline
}

/// An incremental playback run of one solved document.
///
/// ```
/// use cmif_core::prelude::*;
/// use cmif_scheduler::{ConstraintGraph, JitterModel, PlayerSession, ScheduleOptions, SessionState};
///
/// # fn main() -> std::result::Result<(), cmif_scheduler::SchedulerError> {
/// let doc = DocumentBuilder::new("demo")
///     .channel("audio", MediaKind::Audio)
///     .descriptor(
///         DataDescriptor::new("speech", MediaKind::Audio, "pcm8")
///             .with_duration(TimeMs::from_secs(4)),
///     )
///     .root_seq(|root| {
///         root.ext("part-1", "audio", "speech");
///         root.ext("part-2", "audio", "speech");
///     })
///     .build()?;
/// let mut graph = ConstraintGraph::derive(&doc, &doc.catalog, &ScheduleOptions::default())?;
/// let result = graph.solve(&doc, &doc.catalog)?;
///
/// let mut session = PlayerSession::new(&doc, &result, &doc.catalog, &JitterModel::ideal())?;
/// let mut now = 0;
/// while session.tick(now)? != SessionState::Finished {
///     now += 1_000;
///     let _events = session.poll_events();
/// }
/// let report = session.report().expect("finished sessions have a report");
/// assert_eq!(report.total_duration, TimeMs::from_secs(8));
/// # Ok(()) }
/// ```
#[derive(Debug, Clone)]
pub struct PlayerSession {
    report: PlaybackReport,
    timeline: Vec<TimelineItem>,
    cursor: usize,
    position: TimeMs,
    wall_origin: Option<i64>,
    state: SessionState,
    pending: Vec<PlaybackEvent>,
    /// The device's jitter stream; revision swaps draw startup latencies for
    /// new leaves from it, re-jittered seeks resample the tail.
    sampler: JitterSampler,
    /// Sampled startup latency per leaf.
    latencies: HashMap<NodeId, i64>,
    /// Channel per leaf, as of the current revision.
    channels: HashMap<NodeId, Symbol>,
}

impl PlayerSession {
    /// Prepares a playback session: samples the device's startup latencies,
    /// relaxes the causal timeline and precomputes the final report.
    pub fn new(
        doc: &Document,
        result: &SolveResult,
        resolver: &dyn DescriptorResolver,
        jitter: &JitterModel,
    ) -> Result<PlayerSession> {
        let mut sampler = jitter.sampler();
        let leaves = doc.leaves();

        // Sample one startup latency per leaf, keyed by its channel. The
        // channel is a `Copy` symbol: fetched once, copied into the report
        // below — no per-leaf string clone anywhere in this pass.
        let mut latencies: HashMap<NodeId, i64> = HashMap::with_capacity(leaves.len());
        let mut channels: HashMap<NodeId, Symbol> = HashMap::with_capacity(leaves.len());
        for leaf in &leaves {
            let channel = doc.channel_of(*leaf)?.unwrap_or_else(unassigned_channel);
            latencies.insert(*leaf, sampler.sample(channel));
            channels.insert(*leaf, channel);
        }

        // Relax the same lower-bound constraint graph the solver used, with
        // each leaf's startup latency added to its begin point — the shared
        // relaxation core of `crate::graph`. The result is the causal "what
        // actually happened" timeline: a late controlling event pushes
        // everything it controls later, exactly like a slow device would.
        let actual = causal_times(doc, &result.constraints, &latencies)?;
        let (must_violations, may_violations) = count_violations(&result.constraints, &actual);

        // Build the per-event report.
        let mut events = Vec::with_capacity(leaves.len());
        for leaf in &leaves {
            events.push(make_event(doc, result, &actual, &channels, *leaf)?);
        }
        events.sort_by_key(|e| (e.actual_begin, e.node));

        let freeze_frame_ms = freeze_frame(doc, resolver, &events)?;
        let total_duration = events
            .iter()
            .map(|e| e.actual_end)
            .max()
            .unwrap_or(TimeMs::ZERO);

        let report = PlaybackReport {
            events,
            must_violations,
            may_violations,
            freeze_frame_ms,
            total_duration,
        };
        let timeline = full_timeline(&report.events);

        Ok(PlayerSession {
            report,
            timeline,
            cursor: 0,
            position: TimeMs::ZERO,
            wall_origin: None,
            state: SessionState::Ready,
            pending: Vec::new(),
            sampler,
            latencies,
            channels,
        })
    }

    /// The session's current state.
    pub fn state(&self) -> SessionState {
        self.state
    }

    /// The current presentation position.
    pub fn position(&self) -> TimeMs {
        self.position
    }

    /// The actual total duration of the presentation.
    pub fn total_duration(&self) -> TimeMs {
        self.report.total_duration
    }

    /// The final report, once the session has [`SessionState::Finished`].
    pub fn report(&self) -> Option<&PlaybackReport> {
        (self.state == SessionState::Finished).then_some(&self.report)
    }

    /// The report as it currently stands. Unlike [`PlayerSession::report`]
    /// this is available in any state — but a later revision swap or
    /// re-jittered seek may still rewrite the unplayed tail.
    pub fn report_preview(&self) -> &PlaybackReport {
        &self.report
    }

    /// Advances the session to wall-clock time `now_ms` (milliseconds on
    /// any monotone clock the caller chooses — typically a simulated one).
    ///
    /// The first tick anchors the wall clock to the current presentation
    /// position; later ticks advance the position by the wall time elapsed.
    /// Launched and finished events are queued for
    /// [`PlayerSession::poll_events`]. Returns the state after the tick.
    pub fn tick(&mut self, now_ms: i64) -> Result<SessionState> {
        match self.state {
            SessionState::Finished | SessionState::Paused => return Ok(self.state),
            SessionState::Ready => {
                self.state = SessionState::Playing;
            }
            SessionState::Playing => {}
        }
        let origin = *self
            .wall_origin
            .get_or_insert(now_ms - self.position.as_millis());
        let target = TimeMs(now_ms - origin);
        if target > self.position {
            self.position = target;
        }
        self.deliver_due();
        Ok(self.state)
    }

    /// Pauses the session at wall-clock time `now_ms` (events due up to the
    /// pause position are still delivered).
    pub fn pause(&mut self, now_ms: i64) -> Result<SessionState> {
        if self.state == SessionState::Playing {
            self.tick(now_ms)?;
            if self.state == SessionState::Playing {
                self.state = SessionState::Paused;
                self.pending
                    .push(PlaybackEvent::Paused { at: self.position });
            }
        }
        Ok(self.state)
    }

    /// Resumes a paused session at wall-clock time `now_ms`: the
    /// presentation position continues where it was frozen.
    pub fn resume(&mut self, now_ms: i64) -> SessionState {
        if self.state == SessionState::Paused {
            self.wall_origin = Some(now_ms - self.position.as_millis());
            self.state = SessionState::Playing;
            self.pending
                .push(PlaybackEvent::Resumed { at: self.position });
        }
        self.state
    }

    /// Jumps to a presentation position. Events strictly before the target
    /// are skipped (seeking forward) or re-armed for delivery (seeking
    /// backward); the wall clock re-anchors on the next tick. A finished
    /// session becomes [`SessionState::Ready`] again so its tail can be
    /// replayed — the report is unaffected.
    pub fn seek(&mut self, to: TimeMs) {
        let from = self.position;
        self.position = to;
        self.wall_origin = None;
        self.cursor = self.timeline.partition_point(|item| item.at < to);
        if self.state == SessionState::Finished {
            self.state = SessionState::Ready;
        }
        self.pending.push(PlaybackEvent::Sought { from, to });
    }

    /// Swaps the session onto a new document revision at the current
    /// position (the tick boundary).
    ///
    /// Delivered history is never rewritten: every event whose `Started`
    /// was already polled keeps its begin time (and its end time too, once
    /// `Ended` was polled). The unplayed suffix is re-scheduled from the new
    /// revision's solve:
    ///
    /// * leaves that began but did not end keep playing; their end moves to
    ///   the new revision's end time, clamped to the boundary (a removed
    ///   leaf ends *at* the boundary — cut off, not erased);
    /// * un-begun leaves that the revision removed disappear from the
    ///   report;
    /// * new leaves sample a startup latency from the session's jitter
    ///   stream; a new event whose time lands before the boundary stays in
    ///   the report but is never delivered — its moment has passed;
    /// * violation counts are recomputed against the new revision's causal
    ///   times, and freeze-frame / total duration against the merged events.
    ///
    /// The rebuilt timeline holds only undelivered items, so replay-by-seek
    /// after a swap covers the unplayed suffix, not the rewritten history.
    /// A [`PlaybackEvent::Revised`] marks the swap in the event stream.
    pub fn swap_revision(
        &mut self,
        doc: &Document,
        result: &SolveResult,
        resolver: &dyn DescriptorResolver,
    ) -> Result<()> {
        let boundary = self.position;

        // What was actually delivered so far (timeline items behind the
        // cursor) — the history that must survive verbatim.
        let mut begun: HashSet<NodeId> = HashSet::new();
        let mut ended: HashSet<NodeId> = HashSet::new();
        for item in &self.timeline[..self.cursor] {
            let node = self.report.events[item.event].node;
            match item.kind {
                ItemKind::Begin => {
                    begun.insert(node);
                }
                ItemKind::End => {
                    ended.insert(node);
                }
            }
        }

        let leaves = doc.leaves();
        let leaf_set: HashSet<NodeId> = leaves.iter().copied().collect();
        // Surviving leaves keep their sampled latency; new leaves (and
        // un-begun leaves whose channel changed) draw the next sample from
        // the session's jitter stream.
        for leaf in &leaves {
            let channel = doc.channel_of(*leaf)?.unwrap_or_else(unassigned_channel);
            let rechannelled = self.channels.get(leaf) != Some(&channel);
            if !self.latencies.contains_key(leaf) || (rechannelled && !begun.contains(leaf)) {
                self.latencies.insert(*leaf, self.sampler.sample(channel));
            }
            self.channels.insert(*leaf, channel);
        }
        self.latencies
            .retain(|node, _| leaf_set.contains(node) || begun.contains(node));
        self.channels
            .retain(|node, _| leaf_set.contains(node) || begun.contains(node));

        let actual = causal_times(doc, &result.constraints, &self.latencies)?;
        let (must_violations, may_violations) = count_violations(&result.constraints, &actual);

        // Merge delivered history with the re-scheduled suffix.
        let mut merged: Vec<(PlayedEvent, Fate)> = Vec::new();
        for event in &self.report.events {
            if !begun.contains(&event.node) {
                continue;
            }
            let mut kept = event.clone();
            let fate = if ended.contains(&event.node) {
                Fate::Closed
            } else {
                kept.actual_end = if leaf_set.contains(&event.node) {
                    actual[&EventPoint::end(event.node)].max(boundary)
                } else {
                    boundary
                };
                Fate::EndPending
            };
            merged.push((kept, fate));
        }
        for leaf in &leaves {
            if begun.contains(leaf) {
                continue;
            }
            let event = make_event(doc, result, &actual, &self.channels, *leaf)?;
            let fate = if event.actual_begin < boundary {
                Fate::Skipped
            } else {
                Fate::Scheduled
            };
            merged.push((event, fate));
        }
        merged.sort_by_key(|(event, _)| (event.actual_begin, event.node));

        let events: Vec<PlayedEvent> = merged.iter().map(|(event, _)| event.clone()).collect();
        let freeze_frame_ms = freeze_frame(doc, resolver, &events)?;
        let total_duration = events
            .iter()
            .map(|e| e.actual_end)
            .max()
            .unwrap_or(TimeMs::ZERO);

        let mut timeline = Vec::new();
        for (index, (event, fate)) in merged.iter().enumerate() {
            match fate {
                Fate::Closed | Fate::Skipped => {}
                Fate::EndPending => timeline.push(TimelineItem {
                    at: event.actual_end,
                    kind: ItemKind::End,
                    event: index,
                }),
                Fate::Scheduled => {
                    timeline.push(TimelineItem {
                        at: event.actual_begin,
                        kind: ItemKind::Begin,
                        event: index,
                    });
                    timeline.push(TimelineItem {
                        at: event.actual_end,
                        kind: ItemKind::End,
                        event: index,
                    });
                }
            }
        }
        timeline.sort_by_key(|item| (item.at, item.kind, item.event));

        self.report = PlaybackReport {
            events,
            must_violations,
            may_violations,
            freeze_frame_ms,
            total_duration,
        };
        self.timeline = timeline;
        self.cursor = 0;
        if self.state == SessionState::Finished {
            // The swap may have appended new material past the old end.
            self.state = SessionState::Ready;
            self.wall_origin = None;
        }
        self.pending.push(PlaybackEvent::Revised { at: boundary });
        Ok(())
    }

    /// Seeks to `to` with fresh jitter for the unplayed tail: every leaf
    /// whose begin lies at or past the target resamples its startup latency
    /// from the session's jitter stream, and the causal timeline is
    /// re-relaxed — the head of the presentation keeps its times (its
    /// latencies are untouched), the tail lands on newly jittered ones.
    ///
    /// `doc` and `result` must be the revision the session is playing.
    pub fn seek_rejittered(
        &mut self,
        doc: &Document,
        result: &SolveResult,
        resolver: &dyn DescriptorResolver,
        to: TimeMs,
    ) -> Result<()> {
        for event in &self.report.events {
            if event.actual_begin >= to {
                if let Some(channel) = self.channels.get(&event.node).copied() {
                    self.latencies
                        .insert(event.node, self.sampler.sample(channel));
                }
            }
        }
        let actual = causal_times(doc, &result.constraints, &self.latencies)?;
        let (must_violations, may_violations) = count_violations(&result.constraints, &actual);
        let mut events = Vec::with_capacity(doc.leaves().len());
        for leaf in doc.leaves() {
            events.push(make_event(doc, result, &actual, &self.channels, leaf)?);
        }
        events.sort_by_key(|e| (e.actual_begin, e.node));
        let freeze_frame_ms = freeze_frame(doc, resolver, &events)?;
        let total_duration = events
            .iter()
            .map(|e| e.actual_end)
            .max()
            .unwrap_or(TimeMs::ZERO);
        self.report = PlaybackReport {
            events,
            must_violations,
            may_violations,
            freeze_frame_ms,
            total_duration,
        };
        self.timeline = full_timeline(&self.report.events);
        self.seek(to);
        Ok(())
    }

    /// Drains the events that occurred since the last poll.
    pub fn poll_events(&mut self) -> Vec<PlaybackEvent> {
        mem::take(&mut self.pending)
    }

    /// Runs the remainder of the session in one step and returns the final
    /// report (the convenience the deprecated one-shot `play` is built on).
    pub fn run_to_completion(mut self) -> PlaybackReport {
        self.position = self.report.total_duration;
        if self.state == SessionState::Paused {
            self.state = SessionState::Playing;
        }
        self.deliver_due();
        self.report
    }

    fn deliver_due(&mut self) {
        while let Some(item) = self.timeline.get(self.cursor) {
            if item.at > self.position {
                break;
            }
            let event = &self.report.events[item.event];
            self.pending.push(match item.kind {
                ItemKind::Begin => PlaybackEvent::Started {
                    node: event.node,
                    name: event.name,
                    channel: event.channel,
                    scheduled_begin: event.scheduled_begin,
                    at: event.actual_begin,
                },
                ItemKind::End => PlaybackEvent::Ended {
                    node: event.node,
                    at: event.actual_end,
                },
            });
            self.cursor += 1;
        }
        if self.cursor == self.timeline.len() && self.position >= self.report.total_duration {
            self.state = SessionState::Finished;
            self.pending.push(PlaybackEvent::Finished {
                at: self.report.total_duration,
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::ConstraintGraph;
    use crate::types::ScheduleOptions;
    use cmif_core::prelude::*;

    fn solved_doc() -> (Document, SolveResult) {
        let doc = DocumentBuilder::new("session")
            .channel("audio", MediaKind::Audio)
            .descriptor(
                DataDescriptor::new("speech", MediaKind::Audio, "pcm8")
                    .with_duration(TimeMs::from_secs(2)),
            )
            .root_seq(|root| {
                root.ext("first", "audio", "speech");
                root.ext("second", "audio", "speech");
            })
            .build()
            .unwrap();
        let result = ConstraintGraph::derive(&doc, &doc.catalog, &ScheduleOptions::default())
            .unwrap()
            .solve(&doc, &doc.catalog)
            .unwrap();
        (doc, result)
    }

    fn session(doc: &Document, result: &SolveResult, jitter: &JitterModel) -> PlayerSession {
        PlayerSession::new(doc, result, &doc.catalog, jitter).unwrap()
    }

    #[test]
    fn ticking_to_the_end_finishes_and_reports() {
        let (doc, result) = solved_doc();
        let mut s = session(&doc, &result, &JitterModel::ideal());
        assert_eq!(s.state(), SessionState::Ready);
        assert!(s.report().is_none());
        assert_eq!(s.tick(0).unwrap(), SessionState::Playing);
        let started: Vec<_> = s.poll_events();
        assert!(matches!(started[0], PlaybackEvent::Started { .. }));
        assert_eq!(s.tick(1_000).unwrap(), SessionState::Playing);
        assert_eq!(s.tick(4_000).unwrap(), SessionState::Finished);
        let report = s.report().unwrap();
        assert_eq!(report.total_duration, TimeMs::from_secs(4));
        assert_eq!(report.events.len(), 2);
    }

    #[test]
    fn events_arrive_in_actual_time_order_exactly_once() {
        let (doc, result) = solved_doc();
        let mut s = session(&doc, &result, &JitterModel::ideal());
        let mut starts = Vec::new();
        let mut now = 0;
        loop {
            let state = s.tick(now).unwrap();
            for event in s.poll_events() {
                if let PlaybackEvent::Started { at, .. } = event {
                    starts.push(at);
                }
            }
            if state == SessionState::Finished {
                break;
            }
            now += 500;
        }
        assert_eq!(starts, vec![TimeMs::ZERO, TimeMs::from_secs(2)]);
    }

    #[test]
    fn pause_freezes_the_position_against_wall_time() {
        let (doc, result) = solved_doc();
        let mut s = session(&doc, &result, &JitterModel::ideal());
        s.tick(0).unwrap();
        s.pause(500).unwrap();
        assert_eq!(s.state(), SessionState::Paused);
        // Wall time marches on; the position does not.
        assert_eq!(s.tick(10_000).unwrap(), SessionState::Paused);
        assert_eq!(s.position(), TimeMs::from_millis(500));
        // Resume re-anchors: 3.5 s of playing remain.
        s.resume(60_000);
        assert_eq!(s.tick(63_499).unwrap(), SessionState::Playing);
        assert_eq!(s.tick(63_500).unwrap(), SessionState::Finished);
        let kinds: Vec<_> = s.poll_events();
        assert!(kinds
            .iter()
            .any(|e| matches!(e, PlaybackEvent::Finished { .. })));
    }

    #[test]
    fn seek_skips_events_before_the_target() {
        let (doc, result) = solved_doc();
        let mut s = session(&doc, &result, &JitterModel::ideal());
        s.seek(TimeMs::from_secs(3));
        s.tick(0).unwrap();
        let events = s.poll_events();
        // The first leaf (begin 0, end 2 s) is skipped entirely; the second
        // leaf's begin (2 s) is also before the target.
        assert!(events
            .iter()
            .all(|e| !matches!(e, PlaybackEvent::Started { at: TimeMs(0), .. })));
        assert!(matches!(events[0], PlaybackEvent::Sought { .. }));
        assert_eq!(s.tick(1_000).unwrap(), SessionState::Finished);
    }

    #[test]
    fn run_to_completion_matches_a_ticked_session() {
        let (doc, result) = solved_doc();
        let jitter = JitterModel::uniform(300, 17);
        let one_shot = session(&doc, &result, &jitter).run_to_completion();
        let mut ticked = session(&doc, &result, &jitter);
        let mut now = 0;
        while ticked.tick(now).unwrap() != SessionState::Finished {
            now += 250;
            ticked.poll_events();
        }
        assert_eq!(ticked.report(), Some(&one_shot));
    }

    fn solve(doc: &Document) -> SolveResult {
        ConstraintGraph::derive(doc, &doc.catalog, &ScheduleOptions::default())
            .unwrap()
            .solve(doc, &doc.catalog)
            .unwrap()
    }

    #[test]
    fn swap_revision_preserves_delivered_history() {
        use cmif_core::edit::{DocRevision, Edit, NodeSpec};
        use std::sync::Arc;

        let (doc, result) = solved_doc();
        let root = doc.root().unwrap();
        let mut s = session(&doc, &result, &JitterModel::ideal());
        // Play past the first leaf's begin (0 ms) and end (2 s), into the
        // second leaf (begin 2 s).
        s.tick(0).unwrap();
        s.tick(2_500).unwrap();
        let before: Vec<_> = s.poll_events();
        assert!(before.iter().any(
            |e| matches!(e, PlaybackEvent::Started { at, .. } if *at == TimeMs::from_secs(2))
        ));

        // Append a third part mid-broadcast.
        let rev = DocRevision::initial(Arc::new(doc.clone()));
        let (next, _) = rev
            .apply(&Edit::InsertSubtree {
                parent: root,
                spec: NodeSpec::ext("third", "speech").on_channel("audio"),
            })
            .unwrap();
        let new_doc = next.doc().clone();
        let new_result = solve(&new_doc);
        s.swap_revision(&new_doc, &new_result, &new_doc.catalog)
            .unwrap();

        let swap_events = s.poll_events();
        assert!(swap_events.iter().any(
            |e| matches!(e, PlaybackEvent::Revised { at } if *at == TimeMs::from_millis(2_500))
        ));
        // Delivered history is untouched in the report.
        let report_events = &s.report_preview().events;
        assert_eq!(report_events.len(), 3);
        assert_eq!(report_events[0].actual_begin, TimeMs::ZERO);
        assert_eq!(report_events[0].actual_end, TimeMs::from_secs(2));
        // Ticking on delivers the rest, including the new third part, and
        // nothing that was already polled is re-delivered.
        s.tick(4_000).unwrap();
        s.tick(6_000).unwrap();
        assert_eq!(s.state(), SessionState::Finished);
        let after: Vec<_> = s.poll_events();
        let restarted = after
            .iter()
            .filter(|e| matches!(e, PlaybackEvent::Started { at, .. } if *at < TimeMs::from_millis(2_500)))
            .count();
        assert_eq!(restarted, 0, "already-fired Started events never repeat");
        assert!(after.iter().any(
            |e| matches!(e, PlaybackEvent::Started { at, .. } if *at == TimeMs::from_secs(4))
        ));
        assert_eq!(s.total_duration(), TimeMs::from_secs(6));
    }

    #[test]
    fn swap_revision_cuts_a_removed_playing_leaf_at_the_boundary() {
        use cmif_core::edit::{DocRevision, Edit};
        use std::sync::Arc;

        let (doc, result) = solved_doc();
        let second = doc.find("/second").unwrap();
        let mut s = session(&doc, &result, &JitterModel::ideal());
        // Into the second leaf (2 s – 4 s).
        s.tick(0).unwrap();
        s.tick(3_000).unwrap();
        s.poll_events();

        let rev = DocRevision::initial(Arc::new(doc.clone()));
        let (next, _) = rev.apply(&Edit::RemoveSubtree { node: second }).unwrap();
        let new_doc = next.doc().clone();
        let new_result = solve(&new_doc);
        s.swap_revision(&new_doc, &new_result, &new_doc.catalog)
            .unwrap();

        let report = s.report_preview();
        let cut = report
            .events
            .iter()
            .find(|e| e.node == second)
            .expect("begun leaf stays in the report");
        assert_eq!(cut.actual_end, TimeMs::from_secs(3), "cut at the boundary");
        s.tick(3_000).unwrap();
        assert_eq!(s.state(), SessionState::Finished);
        let tail = s.poll_events();
        assert!(tail
            .iter()
            .any(|e| matches!(e, PlaybackEvent::Ended { node, at } if *node == second && *at == TimeMs::from_secs(3))));
    }

    #[test]
    fn seek_rejittered_resamples_only_the_tail() {
        let (doc, result) = solved_doc();
        let jitter = JitterModel::uniform(400, 99);
        let mut s = session(&doc, &result, &jitter);
        let head_begin = s.report_preview().events[0].actual_begin;
        s.tick(0).unwrap();
        s.seek_rejittered(&doc, &result, &doc.catalog, TimeMs::from_secs(2))
            .unwrap();
        let report = s.report_preview();
        assert_eq!(
            report.events[0].actual_begin, head_begin,
            "head keeps its jitter"
        );
        // The session still runs to completion on the re-jittered timeline.
        let mut now = 0;
        while s.tick(now).unwrap() != SessionState::Finished {
            now += 500;
            s.poll_events();
        }
    }

    #[test]
    fn finished_session_can_replay_its_tail_after_seek() {
        let (doc, result) = solved_doc();
        let mut s = session(&doc, &result, &JitterModel::ideal());
        s.tick(0).unwrap();
        s.tick(5_000).unwrap();
        assert_eq!(s.state(), SessionState::Finished);
        s.poll_events();
        s.seek(TimeMs::from_secs(2));
        assert_eq!(s.state(), SessionState::Ready);
        assert_eq!(s.tick(0).unwrap(), SessionState::Playing);
        let replayed = s.poll_events();
        assert!(replayed.iter().any(
            |e| matches!(e, PlaybackEvent::Started { at, .. } if *at == TimeMs::from_secs(2))
        ));
        assert_eq!(s.tick(2_000).unwrap(), SessionState::Finished);
    }
}
