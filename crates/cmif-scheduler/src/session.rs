//! Step-wise playback sessions.
//!
//! The old one-shot `play` entry point simulated a whole presentation run
//! inside one call. A real player, however, reacts to device timing *at
//! presentation time* (the paper's Figure 1 ends in exactly such a player),
//! and a server multiplexing many documents cannot afford a blocking loop
//! per document. [`PlayerSession`] is the incremental form: a small state
//! machine that is driven from outside with [`PlayerSession::tick`] and
//! reports what happened through [`PlayerSession::poll_events`].
//!
//! The causal timeline itself — every event's actual launch time under the
//! device's [`JitterModel`] — is computed once at session creation with the
//! same relaxation core the solver uses (see [`crate::graph`]), so a
//! session's final [`PlaybackReport`] is bit-identical to the one-shot
//! simulation for the same seed, no matter how the session is ticked,
//! paused or sought in between.

use std::collections::HashMap;
use std::mem;

use cmif_core::arc::Strictness;
use cmif_core::descriptor::DescriptorResolver;
use cmif_core::node::NodeId;
use cmif_core::symbol::Symbol;
use cmif_core::time::TimeMs;
use cmif_core::tree::{unassigned_channel, Document};

use crate::environment::JitterModel;
use crate::error::Result;
use crate::graph::relax_in_place;
use crate::player::{PlaybackReport, PlayedEvent};
use crate::solver::SolveResult;
use crate::types::EventPoint;

/// The lifecycle of a playback session.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SessionState {
    /// Created but not yet ticked; the first tick anchors the wall clock.
    Ready,
    /// Advancing: ticks move the presentation position forward.
    Playing,
    /// Frozen: ticks are ignored until [`PlayerSession::resume`].
    Paused,
    /// The presentation has run to its end; the report is available.
    Finished,
}

/// One observable occurrence during a session, drained with
/// [`PlayerSession::poll_events`].
#[derive(Debug, Clone, PartialEq)]
pub enum PlaybackEvent {
    /// A leaf event was launched on its channel.
    Started {
        /// The leaf node presented.
        node: NodeId,
        /// The node's interned name.
        name: Symbol,
        /// The channel it plays on.
        channel: Symbol,
        /// The begin time the schedule intended.
        scheduled_begin: TimeMs,
        /// The begin time the simulated device achieved.
        at: TimeMs,
    },
    /// A leaf event finished presenting.
    Ended {
        /// The leaf node that finished.
        node: NodeId,
        /// The actual end time.
        at: TimeMs,
    },
    /// The session was paused at the given presentation position.
    Paused {
        /// Presentation position at the pause.
        at: TimeMs,
    },
    /// The session resumed from the given presentation position.
    Resumed {
        /// Presentation position at the resume.
        at: TimeMs,
    },
    /// The session jumped from one presentation position to another.
    Sought {
        /// Position before the jump.
        from: TimeMs,
        /// Position after the jump.
        to: TimeMs,
    },
    /// The presentation reached its end.
    Finished {
        /// The actual total duration.
        at: TimeMs,
    },
}

/// Which edge of a played event a timeline item marks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum ItemKind {
    Begin,
    End,
}

/// One deliverable point on the precomputed actual timeline.
#[derive(Debug, Clone, Copy)]
struct TimelineItem {
    at: TimeMs,
    kind: ItemKind,
    event: usize,
}

/// An incremental playback run of one solved document.
///
/// ```
/// use cmif_core::prelude::*;
/// use cmif_scheduler::{ConstraintGraph, JitterModel, PlayerSession, ScheduleOptions, SessionState};
///
/// # fn main() -> std::result::Result<(), cmif_scheduler::SchedulerError> {
/// let doc = DocumentBuilder::new("demo")
///     .channel("audio", MediaKind::Audio)
///     .descriptor(
///         DataDescriptor::new("speech", MediaKind::Audio, "pcm8")
///             .with_duration(TimeMs::from_secs(4)),
///     )
///     .root_seq(|root| {
///         root.ext("part-1", "audio", "speech");
///         root.ext("part-2", "audio", "speech");
///     })
///     .build()?;
/// let mut graph = ConstraintGraph::derive(&doc, &doc.catalog, &ScheduleOptions::default())?;
/// let result = graph.solve(&doc, &doc.catalog)?;
///
/// let mut session = PlayerSession::new(&doc, &result, &doc.catalog, &JitterModel::ideal())?;
/// let mut now = 0;
/// while session.tick(now)? != SessionState::Finished {
///     now += 1_000;
///     let _events = session.poll_events();
/// }
/// let report = session.report().expect("finished sessions have a report");
/// assert_eq!(report.total_duration, TimeMs::from_secs(8));
/// # Ok(()) }
/// ```
#[derive(Debug, Clone)]
pub struct PlayerSession {
    report: PlaybackReport,
    timeline: Vec<TimelineItem>,
    cursor: usize,
    position: TimeMs,
    wall_origin: Option<i64>,
    state: SessionState,
    pending: Vec<PlaybackEvent>,
}

impl PlayerSession {
    /// Prepares a playback session: samples the device's startup latencies,
    /// relaxes the causal timeline and precomputes the final report.
    pub fn new(
        doc: &Document,
        result: &SolveResult,
        resolver: &dyn DescriptorResolver,
        jitter: &JitterModel,
    ) -> Result<PlayerSession> {
        let mut sampler = jitter.sampler();
        let leaves = doc.leaves();

        // Sample one startup latency per leaf, keyed by its channel. The
        // channel is a `Copy` symbol: fetched once, copied into the report
        // below — no per-leaf string clone anywhere in this pass.
        let mut latencies: HashMap<NodeId, i64> = HashMap::with_capacity(leaves.len());
        let mut channels: HashMap<NodeId, Symbol> = HashMap::with_capacity(leaves.len());
        for leaf in &leaves {
            let channel = doc.channel_of(*leaf)?.unwrap_or_else(unassigned_channel);
            latencies.insert(*leaf, sampler.sample(channel));
            channels.insert(*leaf, channel);
        }

        // Relax the same lower-bound constraint graph the solver used, with
        // each leaf's startup latency added to its begin point — the shared
        // relaxation core of `crate::graph`. The result is the causal "what
        // actually happened" timeline: a late controlling event pushes
        // everything it controls later, exactly like a slow device would.
        let mut actual: HashMap<EventPoint, TimeMs> = HashMap::new();
        for node in doc.preorder() {
            actual.insert(EventPoint::begin(node), TimeMs::ZERO);
            actual.insert(EventPoint::end(node), TimeMs::ZERO);
        }
        relax_in_place(
            &mut actual,
            &result.constraints,
            Some(&latencies),
            "playback",
        )?;

        // Count window violations against the actual times.
        let mut must_violations = 0;
        let mut may_violations = 0;
        for constraint in &result.constraints {
            let source_time = actual[&constraint.source];
            let target_time = actual[&constraint.target];
            if !constraint.satisfied(source_time, target_time) {
                if constraint.strictness == Strictness::Must {
                    must_violations += 1;
                } else {
                    may_violations += 1;
                }
            }
        }

        // Build the per-event report.
        let mut events = Vec::with_capacity(leaves.len());
        for leaf in &leaves {
            let scheduled_begin = result
                .schedule
                .node_times
                .get(leaf)
                .map(|(begin, _)| *begin)
                .unwrap_or(TimeMs::ZERO);
            let actual_begin = actual[&EventPoint::begin(*leaf)];
            let actual_end = actual[&EventPoint::end(*leaf)].max(actual_begin);
            let channel = channels
                .get(leaf)
                .copied()
                .unwrap_or_else(unassigned_channel);
            // The `#<index>` fallback keeps the pool bounded (see the same
            // choice in `solver::build_schedule`).
            let name = match doc.node(*leaf)?.name_symbol() {
                Some(name) => name,
                None => Symbol::from_owned(format!("{leaf}")),
            };
            events.push(PlayedEvent {
                node: *leaf,
                name,
                channel,
                scheduled_begin,
                actual_begin,
                actual_end,
            });
        }
        events.sort_by_key(|e| (e.actual_begin, e.node));

        // Freeze-frame time: gaps between consecutive events on channels
        // that carry continuous media (video keeps its last frame on screen,
        // audio goes silent) — the mechanism Figure 10 appeals to.
        let mut freeze_frame_ms = 0;
        let mut per_channel: HashMap<Symbol, Vec<&PlayedEvent>> = HashMap::new();
        for event in &events {
            per_channel.entry(event.channel).or_default().push(event);
        }
        for (channel, channel_events) in per_channel {
            let continuous = match doc.channels.get_symbol(channel) {
                Some(def) => def.medium.is_continuous(),
                // Channels that only exist on nodes: judge by the medium of
                // the first event presented on them.
                None => channel_events
                    .first()
                    .map(|event| doc.medium_of(event.node, resolver))
                    .transpose()?
                    .map(|medium| medium.is_continuous())
                    .unwrap_or(false),
            };
            if !continuous {
                continue;
            }
            for pair in channel_events.windows(2) {
                let gap = pair[1].actual_begin.as_millis() - pair[0].actual_end.as_millis();
                if gap > 0 {
                    freeze_frame_ms += gap;
                }
            }
        }

        let total_duration = events
            .iter()
            .map(|e| e.actual_end)
            .max()
            .unwrap_or(TimeMs::ZERO);

        let report = PlaybackReport {
            events,
            must_violations,
            may_violations,
            freeze_frame_ms,
            total_duration,
        };

        let mut timeline = Vec::with_capacity(report.events.len() * 2);
        for (index, event) in report.events.iter().enumerate() {
            timeline.push(TimelineItem {
                at: event.actual_begin,
                kind: ItemKind::Begin,
                event: index,
            });
            timeline.push(TimelineItem {
                at: event.actual_end,
                kind: ItemKind::End,
                event: index,
            });
        }
        timeline.sort_by_key(|item| (item.at, item.kind, item.event));

        Ok(PlayerSession {
            report,
            timeline,
            cursor: 0,
            position: TimeMs::ZERO,
            wall_origin: None,
            state: SessionState::Ready,
            pending: Vec::new(),
        })
    }

    /// The session's current state.
    pub fn state(&self) -> SessionState {
        self.state
    }

    /// The current presentation position.
    pub fn position(&self) -> TimeMs {
        self.position
    }

    /// The actual total duration of the presentation.
    pub fn total_duration(&self) -> TimeMs {
        self.report.total_duration
    }

    /// The final report, once the session has [`SessionState::Finished`].
    pub fn report(&self) -> Option<&PlaybackReport> {
        (self.state == SessionState::Finished).then_some(&self.report)
    }

    /// Advances the session to wall-clock time `now_ms` (milliseconds on
    /// any monotone clock the caller chooses — typically a simulated one).
    ///
    /// The first tick anchors the wall clock to the current presentation
    /// position; later ticks advance the position by the wall time elapsed.
    /// Launched and finished events are queued for
    /// [`PlayerSession::poll_events`]. Returns the state after the tick.
    pub fn tick(&mut self, now_ms: i64) -> Result<SessionState> {
        match self.state {
            SessionState::Finished | SessionState::Paused => return Ok(self.state),
            SessionState::Ready => {
                self.state = SessionState::Playing;
            }
            SessionState::Playing => {}
        }
        let origin = *self
            .wall_origin
            .get_or_insert(now_ms - self.position.as_millis());
        let target = TimeMs(now_ms - origin);
        if target > self.position {
            self.position = target;
        }
        self.deliver_due();
        Ok(self.state)
    }

    /// Pauses the session at wall-clock time `now_ms` (events due up to the
    /// pause position are still delivered).
    pub fn pause(&mut self, now_ms: i64) -> Result<SessionState> {
        if self.state == SessionState::Playing {
            self.tick(now_ms)?;
            if self.state == SessionState::Playing {
                self.state = SessionState::Paused;
                self.pending
                    .push(PlaybackEvent::Paused { at: self.position });
            }
        }
        Ok(self.state)
    }

    /// Resumes a paused session at wall-clock time `now_ms`: the
    /// presentation position continues where it was frozen.
    pub fn resume(&mut self, now_ms: i64) -> SessionState {
        if self.state == SessionState::Paused {
            self.wall_origin = Some(now_ms - self.position.as_millis());
            self.state = SessionState::Playing;
            self.pending
                .push(PlaybackEvent::Resumed { at: self.position });
        }
        self.state
    }

    /// Jumps to a presentation position. Events strictly before the target
    /// are skipped (seeking forward) or re-armed for delivery (seeking
    /// backward); the wall clock re-anchors on the next tick. A finished
    /// session becomes [`SessionState::Ready`] again so its tail can be
    /// replayed — the report is unaffected.
    pub fn seek(&mut self, to: TimeMs) {
        let from = self.position;
        self.position = to;
        self.wall_origin = None;
        self.cursor = self.timeline.partition_point(|item| item.at < to);
        if self.state == SessionState::Finished {
            self.state = SessionState::Ready;
        }
        self.pending.push(PlaybackEvent::Sought { from, to });
    }

    /// Drains the events that occurred since the last poll.
    pub fn poll_events(&mut self) -> Vec<PlaybackEvent> {
        mem::take(&mut self.pending)
    }

    /// Runs the remainder of the session in one step and returns the final
    /// report (the convenience the deprecated one-shot `play` is built on).
    pub fn run_to_completion(mut self) -> PlaybackReport {
        self.position = self.report.total_duration;
        if self.state == SessionState::Paused {
            self.state = SessionState::Playing;
        }
        self.deliver_due();
        self.report
    }

    fn deliver_due(&mut self) {
        while let Some(item) = self.timeline.get(self.cursor) {
            if item.at > self.position {
                break;
            }
            let event = &self.report.events[item.event];
            self.pending.push(match item.kind {
                ItemKind::Begin => PlaybackEvent::Started {
                    node: event.node,
                    name: event.name,
                    channel: event.channel,
                    scheduled_begin: event.scheduled_begin,
                    at: event.actual_begin,
                },
                ItemKind::End => PlaybackEvent::Ended {
                    node: event.node,
                    at: event.actual_end,
                },
            });
            self.cursor += 1;
        }
        if self.cursor == self.timeline.len() && self.position >= self.report.total_duration {
            self.state = SessionState::Finished;
            self.pending.push(PlaybackEvent::Finished {
                at: self.report.total_duration,
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::ConstraintGraph;
    use crate::types::ScheduleOptions;
    use cmif_core::prelude::*;

    fn solved_doc() -> (Document, SolveResult) {
        let doc = DocumentBuilder::new("session")
            .channel("audio", MediaKind::Audio)
            .descriptor(
                DataDescriptor::new("speech", MediaKind::Audio, "pcm8")
                    .with_duration(TimeMs::from_secs(2)),
            )
            .root_seq(|root| {
                root.ext("first", "audio", "speech");
                root.ext("second", "audio", "speech");
            })
            .build()
            .unwrap();
        let result = ConstraintGraph::derive(&doc, &doc.catalog, &ScheduleOptions::default())
            .unwrap()
            .solve(&doc, &doc.catalog)
            .unwrap();
        (doc, result)
    }

    fn session(doc: &Document, result: &SolveResult, jitter: &JitterModel) -> PlayerSession {
        PlayerSession::new(doc, result, &doc.catalog, jitter).unwrap()
    }

    #[test]
    fn ticking_to_the_end_finishes_and_reports() {
        let (doc, result) = solved_doc();
        let mut s = session(&doc, &result, &JitterModel::ideal());
        assert_eq!(s.state(), SessionState::Ready);
        assert!(s.report().is_none());
        assert_eq!(s.tick(0).unwrap(), SessionState::Playing);
        let started: Vec<_> = s.poll_events();
        assert!(matches!(started[0], PlaybackEvent::Started { .. }));
        assert_eq!(s.tick(1_000).unwrap(), SessionState::Playing);
        assert_eq!(s.tick(4_000).unwrap(), SessionState::Finished);
        let report = s.report().unwrap();
        assert_eq!(report.total_duration, TimeMs::from_secs(4));
        assert_eq!(report.events.len(), 2);
    }

    #[test]
    fn events_arrive_in_actual_time_order_exactly_once() {
        let (doc, result) = solved_doc();
        let mut s = session(&doc, &result, &JitterModel::ideal());
        let mut starts = Vec::new();
        let mut now = 0;
        loop {
            let state = s.tick(now).unwrap();
            for event in s.poll_events() {
                if let PlaybackEvent::Started { at, .. } = event {
                    starts.push(at);
                }
            }
            if state == SessionState::Finished {
                break;
            }
            now += 500;
        }
        assert_eq!(starts, vec![TimeMs::ZERO, TimeMs::from_secs(2)]);
    }

    #[test]
    fn pause_freezes_the_position_against_wall_time() {
        let (doc, result) = solved_doc();
        let mut s = session(&doc, &result, &JitterModel::ideal());
        s.tick(0).unwrap();
        s.pause(500).unwrap();
        assert_eq!(s.state(), SessionState::Paused);
        // Wall time marches on; the position does not.
        assert_eq!(s.tick(10_000).unwrap(), SessionState::Paused);
        assert_eq!(s.position(), TimeMs::from_millis(500));
        // Resume re-anchors: 3.5 s of playing remain.
        s.resume(60_000);
        assert_eq!(s.tick(63_499).unwrap(), SessionState::Playing);
        assert_eq!(s.tick(63_500).unwrap(), SessionState::Finished);
        let kinds: Vec<_> = s.poll_events();
        assert!(kinds
            .iter()
            .any(|e| matches!(e, PlaybackEvent::Finished { .. })));
    }

    #[test]
    fn seek_skips_events_before_the_target() {
        let (doc, result) = solved_doc();
        let mut s = session(&doc, &result, &JitterModel::ideal());
        s.seek(TimeMs::from_secs(3));
        s.tick(0).unwrap();
        let events = s.poll_events();
        // The first leaf (begin 0, end 2 s) is skipped entirely; the second
        // leaf's begin (2 s) is also before the target.
        assert!(events
            .iter()
            .all(|e| !matches!(e, PlaybackEvent::Started { at: TimeMs(0), .. })));
        assert!(matches!(events[0], PlaybackEvent::Sought { .. }));
        assert_eq!(s.tick(1_000).unwrap(), SessionState::Finished);
    }

    #[test]
    fn run_to_completion_matches_a_ticked_session() {
        let (doc, result) = solved_doc();
        let jitter = JitterModel::uniform(300, 17);
        let one_shot = session(&doc, &result, &jitter).run_to_completion();
        let mut ticked = session(&doc, &result, &jitter);
        let mut now = 0;
        while ticked.tick(now).unwrap() != SessionState::Finished {
            now += 250;
            ticked.poll_events();
        }
        assert_eq!(ticked.report(), Some(&one_shot));
    }

    #[test]
    fn finished_session_can_replay_its_tail_after_seek() {
        let (doc, result) = solved_doc();
        let mut s = session(&doc, &result, &JitterModel::ideal());
        s.tick(0).unwrap();
        s.tick(5_000).unwrap();
        assert_eq!(s.state(), SessionState::Finished);
        s.poll_events();
        s.seek(TimeMs::from_secs(2));
        assert_eq!(s.state(), SessionState::Ready);
        assert_eq!(s.tick(0).unwrap(), SessionState::Playing);
        let replayed = s.poll_events();
        assert!(replayed.iter().any(
            |e| matches!(e, PlaybackEvent::Started { at, .. } if *at == TimeMs::from_secs(2))
        ));
        assert_eq!(s.tick(2_000).unwrap(), SessionState::Finished);
    }
}
