//! Live authoring: incremental re-solve of edited documents.
//!
//! CMIFed's headline workflow is *edit while playing*: the author changes a
//! document whose presentation is running, and the system re-schedules only
//! what the change could affect. [`EditSession`] implements the scheduling
//! half of that story on top of the revision chain of
//! [`cmif_core::edit::DocRevision`]:
//!
//! 1. every edit reports a dirty region ([`cmif_core::edit::EditDelta`]);
//! 2. the session re-derives constraints only for that region — the
//!    structural *shells* of composites whose child list changed, the
//!    duration relations of dirty leaves, and the explicit arc set when it
//!    changed;
//! 3. the ASAP fixpoint is repaired in place. A **support check** first
//!    proves whether any discarded constraint was actually holding its
//!    target up (tight at the old fixpoint and not re-derived at least as
//!    strong): if none was, no point time can decrease and the repair is
//!    pure increase-only propagation from the dirty region. Only a
//!    genuinely lost support triggers the **reset cone** — every point
//!    downstream of a discarded constraint's target drops back to zero and
//!    a worklist re-tightens exactly the constraints that can raise those
//!    points again.
//!
//! The repaired vector equals the least fixpoint of the new constraint set,
//! so [`EditSession::solve_result`] is *identical* to a cold
//! [`crate::graph::ConstraintGraph::solve`] of the edited document — the
//! equivalence the `edit_sessions` proptest pins down. The win is wall
//! clock: a cold solve pays `O(constraints × depth)` passes over the whole
//! document, the incremental repair touches only the dirty tail.

use std::collections::{HashMap, HashSet, VecDeque};

use cmif_core::descriptor::DescriptorResolver;
use cmif_core::edit::{DocRevision, Edit, EditDelta};
use cmif_core::node::NodeId;
use cmif_core::time::TimeMs;
use cmif_core::tree::Document;

use crate::defaults::{explicit_constraints, leaf_duration_constraint, shell_constraints};
use crate::error::{Result, SchedulerError};
use crate::graph::{relax_in_place, PointTimes};
use crate::solver::{build_schedule, SolveResult, WindowViolation};
use crate::types::{Constraint, EventPoint, ScheduleOptions};

/// Counters describing the last incremental repair, for telemetry and the
/// `ext_author` bench.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EditStats {
    /// Edits applied over the session's lifetime.
    pub edits_applied: u64,
    /// Event points reset to zero by the last edit's dirty cone.
    pub last_reset_points: usize,
    /// Constraints removed or replaced by the last edit.
    pub last_replaced: usize,
    /// Constraints freshly derived by the last edit.
    pub last_added: usize,
    /// Fixpoint value updates the last repair performed.
    pub last_updates: usize,
    /// Total constraints in the current revision's set.
    pub constraints_total: usize,
}

/// An incremental authoring session over one document revision chain.
///
/// The session owns the current [`DocRevision`], the grouped constraint set
/// derived from it, and the ASAP fixpoint of that set. [`EditSession::apply`]
/// advances all three together; [`EditSession::solve_result`] assembles the
/// same [`SolveResult`] a cold solve of the current revision would produce.
pub struct EditSession<'r> {
    resolver: &'r dyn DescriptorResolver,
    options: ScheduleOptions,
    revision: DocRevision,
    /// Structural shell constraints, per composite node.
    structural: HashMap<NodeId, Vec<Constraint>>,
    /// Duration constraint, per leaf.
    durations: HashMap<NodeId, Constraint>,
    /// Explicit arc constraints, index-aligned with `Document::arcs()`.
    explicit: Vec<Constraint>,
    /// The ASAP fixpoint of the current constraint set.
    times: PointTimes,
    stats: EditStats,
}

impl<'r> EditSession<'r> {
    /// Opens a session on a revision: derives the full constraint set once
    /// and computes its cold fixpoint. Every later [`EditSession::apply`]
    /// repairs incrementally.
    pub fn begin(
        revision: DocRevision,
        resolver: &'r dyn DescriptorResolver,
        options: ScheduleOptions,
    ) -> Result<EditSession<'r>> {
        let doc = revision.doc().clone();
        let mut structural = HashMap::new();
        for node in doc.preorder() {
            let mut shell = Vec::new();
            shell_constraints(&doc, node, &mut shell)?;
            structural.insert(node, shell);
        }
        let mut durations = HashMap::new();
        for leaf in doc.leaves() {
            durations.insert(
                leaf,
                leaf_duration_constraint(&doc, resolver, &options, leaf)?,
            );
        }
        let explicit = explicit_constraints(&doc, resolver)?;

        let mut session = EditSession {
            resolver,
            options,
            revision,
            structural,
            durations,
            explicit,
            times: PointTimes::new(),
            stats: EditStats::default(),
        };
        let all = session.assemble();
        session.stats.constraints_total = all.len();
        let mut times = PointTimes::new();
        for node in doc.preorder() {
            times.insert(EventPoint::begin(node), TimeMs::ZERO);
            times.insert(EventPoint::end(node), TimeMs::ZERO);
        }
        relax_in_place(&mut times, &all, None, "edit")?;
        session.times = times;
        Ok(session)
    }

    /// The current revision.
    pub fn revision(&self) -> &DocRevision {
        &self.revision
    }

    /// The ASAP fixpoint of the current revision's constraints.
    pub fn times(&self) -> &PointTimes {
        &self.times
    }

    /// Counters describing the last repair.
    pub fn stats(&self) -> &EditStats {
        &self.stats
    }

    /// Applies one edit: advances the revision, re-derives the dirty
    /// region's constraints, and repairs the fixpoint in place.
    ///
    /// When the edit itself is invalid (removing the root, retiming a
    /// missing arc, …) the session is unchanged. When the *repair* fails —
    /// the edit introduced a positive cycle ([`SchedulerError::ConstraintCycle`]
    /// with phase `"edit"`) — the session must be discarded and reopened
    /// with [`EditSession::begin`].
    pub fn apply(&mut self, edit: &Edit) -> Result<EditDelta> {
        let (next, delta) = self.revision.apply(edit)?;
        self.revision = next;
        let doc = self.revision.doc().clone();

        // ---- 1. Re-derive the dirty region's constraint groups. --------
        // Targets of every removed or replaced constraint seed the reset
        // cone; freshly derived constraints join the initial worklist.
        let mut seeds: Vec<EventPoint> = Vec::new();
        let mut replaced = 0usize;
        let mut added = 0usize;
        // Nodes whose structural shell / duration constraint was re-derived
        // this edit (their constraints enter the initial worklist).
        let mut rebuilt_nodes: HashSet<NodeId> = HashSet::new();
        let mut rebuilt_leaves: HashSet<NodeId> = HashSet::new();
        // The constraints an edit discards and the ones it derives, kept so
        // the repair below can prove point times cannot *decrease* and skip
        // the reset cone entirely (the common case for single-subtree edits).
        let mut discarded: Vec<Constraint> = Vec::new();
        let mut fresh: Vec<Constraint> = Vec::new();

        let removed_set: HashSet<NodeId> = delta.removed.iter().copied().collect();
        for &node in &delta.removed {
            if let Some(old) = self.structural.remove(&node) {
                replaced += old.len();
                seeds.extend(old.iter().map(|c| c.target));
                discarded.extend(old);
            }
            if let Some(old) = self.durations.remove(&node) {
                replaced += 1;
                seeds.push(old.target);
                discarded.push(old);
            }
        }
        for &parent in &delta.dirty_parents {
            if let Some(old) = self.structural.remove(&parent) {
                replaced += old.len();
                seeds.extend(old.iter().map(|c| c.target));
                discarded.extend(old);
            }
            let mut shell = Vec::new();
            shell_constraints(&doc, parent, &mut shell)?;
            added += shell.len();
            fresh.extend(shell.iter().cloned());
            self.structural.insert(parent, shell);
            rebuilt_nodes.insert(parent);
        }
        let mut inserted_points: Vec<EventPoint> = Vec::new();
        if let Some(subtree_root) = delta.inserted {
            for node in subtree_preorder(&doc, subtree_root)? {
                let mut shell = Vec::new();
                shell_constraints(&doc, node, &mut shell)?;
                added += shell.len();
                fresh.extend(shell.iter().cloned());
                self.structural.insert(node, shell);
                rebuilt_nodes.insert(node);
                inserted_points.push(EventPoint::begin(node));
                inserted_points.push(EventPoint::end(node));
            }
        }
        for &leaf in &delta.duration_dirty {
            if removed_set.contains(&leaf) {
                continue;
            }
            if let Some(old) = self.durations.remove(&leaf) {
                replaced += 1;
                seeds.push(old.target);
                discarded.push(old);
            }
            let constraint = leaf_duration_constraint(&doc, self.resolver, &self.options, leaf)?;
            added += 1;
            fresh.push(constraint.clone());
            self.durations.insert(leaf, constraint);
            rebuilt_leaves.insert(leaf);
        }
        // Index-aligned positional diff of the explicit set: a retime
        // changes exactly one slot, a structural edit may shift or re-derive
        // many. Slots that compare equal cost nothing downstream.
        let mut explicit_dirty: HashSet<usize> = HashSet::new();
        if delta.arcs_changed {
            let new_explicit = explicit_constraints(&doc, self.resolver)?;
            let slots = self.explicit.len().max(new_explicit.len());
            for i in 0..slots {
                if self.explicit.get(i) == new_explicit.get(i) {
                    continue;
                }
                if let Some(old) = self.explicit.get(i) {
                    replaced += 1;
                    seeds.push(old.target);
                    discarded.push(old.clone());
                }
                if let Some(new) = new_explicit.get(i) {
                    added += 1;
                    fresh.push(new.clone());
                    explicit_dirty.insert(i);
                }
            }
            self.explicit = new_explicit;
        }

        // ---- 2. Decide whether point times can decrease. ---------------
        // In the old fixpoint every value is justified by a well-founded
        // chain of *tight* constraints grounded at zero. A discarded
        // constraint that was slack was not part of any such chain, and a
        // tight one that is re-derived no weaker (same endpoints, bound at
        // least as high) still justifies the same value. When every
        // discarded constraint falls in one of those buckets — or its
        // target vanished with a removed node — no surviving point can end
        // up above the new least fixpoint, so the reset cone is provably
        // empty and the repair is pure increase-only propagation from the
        // dirty region. Only a genuinely lost support forces the cone.
        let removed_points: HashSet<EventPoint> = delta
            .removed
            .iter()
            .flat_map(|&n| [EventPoint::begin(n), EventPoint::end(n)])
            .collect();
        let needs_cone = discarded.iter().any(|old| {
            if removed_points.contains(&old.target) {
                return false;
            }
            let (Some(&source_time), Some(&target_time)) =
                (self.times.get(&old.source), self.times.get(&old.target))
            else {
                return false;
            };
            let bound = old.lower_bound(source_time);
            if bound < target_time {
                return false; // slack: never supported the target's value
            }
            !fresh.iter().any(|new| {
                new.source == old.source
                    && new.target == old.target
                    && new.lower_bound(source_time) >= bound
            })
        });

        // ---- 3. Update the point set. ----------------------------------
        for &node in &delta.removed {
            self.times.remove(&EventPoint::begin(node));
            self.times.remove(&EventPoint::end(node));
        }
        for point in &inserted_points {
            self.times.insert(*point, TimeMs::ZERO);
        }

        // ---- 4. Reset cone + worklist repair. --------------------------
        let all = self.assemble();
        let mut out_edges: HashMap<EventPoint, Vec<usize>> = HashMap::new();
        for (i, constraint) in all.iter().enumerate() {
            out_edges.entry(constraint.source).or_default().push(i);
        }

        // The reset cone: everything downstream (over the *new* edges) of a
        // removed constraint's target returns to zero. Values of points
        // outside the cone never depended on a removed constraint, so they
        // are already at their new-fixpoint value and stay put. When step 2
        // proved no support was lost, the cone is skipped outright — this
        // is what keeps a single-subtree edit from re-relaxing the whole
        // downstream half of the document.
        let mut reset: HashSet<EventPoint> = HashSet::new();
        if needs_cone {
            let mut frontier: VecDeque<EventPoint> = VecDeque::new();
            for seed in seeds {
                if self.times.contains_key(&seed) && reset.insert(seed) {
                    frontier.push_back(seed);
                }
            }
            while let Some(point) = frontier.pop_front() {
                if let Some(edges) = out_edges.get(&point) {
                    for &i in edges {
                        let target = all[i].target;
                        if self.times.contains_key(&target) && reset.insert(target) {
                            frontier.push_back(target);
                        }
                    }
                }
            }
            for point in &reset {
                if let Some(value) = self.times.get_mut(point) {
                    *value = TimeMs::ZERO;
                }
            }
        }

        // Initial worklist: every constraint that can raise a reset or new
        // point, plus every freshly derived constraint.
        let dirty_point = |p: &EventPoint| reset.contains(p) || inserted_points.contains(p);
        let mut queue: VecDeque<usize> = VecDeque::new();
        let mut queued = vec![false; all.len()];
        let mut explicit_base = 0usize;
        for node in doc.preorder() {
            if let Some(shell) = self.structural.get(&node) {
                if rebuilt_nodes.contains(&node) {
                    for offset in 0..shell.len() {
                        queue.push_back(explicit_base + offset);
                    }
                }
                explicit_base += shell.len();
            }
        }
        for leaf in doc.leaves() {
            if self.durations.contains_key(&leaf) {
                if rebuilt_leaves.contains(&leaf) {
                    queue.push_back(explicit_base);
                }
                explicit_base += 1;
            }
        }
        for i in 0..self.explicit.len() {
            if explicit_dirty.contains(&i) {
                queue.push_back(explicit_base + i);
            }
        }
        for (i, constraint) in all.iter().enumerate() {
            if dirty_point(&constraint.target) {
                queue.push_back(i);
            }
        }
        for &i in &queue {
            queued[i] = true;
        }

        // Chaotic iteration over the worklist. Each pop either leaves the
        // vector unchanged or raises one point toward the least fixpoint;
        // an update budget of |points| × (|constraints| + 1) — the same
        // envelope as the pass-based relaxation — converts a positive cycle
        // into `ConstraintCycle` instead of divergence.
        let cap = self
            .times
            .len()
            .saturating_mul(all.len() + 1)
            .saturating_add(all.len() + 1);
        let mut updates = 0usize;
        while let Some(i) = queue.pop_front() {
            queued[i] = false;
            let constraint = &all[i];
            let source_time = match self.times.get(&constraint.source) {
                Some(t) => *t,
                None => continue,
            };
            let bound = constraint.lower_bound(source_time);
            let entry = self.times.entry(constraint.target).or_insert(TimeMs::ZERO);
            if bound > *entry {
                *entry = bound;
                updates += 1;
                if updates > cap {
                    return Err(SchedulerError::ConstraintCycle {
                        phase: "edit",
                        points: self.times.len(),
                    });
                }
                if let Some(edges) = out_edges.get(&constraint.target) {
                    for &j in edges {
                        if !queued[j] {
                            queued[j] = true;
                            queue.push_back(j);
                        }
                    }
                }
            }
        }

        self.stats.edits_applied += 1;
        self.stats.last_reset_points = reset.len();
        self.stats.last_replaced = replaced;
        self.stats.last_added = added;
        self.stats.last_updates = updates;
        self.stats.constraints_total = all.len();
        Ok(delta)
    }

    /// Assembles the [`SolveResult`] of the current revision — identical,
    /// constraint order included, to a cold
    /// [`crate::graph::ConstraintGraph::derive`] + `solve` of the same
    /// document.
    pub fn solve_result(&self) -> Result<SolveResult> {
        let doc = self.revision.doc();
        let constraints = self.assemble();
        let mut violations = Vec::new();
        for constraint in &constraints {
            let source_time = self.times[&constraint.source];
            let actual = self.times[&constraint.target];
            if let Some(latest) = constraint.upper_bound(source_time) {
                if actual > latest {
                    violations.push(WindowViolation {
                        constraint: constraint.clone(),
                        reference: TimeMs(source_time.as_millis() + constraint.offset_ms),
                        latest,
                        actual,
                    });
                }
            }
        }
        let schedule = build_schedule(doc, self.resolver, &self.times)?;
        Ok(SolveResult {
            schedule,
            violations,
            constraints,
        })
    }

    /// The current constraint set in canonical (cold-derive) order:
    /// structural shells in preorder, leaf durations in `leaves()` order,
    /// explicit arcs in arc-index order.
    fn assemble(&self) -> Vec<Constraint> {
        let doc = self.revision.doc();
        let mut all = Vec::new();
        for node in doc.preorder() {
            if let Some(shell) = self.structural.get(&node) {
                all.extend(shell.iter().cloned());
            }
        }
        for leaf in doc.leaves() {
            if let Some(duration) = self.durations.get(&leaf) {
                all.push(duration.clone());
            }
        }
        all.extend(self.explicit.iter().cloned());
        all
    }
}

/// Collects `node` and all its descendants in preorder.
fn subtree_preorder(doc: &Document, node: NodeId) -> Result<Vec<NodeId>> {
    let mut out = Vec::new();
    let mut stack = vec![node];
    while let Some(id) = stack.pop() {
        out.push(id);
        for child in doc.node(id)?.children.iter().rev() {
            stack.push(*child);
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::ConstraintGraph;
    use cmif_core::arc::SyncArc;
    use cmif_core::edit::NodeSpec;
    use cmif_core::prelude::*;
    use std::sync::Arc;

    fn bulletin() -> Document {
        DocumentBuilder::new("bulletin")
            .channel("video", MediaKind::Video)
            .channel("caption", MediaKind::Text)
            .descriptor(
                DataDescriptor::new("lead.mpg", MediaKind::Video, "mpeg")
                    .with_duration(TimeMs::from_secs(20)),
            )
            .descriptor(
                DataDescriptor::new("follow.mpg", MediaKind::Video, "mpeg")
                    .with_duration(TimeMs::from_secs(15)),
            )
            .descriptor(
                DataDescriptor::new("recap.mpg", MediaKind::Video, "mpeg")
                    .with_duration(TimeMs::from_secs(5)),
            )
            .root_seq(|root| {
                root.par("story-1", |story| {
                    story.ext("lead", "video", "lead.mpg");
                    story.imm_text("line-1", "caption", "Lead story", 4_000);
                });
                root.par("story-2", |story| {
                    story.ext("follow", "video", "follow.mpg");
                    story.imm_text("line-2", "caption", "Follow-up", 4_000);
                });
            })
            .build()
            .unwrap()
    }

    fn cold_solve(doc: &Document) -> SolveResult {
        ConstraintGraph::derive(doc, &doc.catalog, &ScheduleOptions::default())
            .unwrap()
            .solve(doc, &doc.catalog)
            .unwrap()
    }

    fn check_equivalence(session: &EditSession<'_>) {
        let incremental = session.solve_result().unwrap();
        let cold = cold_solve(session.revision().doc());
        assert_eq!(incremental, cold);
    }

    #[test]
    fn cold_open_matches_graph_solve() {
        let doc = Arc::new(bulletin());
        let catalog = doc.catalog.clone();
        let session = EditSession::begin(
            DocRevision::initial(doc),
            &catalog,
            ScheduleOptions::default(),
        )
        .unwrap();
        check_equivalence(&session);
    }

    #[test]
    fn insert_subtree_repairs_to_the_cold_fixpoint() {
        let doc = Arc::new(bulletin());
        let catalog = doc.catalog.clone();
        let root = doc.root().unwrap();
        let mut session = EditSession::begin(
            DocRevision::initial(doc),
            &catalog,
            ScheduleOptions::default(),
        )
        .unwrap();
        session
            .apply(&Edit::InsertSubtree {
                parent: root,
                spec: NodeSpec::par(
                    "story-3",
                    vec![
                        NodeSpec::ext("recap", "recap.mpg").on_channel("video"),
                        NodeSpec::imm_text("line-3", "Recap")
                            .on_channel("caption")
                            .lasting_ms(3_000),
                    ],
                ),
            })
            .unwrap();
        check_equivalence(&session);
        assert!(session.stats().last_reset_points > 0);
    }

    #[test]
    fn remove_subtree_repairs_to_the_cold_fixpoint() {
        let doc = Arc::new(bulletin());
        let catalog = doc.catalog.clone();
        let story_1 = doc.find("/story-1").unwrap();
        let mut session = EditSession::begin(
            DocRevision::initial(doc),
            &catalog,
            ScheduleOptions::default(),
        )
        .unwrap();
        session
            .apply(&Edit::RemoveSubtree { node: story_1 })
            .unwrap();
        check_equivalence(&session);
    }

    #[test]
    fn retime_arc_repairs_to_the_cold_fixpoint() {
        let mut doc = bulletin();
        let line_2 = doc.find("/story-2/line-2").unwrap();
        doc.add_arc(
            line_2,
            SyncArc::hard_start("../follow", "").with_offset(MediaTime::seconds(2)),
        )
        .unwrap();
        let doc = Arc::new(doc);
        let catalog = doc.catalog.clone();
        let mut session = EditSession::begin(
            DocRevision::initial(doc),
            &catalog,
            ScheduleOptions::default(),
        )
        .unwrap();
        session
            .apply(&Edit::RetimeArc {
                index: 0,
                min_delay_ms: 0,
                max_delay_ms: Some(100),
                offset_ms: Some(6_000),
            })
            .unwrap();
        check_equivalence(&session);
    }

    #[test]
    fn descriptor_and_channel_edits_repair_to_the_cold_fixpoint() {
        let doc = Arc::new(bulletin());
        let catalog = doc.catalog.clone();
        let lead = doc.find("/story-1/lead").unwrap();
        let mut session = EditSession::begin(
            DocRevision::initial(doc),
            &catalog,
            ScheduleOptions::default(),
        )
        .unwrap();
        session
            .apply(&Edit::SwapDescriptor {
                node: lead,
                file: "recap.mpg".to_string(),
            })
            .unwrap();
        check_equivalence(&session);
        session
            .apply(&Edit::AssignChannel {
                node: lead,
                channel: Symbol::intern("caption"),
            })
            .unwrap();
        check_equivalence(&session);
    }

    #[test]
    fn edits_chain_and_stats_accumulate() {
        let doc = Arc::new(bulletin());
        let catalog = doc.catalog.clone();
        let root = doc.root().unwrap();
        let story_2 = doc.find("/story-2").unwrap();
        let mut session = EditSession::begin(
            DocRevision::initial(doc),
            &catalog,
            ScheduleOptions::default(),
        )
        .unwrap();
        session
            .apply(&Edit::InsertSubtree {
                parent: root,
                spec: NodeSpec::ext("tail", "recap.mpg").on_channel("video"),
            })
            .unwrap();
        session
            .apply(&Edit::RemoveSubtree { node: story_2 })
            .unwrap();
        check_equivalence(&session);
        assert_eq!(session.stats().edits_applied, 2);
        assert_eq!(
            session.revision().doc().leaves().len(),
            3,
            "story-2's two leaves gone, tail added"
        );
    }

    #[test]
    fn rejected_edit_leaves_the_session_intact() {
        let doc = Arc::new(bulletin());
        let catalog = doc.catalog.clone();
        let root = doc.root().unwrap();
        let mut session = EditSession::begin(
            DocRevision::initial(doc),
            &catalog,
            ScheduleOptions::default(),
        )
        .unwrap();
        let before = session.revision().id();
        assert!(session.apply(&Edit::RemoveSubtree { node: root }).is_err());
        assert_eq!(session.revision().id(), before);
        check_equivalence(&session);
    }
}
