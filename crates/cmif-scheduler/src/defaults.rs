//! Derivation of the constraint set for a document.
//!
//! §5.3.1: "The basic tree structure of CMIF documents imposes a default
//! synchronization that is based on the node type of the ancestors of a data
//! (leaf) node. Within a sequential node, a default synchronization arc
//! exists from the starting node of the arc to its sequentially first child.
//! There are also arcs from the end of leaf nodes to the start of the
//! successor leaf. Finally, an arc exists from the last child of a
//! sequential node to the end of its parent. Parallel nodes have default
//! arcs from the parallel parent node to each of the children of that
//! parent. Similarly, synchronization arcs also exist from the end of each
//! of the children to the end of the parent."
//!
//! [`derive_constraints`] produces those default arcs, the rigid
//! begin→end duration relation of every leaf, and the explicit arcs of the
//! document (with their offsets converted from media units to the document
//! clock).

use crate::error::Result;
use cmif_core::arc::Strictness;
use cmif_core::descriptor::DescriptorResolver;
use cmif_core::node::{NodeId, NodeKind};
use cmif_core::time::{MaxDelay, RateInfo};
use cmif_core::tree::Document;

use crate::types::{Constraint, ConstraintOrigin, EventPoint, ScheduleOptions};

/// Derives the complete constraint set of a document: default structural
/// arcs, leaf durations and explicit arcs.
pub fn derive_constraints(
    doc: &Document,
    resolver: &dyn DescriptorResolver,
    options: &ScheduleOptions,
) -> Result<Vec<Constraint>> {
    let mut constraints = Vec::new();
    let root = doc.root()?;
    derive_structural(doc, root, &mut constraints)?;
    derive_durations(doc, resolver, options, &mut constraints)?;
    derive_explicit(doc, resolver, &mut constraints)?;
    Ok(constraints)
}

/// Default arcs from the tree structure (fork/join shapes of §5.3.1).
pub fn derive_structural(doc: &Document, node: NodeId, out: &mut Vec<Constraint>) -> Result<()> {
    shell_constraints(doc, node, out)?;
    for child in doc.children(node)?.to_vec() {
        derive_structural(doc, child, out)?;
    }
    Ok(())
}

/// The structural *shell* of one composite node: the default arcs §5.3.1
/// derives from the node's own child list, without recursing into the
/// children. Incremental re-solvers re-derive exactly the shells of nodes
/// whose child list changed.
pub fn shell_constraints(doc: &Document, node: NodeId, out: &mut Vec<Constraint>) -> Result<()> {
    let kind = doc.node(node)?.kind.clone();
    let children = doc.children(node)?.to_vec();
    match kind {
        NodeKind::Seq => {
            if let Some(first) = children.first() {
                out.push(hard(
                    EventPoint::begin(node),
                    EventPoint::begin(*first),
                    ConstraintOrigin::SequentialOrder,
                ));
            }
            for pair in children.windows(2) {
                out.push(hard(
                    EventPoint::end(pair[0]),
                    EventPoint::begin(pair[1]),
                    ConstraintOrigin::SequentialOrder,
                ));
            }
            if let Some(last) = children.last() {
                out.push(hard(
                    EventPoint::end(*last),
                    EventPoint::end(node),
                    ConstraintOrigin::SequentialOrder,
                ));
            }
            // An empty composite still needs its end to follow its begin.
            if children.is_empty() {
                out.push(hard(
                    EventPoint::begin(node),
                    EventPoint::end(node),
                    ConstraintOrigin::SequentialOrder,
                ));
            }
        }
        NodeKind::Par => {
            for child in &children {
                out.push(hard(
                    EventPoint::begin(node),
                    EventPoint::begin(*child),
                    ConstraintOrigin::ParallelFork,
                ));
                out.push(hard(
                    EventPoint::end(*child),
                    EventPoint::end(node),
                    ConstraintOrigin::ParallelJoin,
                ));
            }
            if children.is_empty() {
                out.push(hard(
                    EventPoint::begin(node),
                    EventPoint::end(node),
                    ConstraintOrigin::ParallelFork,
                ));
            }
        }
        NodeKind::Ext | NodeKind::Imm(_) => {}
    }
    Ok(())
}

/// The rigid begin → end relation of every leaf: its intrinsic duration.
fn derive_durations(
    doc: &Document,
    resolver: &dyn DescriptorResolver,
    options: &ScheduleOptions,
    out: &mut Vec<Constraint>,
) -> Result<()> {
    for leaf in doc.leaves() {
        out.push(leaf_duration_constraint(doc, resolver, options, leaf)?);
    }
    Ok(())
}

/// The rigid begin → end relation of one leaf: its intrinsic duration, or
/// the fill policy of [`ScheduleOptions`] when the duration is unknown.
pub fn leaf_duration_constraint(
    doc: &Document,
    resolver: &dyn DescriptorResolver,
    options: &ScheduleOptions,
    leaf: NodeId,
) -> Result<Constraint> {
    let duration = match doc.duration_of(leaf, resolver)? {
        Some(d) => d.as_millis(),
        None => {
            let parent_is_par = match doc.parent(leaf)? {
                Some(parent) => doc.node(parent)?.kind == NodeKind::Par,
                None => false,
            };
            if options.fill_unknown_in_parallel && parent_is_par {
                // Filling leaves impose no duration of their own; the
                // parallel join will still hold the parent open for the
                // other children, and the player stretches the fill leaf
                // to its parent's extent.
                0
            } else {
                options.default_discrete_ms
            }
        }
    };
    Ok(Constraint {
        source: EventPoint::begin(leaf),
        target: EventPoint::end(leaf),
        offset_ms: duration,
        min_delay_ms: 0,
        max_delay_ms: None,
        strictness: Strictness::Must,
        origin: ConstraintOrigin::LeafDuration,
    })
}

/// Explicit arcs, with offsets converted onto the document clock using the
/// controlling node's rate table.
fn derive_explicit(
    doc: &Document,
    resolver: &dyn DescriptorResolver,
    out: &mut Vec<Constraint>,
) -> Result<()> {
    out.extend(explicit_constraints(doc, resolver)?);
    Ok(())
}

/// The explicit arc constraints of a document, in [`Document::arcs`] order
/// (constraint `i` corresponds to arc `i`).
pub fn explicit_constraints(
    doc: &Document,
    resolver: &dyn DescriptorResolver,
) -> Result<Vec<Constraint>> {
    let mut out = Vec::with_capacity(doc.arcs().len());
    for (index, (carrier, arc, source, destination)) in doc.resolved_arcs()?.into_iter().enumerate()
    {
        let rates = rates_of(doc, source, resolver)?;
        let offset_ms = arc.offset.to_millis(&rates)?.as_millis();
        let max_delay_ms = match arc.max_delay {
            MaxDelay::Unbounded => None,
            MaxDelay::Bounded(d) => Some(d.as_millis()),
        };
        out.push(Constraint {
            source: EventPoint {
                node: source,
                anchor: arc.source_anchor,
            },
            target: EventPoint {
                node: destination,
                anchor: arc.anchor,
            },
            offset_ms,
            min_delay_ms: arc.min_delay.as_millis(),
            max_delay_ms,
            strictness: arc.strictness,
            origin: ConstraintOrigin::Explicit { carrier, index },
        });
    }
    Ok(out)
}

/// The rate table of a node: its descriptor's rates when it is an external
/// node with a resolvable descriptor, otherwise no rates (only seconds and
/// milliseconds convert).
pub fn rates_of(
    doc: &Document,
    node: NodeId,
    resolver: &dyn DescriptorResolver,
) -> Result<RateInfo> {
    if doc.node(node)?.kind == NodeKind::Ext {
        if let Some(key) = doc.file_of(node)? {
            if let Some(descriptor) = resolver.resolve_symbol(key) {
                return Ok(descriptor.rates);
            }
        }
    }
    Ok(RateInfo::NONE)
}

fn hard(source: EventPoint, target: EventPoint, origin: ConstraintOrigin) -> Constraint {
    Constraint {
        source,
        target,
        offset_ms: 0,
        min_delay_ms: 0,
        max_delay_ms: None,
        strictness: Strictness::Must,
        origin,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cmif_core::arc::SyncArc;
    use cmif_core::prelude::*;

    fn seq_doc() -> Document {
        DocumentBuilder::new("seq-demo")
            .channel("audio", MediaKind::Audio)
            .descriptor(
                DataDescriptor::new("a", MediaKind::Audio, "pcm8")
                    .with_duration(TimeMs::from_secs(2)),
            )
            .descriptor(
                DataDescriptor::new("b", MediaKind::Audio, "pcm8")
                    .with_duration(TimeMs::from_secs(3)),
            )
            .root_seq(|root| {
                root.ext("first", "audio", "a");
                root.ext("second", "audio", "b");
            })
            .build()
            .unwrap()
    }

    fn par_doc() -> Document {
        DocumentBuilder::new("par-demo")
            .channel("audio", MediaKind::Audio)
            .channel("caption", MediaKind::Text)
            .descriptor(
                DataDescriptor::new("a", MediaKind::Audio, "pcm8")
                    .with_duration(TimeMs::from_secs(2)),
            )
            .root_par(|root| {
                root.ext("voice", "audio", "a");
                root.imm_text("line", "caption", "hi", 1_000);
            })
            .build()
            .unwrap()
    }

    #[test]
    fn sequential_node_produces_chain_constraints() {
        let doc = seq_doc();
        let constraints =
            derive_constraints(&doc, &doc.catalog, &ScheduleOptions::default()).unwrap();
        let root = doc.root().unwrap();
        let first = doc.find("/first").unwrap();
        let second = doc.find("/second").unwrap();
        // parent begin -> first child begin
        assert!(constraints
            .iter()
            .any(|c| c.source == EventPoint::begin(root)
                && c.target == EventPoint::begin(first)
                && c.origin == ConstraintOrigin::SequentialOrder));
        // end of first -> begin of second
        assert!(constraints
            .iter()
            .any(|c| c.source == EventPoint::end(first) && c.target == EventPoint::begin(second)));
        // end of last child -> end of parent
        assert!(constraints
            .iter()
            .any(|c| c.source == EventPoint::end(second) && c.target == EventPoint::end(root)));
    }

    #[test]
    fn parallel_node_produces_fork_and_join() {
        let doc = par_doc();
        let constraints =
            derive_constraints(&doc, &doc.catalog, &ScheduleOptions::default()).unwrap();
        let root = doc.root().unwrap();
        let forks = constraints
            .iter()
            .filter(|c| {
                c.origin == ConstraintOrigin::ParallelFork && c.source == EventPoint::begin(root)
            })
            .count();
        let joins = constraints
            .iter()
            .filter(|c| {
                c.origin == ConstraintOrigin::ParallelJoin && c.target == EventPoint::end(root)
            })
            .count();
        assert_eq!(forks, 2);
        assert_eq!(joins, 2);
    }

    #[test]
    fn leaf_durations_become_rigid_constraints() {
        let doc = seq_doc();
        let constraints =
            derive_constraints(&doc, &doc.catalog, &ScheduleOptions::default()).unwrap();
        let first = doc.find("/first").unwrap();
        let duration = constraints
            .iter()
            .find(|c| {
                c.origin == ConstraintOrigin::LeafDuration && c.source == EventPoint::begin(first)
            })
            .unwrap();
        assert_eq!(duration.offset_ms, 2_000);
        assert_eq!(duration.target, EventPoint::end(first));
    }

    #[test]
    fn unknown_duration_uses_default_policy() {
        let mut doc = par_doc();
        let root = doc.root().unwrap();
        let extra = doc.add_imm_text(root, "no duration").unwrap();
        doc.set_attr(extra, AttrName::Name, AttrValue::Id("still".into()))
            .unwrap();
        doc.set_attr(extra, AttrName::Channel, AttrValue::Id("caption".into()))
            .unwrap();

        let options = ScheduleOptions {
            default_discrete_ms: 1_234,
            ..Default::default()
        };
        let constraints = derive_constraints(&doc, &doc.catalog, &options).unwrap();
        let duration = constraints
            .iter()
            .find(|c| {
                c.origin == ConstraintOrigin::LeafDuration && c.source == EventPoint::begin(extra)
            })
            .unwrap();
        assert_eq!(duration.offset_ms, 1_234);

        let fill = ScheduleOptions {
            fill_unknown_in_parallel: true,
            ..Default::default()
        };
        let constraints = derive_constraints(&doc, &doc.catalog, &fill).unwrap();
        let duration = constraints
            .iter()
            .find(|c| {
                c.origin == ConstraintOrigin::LeafDuration && c.source == EventPoint::begin(extra)
            })
            .unwrap();
        assert_eq!(duration.offset_ms, 0);
    }

    #[test]
    fn explicit_arcs_are_converted_to_milliseconds() {
        let mut doc = par_doc();
        let voice = doc.find("/voice").unwrap();
        let line = doc.find("/line").unwrap();
        doc.add_arc(
            line,
            SyncArc::hard_start("../voice", "")
                .with_offset(MediaTime::seconds(1))
                .with_window(
                    DelayMs::from_millis(-50),
                    MaxDelay::Bounded(DelayMs::from_millis(200)),
                ),
        )
        .unwrap();
        let constraints =
            derive_constraints(&doc, &doc.catalog, &ScheduleOptions::default()).unwrap();
        let explicit = constraints
            .iter()
            .find(|c| matches!(c.origin, ConstraintOrigin::Explicit { .. }))
            .unwrap();
        assert_eq!(explicit.source, EventPoint::begin(voice));
        assert_eq!(explicit.target, EventPoint::begin(line));
        assert_eq!(explicit.offset_ms, 1_000);
        assert_eq!(explicit.min_delay_ms, -50);
        assert_eq!(explicit.max_delay_ms, Some(200));
    }

    #[test]
    fn frame_offsets_use_the_source_descriptor_rates() {
        let doc = DocumentBuilder::new("frames")
            .channel("video", MediaKind::Video)
            .channel("caption", MediaKind::Text)
            .descriptor(
                DataDescriptor::new("clip", MediaKind::Video, "rgb24")
                    .with_duration(TimeMs::from_secs(4))
                    .with_rates(RateInfo::video(25.0)),
            )
            .root_par(|root| {
                root.ext("film", "video", "clip");
                root.imm_text("caption-1", "caption", "x", 1_000);
            })
            .build()
            .unwrap();
        let mut doc = doc;
        let caption = doc.find("/caption-1").unwrap();
        doc.add_arc(
            caption,
            SyncArc::hard_start("../film", "").with_offset(MediaTime::frames(50)),
        )
        .unwrap();
        let constraints =
            derive_constraints(&doc, &doc.catalog, &ScheduleOptions::default()).unwrap();
        let explicit = constraints
            .iter()
            .find(|c| matches!(c.origin, ConstraintOrigin::Explicit { .. }))
            .unwrap();
        assert_eq!(explicit.offset_ms, 2_000);
    }

    #[test]
    fn empty_composites_still_relate_begin_and_end() {
        let doc = DocumentBuilder::new("empty")
            .channel("audio", MediaKind::Audio)
            .root_seq(|root| {
                root.par("empty-par", |_| {});
            })
            .build()
            .unwrap();
        let constraints =
            derive_constraints(&doc, &doc.catalog, &ScheduleOptions::default()).unwrap();
        let empty_par = doc.find("/empty-par").unwrap();
        assert!(constraints
            .iter()
            .any(|c| c.source == EventPoint::begin(empty_par)
                && c.target == EventPoint::end(empty_par)));
    }
}
