//! Discrete-event playback simulation.
//!
//! The scheduler produces an *intended* schedule; a real presentation
//! environment then launches events with some per-channel sloppiness. The
//! δ/ε tolerance windows exist precisely so a document survives that
//! sloppiness on diverse hardware ("this is especially useful for documents
//! that need to run on diverse sets of hardware", §5.3.1).
//!
//! [`play`] simulates a presentation run: every event's *actual* time is the
//! latest lower bound imposed by its (already-simulated) controlling events
//! plus a startup latency drawn from the device's [`JitterModel`]. The
//! report counts how many `Must` and `May` windows the run violated, how
//! much events drifted from the intended schedule, and how much freeze-frame
//! time continuous channels needed to bridge gaps — the quantities the
//! Figure 8 bench sweeps against jitter and window width.

use std::collections::HashMap;
use std::fmt;

use crate::error::{Result, SchedulerError};
use cmif_core::arc::Anchor;
use cmif_core::descriptor::DescriptorResolver;
use cmif_core::node::NodeId;
use cmif_core::time::TimeMs;
use cmif_core::tree::Document;

use crate::environment::JitterModel;
use crate::solver::SolveResult;
use crate::types::EventPoint;

/// One presented event in a playback run: intended vs actual times.
#[derive(Debug, Clone, PartialEq)]
pub struct PlayedEvent {
    /// The leaf node presented.
    pub node: NodeId,
    /// The node's name.
    pub name: String,
    /// The channel it played on.
    pub channel: String,
    /// The begin time the schedule intended.
    pub scheduled_begin: TimeMs,
    /// The begin time the simulated device achieved.
    pub actual_begin: TimeMs,
    /// The end time the simulated device achieved.
    pub actual_end: TimeMs,
}

impl PlayedEvent {
    /// How late (positive) or early (negative) the event started relative to
    /// the intended schedule.
    pub fn drift_ms(&self) -> i64 {
        self.actual_begin.as_millis() - self.scheduled_begin.as_millis()
    }
}

/// The outcome of one simulated playback run.
#[derive(Debug, Clone, PartialEq)]
pub struct PlaybackReport {
    /// Every presented event with intended and actual times.
    pub events: Vec<PlayedEvent>,
    /// Number of `Must` windows the actual times violated.
    pub must_violations: usize,
    /// Number of `May` windows the actual times violated.
    pub may_violations: usize,
    /// Total freeze-frame (gap-bridging) time needed on continuous channels,
    /// in milliseconds.
    pub freeze_frame_ms: i64,
    /// Actual end of the presentation.
    pub total_duration: TimeMs,
}

impl PlaybackReport {
    /// Largest absolute drift of any event.
    pub fn max_drift_ms(&self) -> i64 {
        self.events
            .iter()
            .map(|e| e.drift_ms().abs())
            .max()
            .unwrap_or(0)
    }

    /// Mean absolute drift over all events.
    pub fn mean_drift_ms(&self) -> f64 {
        if self.events.is_empty() {
            return 0.0;
        }
        self.events
            .iter()
            .map(|e| e.drift_ms().abs() as f64)
            .sum::<f64>()
            / self.events.len() as f64
    }

    /// True when no `Must` window was violated in this run.
    pub fn meets_must_constraints(&self) -> bool {
        self.must_violations == 0
    }
}

impl fmt::Display for PlaybackReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{} events, {} must violations, {} may violations, max drift {} ms, freeze {} ms",
            self.events.len(),
            self.must_violations,
            self.may_violations,
            self.max_drift_ms(),
            self.freeze_frame_ms
        )?;
        write!(f, "actual duration: {}", self.total_duration)
    }
}

/// Simulates one playback run of a solved document on a device described by
/// `jitter`.
pub fn play(
    doc: &Document,
    result: &SolveResult,
    resolver: &dyn DescriptorResolver,
    jitter: &JitterModel,
) -> Result<PlaybackReport> {
    let mut sampler = jitter.sampler();
    let leaves = doc.leaves();

    // Sample one startup latency per leaf, keyed by its channel.
    let mut latencies: HashMap<NodeId, i64> = HashMap::with_capacity(leaves.len());
    for leaf in &leaves {
        let channel = doc
            .channel_of(*leaf)?
            .unwrap_or_else(|| "(unassigned)".to_string());
        latencies.insert(*leaf, sampler.sample(&channel));
    }

    // Relax the same lower-bound constraint graph the solver used, but add
    // each leaf's startup latency to its begin point. The result is the
    // causal "what actually happened" timeline: a late controlling event
    // pushes everything it controls later, exactly like a slow device would.
    let mut actual: HashMap<EventPoint, TimeMs> = HashMap::new();
    for node in doc.preorder() {
        actual.insert(EventPoint::begin(node), TimeMs::ZERO);
        actual.insert(EventPoint::end(node), TimeMs::ZERO);
    }
    let max_passes = actual.len() + 1;
    let mut changed = true;
    let mut passes = 0;
    while changed {
        changed = false;
        passes += 1;
        if passes > max_passes {
            return Err(SchedulerError::ConstraintCycle {
                phase: "playback",
                points: actual.len(),
            });
        }
        for constraint in &result.constraints {
            let source_time = match actual.get(&constraint.source) {
                Some(t) => *t,
                None => continue,
            };
            let mut bound = constraint.lower_bound(source_time);
            if constraint.target.anchor == Anchor::Begin {
                if let Some(latency) = latencies.get(&constraint.target.node) {
                    bound = TimeMs(bound.as_millis() + latency);
                }
            }
            let entry = actual.entry(constraint.target).or_insert(TimeMs::ZERO);
            if bound > *entry {
                *entry = bound;
                changed = true;
            }
        }
    }

    // Count window violations against the actual times.
    let mut must_violations = 0;
    let mut may_violations = 0;
    for constraint in &result.constraints {
        let source_time = actual[&constraint.source];
        let target_time = actual[&constraint.target];
        if !constraint.satisfied(source_time, target_time) {
            if constraint.strictness == cmif_core::arc::Strictness::Must {
                must_violations += 1;
            } else {
                may_violations += 1;
            }
        }
    }

    // Build the per-event report.
    let mut events = Vec::with_capacity(leaves.len());
    for leaf in &leaves {
        let scheduled_begin = result
            .schedule
            .node_times
            .get(leaf)
            .map(|(begin, _)| *begin)
            .unwrap_or(TimeMs::ZERO);
        let actual_begin = actual[&EventPoint::begin(*leaf)];
        let actual_end = actual[&EventPoint::end(*leaf)].max(actual_begin);
        let channel = doc
            .channel_of(*leaf)?
            .unwrap_or_else(|| "(unassigned)".to_string());
        let name = doc
            .node(*leaf)?
            .name()
            .map(str::to_string)
            .unwrap_or_else(|| format!("{leaf}"));
        events.push(PlayedEvent {
            node: *leaf,
            name,
            channel,
            scheduled_begin,
            actual_begin,
            actual_end,
        });
    }
    events.sort_by_key(|e| (e.actual_begin, e.node));

    // Freeze-frame time: gaps between consecutive events on channels that
    // carry continuous media (video keeps its last frame on screen, audio
    // goes silent) — the mechanism Figure 10 appeals to ("this may require
    // a freeze-frame video operation").
    let mut freeze_frame_ms = 0;
    let mut per_channel: HashMap<&str, Vec<&PlayedEvent>> = HashMap::new();
    for event in &events {
        per_channel
            .entry(event.channel.as_str())
            .or_default()
            .push(event);
    }
    for (channel, channel_events) in per_channel {
        let continuous = match doc.channels.get(channel) {
            Some(def) => def.medium.is_continuous(),
            // Channels that only exist on nodes: judge by the medium of the
            // first event presented on them.
            None => channel_events
                .first()
                .map(|event| doc.medium_of(event.node, resolver))
                .transpose()?
                .map(|medium| medium.is_continuous())
                .unwrap_or(false),
        };
        if !continuous {
            continue;
        }
        for pair in channel_events.windows(2) {
            let gap = pair[1].actual_begin.as_millis() - pair[0].actual_end.as_millis();
            if gap > 0 {
                freeze_frame_ms += gap;
            }
        }
    }

    let total_duration = events
        .iter()
        .map(|e| e.actual_end)
        .max()
        .unwrap_or(TimeMs::ZERO);

    Ok(PlaybackReport {
        events,
        must_violations,
        may_violations,
        freeze_frame_ms,
        total_duration,
    })
}

/// Runs `runs` playback simulations with different seeds and returns the
/// fraction of runs in which every `Must` window held.
///
/// This is the "Must-satisfaction rate" series of the Figure 8 bench.
pub fn must_satisfaction_rate(
    doc: &Document,
    result: &SolveResult,
    resolver: &dyn DescriptorResolver,
    base_jitter: &JitterModel,
    runs: u32,
) -> Result<f64> {
    if runs == 0 {
        return Ok(1.0);
    }
    let mut ok = 0u32;
    for run in 0..runs {
        let jitter = JitterModel {
            seed: base_jitter.seed.wrapping_add(run as u64),
            ..base_jitter.clone()
        };
        let report = play(doc, result, resolver, &jitter)?;
        if report.meets_must_constraints() {
            ok += 1;
        }
    }
    Ok(ok as f64 / runs as f64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solver::solve;
    use crate::types::ScheduleOptions;
    use cmif_core::arc::SyncArc;
    use cmif_core::prelude::*;

    fn doc_with_window(window_ms: i64) -> Document {
        let mut doc = DocumentBuilder::new("win")
            .channel("audio", MediaKind::Audio)
            .channel("caption", MediaKind::Text)
            .descriptor(
                DataDescriptor::new("speech", MediaKind::Audio, "pcm8")
                    .with_duration(TimeMs::from_secs(6)),
            )
            .root_par(|root| {
                root.ext("voice", "audio", "speech");
                root.imm_text("line", "caption", "caption text", 3_000);
            })
            .build()
            .unwrap();
        let line = doc.find("/line").unwrap();
        doc.add_arc(
            line,
            SyncArc::hard_start("../voice", "").with_window(
                DelayMs::ZERO,
                MaxDelay::Bounded(DelayMs::from_millis(window_ms)),
            ),
        )
        .unwrap();
        doc
    }

    fn solved(doc: &Document) -> SolveResult {
        solve(doc, &doc.catalog, &ScheduleOptions::default()).unwrap()
    }

    #[test]
    fn ideal_device_matches_the_schedule_exactly() {
        let doc = doc_with_window(0);
        let result = solved(&doc);
        let report = play(&doc, &result, &doc.catalog, &JitterModel::ideal()).unwrap();
        assert_eq!(report.must_violations, 0);
        assert_eq!(report.may_violations, 0);
        assert_eq!(report.max_drift_ms(), 0);
        assert_eq!(report.total_duration, result.schedule.total_duration);
    }

    #[test]
    fn jitter_beyond_a_hard_window_causes_must_violations() {
        let doc = doc_with_window(0);
        let result = solved(&doc);
        // 400 ms of caption-channel jitter against a 0 ms window: essentially
        // every non-zero draw violates the hard window.
        let jitter = JitterModel::ideal().with_channel("caption", 400);
        let jitter = JitterModel { seed: 3, ..jitter };
        let report = play(&doc, &result, &doc.catalog, &jitter).unwrap();
        assert!(report.must_violations >= 1);
        assert!(report.max_drift_ms() > 0);
    }

    #[test]
    fn wide_windows_absorb_the_same_jitter() {
        let doc = doc_with_window(500);
        let result = solved(&doc);
        let jitter = JitterModel {
            seed: 3,
            ..JitterModel::ideal().with_channel("caption", 400)
        };
        let report = play(&doc, &result, &doc.catalog, &jitter).unwrap();
        assert_eq!(report.must_violations, 0);
    }

    #[test]
    fn satisfaction_rate_increases_with_window_width() {
        let narrow = doc_with_window(50);
        let wide = doc_with_window(1_000);
        let narrow_result = solved(&narrow);
        let wide_result = solved(&wide);
        let jitter = JitterModel::uniform(600, 11);
        let narrow_rate =
            must_satisfaction_rate(&narrow, &narrow_result, &narrow.catalog, &jitter, 40).unwrap();
        let wide_rate =
            must_satisfaction_rate(&wide, &wide_result, &wide.catalog, &jitter, 40).unwrap();
        assert!(wide_rate > narrow_rate);
        assert!(wide_rate > 0.9);
    }

    #[test]
    fn late_controlling_events_push_their_targets() {
        // The caption is hard-synchronized to the voice. If the voice starts
        // late, the caption moves with it and the Must window still holds.
        let doc = doc_with_window(0);
        let result = solved(&doc);
        let jitter = JitterModel {
            seed: 9,
            ..JitterModel::ideal().with_channel("audio", 300)
        };
        let report = play(&doc, &result, &doc.catalog, &jitter).unwrap();
        let voice = report.events.iter().find(|e| e.name == "voice").unwrap();
        let line = report.events.iter().find(|e| e.name == "line").unwrap();
        assert!(voice.drift_ms() > 0);
        assert!(line.actual_begin >= voice.actual_begin);
        assert_eq!(report.must_violations, 0);
    }

    #[test]
    fn freeze_frames_are_accumulated_for_continuous_channels() {
        // Two video shots with a forced 2-second gap between them.
        let mut doc = DocumentBuilder::new("freeze")
            .channel("video", MediaKind::Video)
            .channel("caption", MediaKind::Text)
            .descriptor(
                DataDescriptor::new("v", MediaKind::Video, "rgb24")
                    .with_duration(TimeMs::from_secs(2)),
            )
            .root_par(|root| {
                root.seq("track", |t| {
                    t.ext("shot-1", "video", "v");
                    t.ext("shot-2", "video", "v");
                });
                root.imm_text("long", "caption", "slow caption", 6_000);
            })
            .build()
            .unwrap();
        let shot2 = doc.find("/track/shot-2").unwrap();
        doc.add_arc(
            shot2,
            SyncArc::hard_start("/long", "").from_source_anchor(Anchor::End),
        )
        .unwrap();
        let result = solved(&doc);
        let report = play(&doc, &result, &doc.catalog, &JitterModel::ideal()).unwrap();
        assert_eq!(report.freeze_frame_ms, 4_000);
    }

    #[test]
    fn report_display_and_mean_drift() {
        let doc = doc_with_window(1_000);
        let result = solved(&doc);
        let jitter = JitterModel::uniform(200, 5);
        let report = play(&doc, &result, &doc.catalog, &jitter).unwrap();
        assert!(report.mean_drift_ms() >= 0.0);
        let text = report.to_string();
        assert!(text.contains("events"));
        assert!(text.contains("actual duration"));
    }

    #[test]
    fn empty_rate_run_count_defaults_to_full_satisfaction() {
        let doc = doc_with_window(100);
        let result = solved(&doc);
        let rate =
            must_satisfaction_rate(&doc, &result, &doc.catalog, &JitterModel::ideal(), 0).unwrap();
        assert_eq!(rate, 1.0);
    }
}
