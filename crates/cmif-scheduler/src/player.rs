//! Playback reports and the one-shot simulation shim.
//!
//! The scheduler produces an *intended* schedule; a real presentation
//! environment then launches events with some per-channel sloppiness. The
//! δ/ε tolerance windows exist precisely so a document survives that
//! sloppiness on diverse hardware ("this is especially useful for documents
//! that need to run on diverse sets of hardware", §5.3.1).
//!
//! The simulation itself now lives in [`crate::session::PlayerSession`], a
//! step-wise state machine that many documents can share worker threads
//! through (see [`crate::engine::Engine`]). This module keeps the report
//! types — [`PlayedEvent`] and [`PlaybackReport`], the quantities the
//! Figure 8 bench sweeps against jitter and window width — plus the
//! multi-run [`must_satisfaction_rate`] sweep.

use std::fmt;

use crate::error::Result;
use cmif_core::descriptor::DescriptorResolver;
use cmif_core::node::NodeId;
use cmif_core::symbol::Symbol;
use cmif_core::time::TimeMs;
use cmif_core::tree::Document;

use crate::environment::JitterModel;
use crate::session::PlayerSession;
use crate::solver::SolveResult;

/// One presented event in a playback run: intended vs actual times.
#[derive(Debug, Clone, PartialEq)]
pub struct PlayedEvent {
    /// The leaf node presented.
    pub node: NodeId,
    /// The node's interned name.
    pub name: Symbol,
    /// The channel it played on.
    pub channel: Symbol,
    /// The begin time the schedule intended.
    pub scheduled_begin: TimeMs,
    /// The begin time the simulated device achieved.
    pub actual_begin: TimeMs,
    /// The end time the simulated device achieved.
    pub actual_end: TimeMs,
}

impl PlayedEvent {
    /// How late (positive) or early (negative) the event started relative to
    /// the intended schedule.
    pub fn drift_ms(&self) -> i64 {
        self.actual_begin.as_millis() - self.scheduled_begin.as_millis()
    }
}

/// The outcome of one simulated playback run.
#[derive(Debug, Clone, PartialEq)]
pub struct PlaybackReport {
    /// Every presented event with intended and actual times.
    pub events: Vec<PlayedEvent>,
    /// Number of `Must` windows the actual times violated.
    pub must_violations: usize,
    /// Number of `May` windows the actual times violated.
    pub may_violations: usize,
    /// Total freeze-frame (gap-bridging) time needed on continuous channels,
    /// in milliseconds.
    pub freeze_frame_ms: i64,
    /// Actual end of the presentation.
    pub total_duration: TimeMs,
}

impl PlaybackReport {
    /// Largest absolute drift of any event.
    pub fn max_drift_ms(&self) -> i64 {
        self.events
            .iter()
            .map(|e| e.drift_ms().abs())
            .max()
            .unwrap_or(0)
    }

    /// Mean absolute drift over all events.
    pub fn mean_drift_ms(&self) -> f64 {
        if self.events.is_empty() {
            return 0.0;
        }
        self.events
            .iter()
            .map(|e| e.drift_ms().abs() as f64)
            .sum::<f64>()
            / self.events.len() as f64
    }

    /// True when no `Must` window was violated in this run.
    pub fn meets_must_constraints(&self) -> bool {
        self.must_violations == 0
    }
}

impl fmt::Display for PlaybackReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{} events, {} must violations, {} may violations, max drift {} ms, freeze {} ms",
            self.events.len(),
            self.must_violations,
            self.may_violations,
            self.max_drift_ms(),
            self.freeze_frame_ms
        )?;
        write!(f, "actual duration: {}", self.total_duration)
    }
}

/// Runs `runs` playback simulations with different seeds and returns the
/// fraction of runs in which every `Must` window held.
///
/// This is the "Must-satisfaction rate" series of the Figure 8 bench.
pub fn must_satisfaction_rate(
    doc: &Document,
    result: &SolveResult,
    resolver: &dyn DescriptorResolver,
    base_jitter: &JitterModel,
    runs: u32,
) -> Result<f64> {
    if runs == 0 {
        return Ok(1.0);
    }
    let mut ok = 0u32;
    for run in 0..runs {
        let jitter = JitterModel {
            seed: base_jitter.seed.wrapping_add(run as u64),
            ..base_jitter.clone()
        };
        let report = PlayerSession::new(doc, result, resolver, &jitter)?.run_to_completion();
        if report.meets_must_constraints() {
            ok += 1;
        }
    }
    Ok(ok as f64 / runs as f64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::ConstraintGraph;
    use crate::types::ScheduleOptions;
    use cmif_core::arc::{Anchor, SyncArc};
    use cmif_core::prelude::*;

    fn doc_with_window(window_ms: i64) -> Document {
        let mut doc = DocumentBuilder::new("win")
            .channel("audio", MediaKind::Audio)
            .channel("caption", MediaKind::Text)
            .descriptor(
                DataDescriptor::new("speech", MediaKind::Audio, "pcm8")
                    .with_duration(TimeMs::from_secs(6)),
            )
            .root_par(|root| {
                root.ext("voice", "audio", "speech");
                root.imm_text("line", "caption", "caption text", 3_000);
            })
            .build()
            .unwrap();
        let line = doc.find("/line").unwrap();
        doc.add_arc(
            line,
            SyncArc::hard_start("../voice", "").with_window(
                DelayMs::ZERO,
                MaxDelay::Bounded(DelayMs::from_millis(window_ms)),
            ),
        )
        .unwrap();
        doc
    }

    fn solved(doc: &Document) -> SolveResult {
        ConstraintGraph::derive(doc, &doc.catalog, &ScheduleOptions::default())
            .unwrap()
            .solve(doc, &doc.catalog)
            .unwrap()
    }

    fn simulate(doc: &Document, result: &SolveResult, jitter: &JitterModel) -> PlaybackReport {
        PlayerSession::new(doc, result, &doc.catalog, jitter)
            .unwrap()
            .run_to_completion()
    }

    #[test]
    fn ideal_device_matches_the_schedule_exactly() {
        let doc = doc_with_window(0);
        let result = solved(&doc);
        let report = simulate(&doc, &result, &JitterModel::ideal());
        assert_eq!(report.must_violations, 0);
        assert_eq!(report.may_violations, 0);
        assert_eq!(report.max_drift_ms(), 0);
        assert_eq!(report.total_duration, result.schedule.total_duration);
    }

    #[test]
    fn jitter_beyond_a_hard_window_causes_must_violations() {
        let doc = doc_with_window(0);
        let result = solved(&doc);
        // 400 ms of caption-channel jitter against a 0 ms window: essentially
        // every non-zero draw violates the hard window.
        let jitter = JitterModel::ideal().with_channel("caption", 400);
        let jitter = JitterModel { seed: 3, ..jitter };
        let report = simulate(&doc, &result, &jitter);
        assert!(report.must_violations >= 1);
        assert!(report.max_drift_ms() > 0);
    }

    #[test]
    fn wide_windows_absorb_the_same_jitter() {
        let doc = doc_with_window(500);
        let result = solved(&doc);
        let jitter = JitterModel {
            seed: 3,
            ..JitterModel::ideal().with_channel("caption", 400)
        };
        let report = simulate(&doc, &result, &jitter);
        assert_eq!(report.must_violations, 0);
    }

    #[test]
    fn satisfaction_rate_increases_with_window_width() {
        let narrow = doc_with_window(50);
        let wide = doc_with_window(1_000);
        let narrow_result = solved(&narrow);
        let wide_result = solved(&wide);
        let jitter = JitterModel::uniform(600, 11);
        let narrow_rate =
            must_satisfaction_rate(&narrow, &narrow_result, &narrow.catalog, &jitter, 40).unwrap();
        let wide_rate =
            must_satisfaction_rate(&wide, &wide_result, &wide.catalog, &jitter, 40).unwrap();
        assert!(wide_rate > narrow_rate);
        assert!(wide_rate > 0.9);
    }

    #[test]
    fn late_controlling_events_push_their_targets() {
        // The caption is hard-synchronized to the voice. If the voice starts
        // late, the caption moves with it and the Must window still holds.
        let doc = doc_with_window(0);
        let result = solved(&doc);
        let jitter = JitterModel {
            seed: 9,
            ..JitterModel::ideal().with_channel("audio", 300)
        };
        let report = simulate(&doc, &result, &jitter);
        let voice = report.events.iter().find(|e| e.name == "voice").unwrap();
        let line = report.events.iter().find(|e| e.name == "line").unwrap();
        assert!(voice.drift_ms() > 0);
        assert!(line.actual_begin >= voice.actual_begin);
        assert_eq!(report.must_violations, 0);
    }

    #[test]
    fn freeze_frames_are_accumulated_for_continuous_channels() {
        // Two video shots with a forced 2-second gap between them.
        let mut doc = DocumentBuilder::new("freeze")
            .channel("video", MediaKind::Video)
            .channel("caption", MediaKind::Text)
            .descriptor(
                DataDescriptor::new("v", MediaKind::Video, "rgb24")
                    .with_duration(TimeMs::from_secs(2)),
            )
            .root_par(|root| {
                root.seq("track", |t| {
                    t.ext("shot-1", "video", "v");
                    t.ext("shot-2", "video", "v");
                });
                root.imm_text("long", "caption", "slow caption", 6_000);
            })
            .build()
            .unwrap();
        let shot2 = doc.find("/track/shot-2").unwrap();
        doc.add_arc(
            shot2,
            SyncArc::hard_start("/long", "").from_source_anchor(Anchor::End),
        )
        .unwrap();
        let result = solved(&doc);
        let report = simulate(&doc, &result, &JitterModel::ideal());
        assert_eq!(report.freeze_frame_ms, 4_000);
    }

    #[test]
    fn report_display_and_mean_drift() {
        let doc = doc_with_window(1_000);
        let result = solved(&doc);
        let jitter = JitterModel::uniform(200, 5);
        let report = simulate(&doc, &result, &jitter);
        assert!(report.mean_drift_ms() >= 0.0);
        let text = report.to_string();
        assert!(text.contains("events"));
        assert!(text.contains("actual duration"));
    }

    #[test]
    fn empty_rate_run_count_defaults_to_full_satisfaction() {
        let doc = doc_with_window(100);
        let result = solved(&doc);
        let rate =
            must_satisfaction_rate(&doc, &result, &doc.catalog, &JitterModel::ideal(), 0).unwrap();
        assert_eq!(rate, 1.0);
    }
}
