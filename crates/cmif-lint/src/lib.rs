//! # cmif-lint — static analysis for CMIF documents
//!
//! Where `cmif_core::validate` answers "is this document well-formed?" with
//! the first `CoreError` it meets, this crate runs a *registry* of coded
//! analyses ([`passes::registry`]) and collects every finding as a
//! [`Diagnostic`] — renderable against the source text a parsed document
//! carries in its `SourceMap`, and gradable per code through a
//! [`SeverityConfig`] (`allow`/`warn`/`deny`).
//!
//! The registry covers three namespaces:
//!
//! * **L0xx structure** — the historical validation rules (duplicate sibling
//!   names, root-only attributes, style cycles, missing files/channels),
//!   plus unreachable-subtree detection;
//! * **L1xx timing** — analyses over the *derived* constraint graph:
//!   positive synchronization cycles with the offending arc path (L101),
//!   invalid and mutually unsatisfiable delay windows;
//! * **L2xx channels and resources** — dangling channel and descriptor
//!   references, static channel double-booking from declared durations, and
//!   configurable depth/size ceilings ([`Limits`]).
//!
//! [`admission_gate`] packages a configured [`Linter`] as an engine-side
//! [`cmif_scheduler::LintGate`], so deny-level documents are refused at
//! admission (`SchedulerError::LintRejected`) before they cost a worker.
//!
//! ```
//! use cmif_core::prelude::*;
//! use cmif_lint::Linter;
//!
//! # fn main() -> Result<()> {
//! let mut doc = Document::with_root(NodeKind::Seq);
//! let root = doc.root()?;
//! let leaf = doc.add_imm_text(root, "hello")?;
//! doc.set_attr(leaf, AttrName::Channel, AttrValue::Id("nowhere".into()))?;
//!
//! let report = Linter::new().check(&doc);
//! assert!(report.has_deny()); // L201: channel `nowhere` is not declared
//! # Ok(()) }
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod passes;

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError};

use cmif_core::diag::{Diagnostic, Severity, SeverityConfig, SourceMap};
use cmif_core::tree::Document;
use cmif_scheduler::{LintGate, ScheduleOptions};

use passes::Fixpoint;

pub use cmif_core::diag::{codes, Code};
pub use passes::{LintContext, Pass};

/// Resource ceilings enforced by the L204/L205 passes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Limits {
    /// Maximum tree depth before L204 fires.
    pub max_depth: usize,
    /// Maximum node count before L205 fires.
    pub max_nodes: usize,
}

impl Default for Limits {
    fn default() -> Self {
        Limits {
            max_depth: 256,
            max_nodes: 65_536,
        }
    }
}

/// A per-revision cache of constraint-relaxation fixpoints.
///
/// The L1xx/L2xx timing passes all consult the same longest-path fixpoint
/// over the derived constraint graph. Relaxing that graph dominates lint
/// cost on large documents, so the [`Linter`] keeps the result keyed by the
/// document's [`Document::revision_id`] (plus the derivation options that
/// shaped the constraints): re-linting an unedited revision — as the live
/// authoring loop does after every accepted edit of a *different* document,
/// or the admission gate does when the same document is resubmitted — skips
/// the relaxation entirely. A hit is only honoured when the freshly derived
/// constraints still match the cached ones, so resolver or catalog changes
/// behind an unchanged tree cannot serve a stale fixpoint.
#[derive(Debug, Default)]
pub struct LintCache {
    entries: Mutex<HashMap<(u64, i64, bool), Arc<Fixpoint>>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

/// Entry bound before the cache wholesale-clears itself; crude, but a lint
/// cache outliving 64 distinct revisions is churning, not converging.
const CACHE_CAPACITY: usize = 64;

impl LintCache {
    fn lookup_or_compute(
        &self,
        doc: &Document,
        options: &ScheduleOptions,
        constraints: &[cmif_scheduler::Constraint],
    ) -> Arc<Fixpoint> {
        let key = (
            doc.revision_id(),
            options.default_discrete_ms,
            options.fill_unknown_in_parallel,
        );
        let mut entries = self.entries.lock().unwrap_or_else(PoisonError::into_inner);
        if let Some(entry) = entries.get(&key) {
            if entry.constraints_match(constraints) {
                self.hits.fetch_add(1, Ordering::Relaxed);
                return Arc::clone(entry);
            }
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let fixpoint = Arc::new(Fixpoint::compute(doc, constraints.to_vec()));
        if entries.len() >= CACHE_CAPACITY {
            entries.clear();
        }
        entries.insert(key, Arc::clone(&fixpoint));
        fixpoint
    }

    fn stats(&self) -> (u64, u64) {
        (
            self.hits.load(Ordering::Relaxed),
            self.misses.load(Ordering::Relaxed),
        )
    }
}

/// A configured lint run: severity policy, resource limits, and the
/// derivation options used when passes consult the constraint graph.
///
/// Cloning a linter shares its [`LintCache`], so the engine admission gate
/// (which clones per inspection, see [`admission_gate`]) still benefits from
/// fixpoints cached by earlier inspections.
#[derive(Debug, Clone, Default)]
pub struct Linter {
    config: SeverityConfig,
    limits: Limits,
    options: ScheduleOptions,
    cache: Arc<LintCache>,
}

impl Linter {
    /// A linter with registry-default severities and default limits.
    pub fn new() -> Linter {
        Linter::default()
    }

    /// Replaces the severity policy.
    pub fn with_config(mut self, config: SeverityConfig) -> Linter {
        self.config = config;
        self
    }

    /// Replaces the resource ceilings.
    pub fn with_limits(mut self, limits: Limits) -> Linter {
        self.limits = limits;
        self
    }

    /// Replaces the constraint-derivation options (they decide, for example,
    /// the assumed duration of discrete media, which feeds L203).
    pub fn with_options(mut self, options: ScheduleOptions) -> Linter {
        self.options = options;
        self
    }

    /// The severity policy in force.
    pub fn config(&self) -> &SeverityConfig {
        &self.config
    }

    /// Fixpoint-cache counters as `(hits, misses)` — a hit means a lint run
    /// reused a relaxation fixpoint cached for the same document revision
    /// instead of re-relaxing the constraint graph.
    pub fn cache_stats(&self) -> (u64, u64) {
        self.cache.stats()
    }

    /// Runs every registered pass over the document and grades the findings
    /// through the severity policy. `Allow`ed findings are dropped.
    /// External data references resolve against the document's own catalog;
    /// use [`Linter::check_resolved`] for store-backed documents.
    pub fn check(&self, doc: &Document) -> LintReport {
        self.check_resolved(doc, &doc.catalog)
    }

    /// [`Linter::check`] with an external descriptor resolver — e.g. a
    /// block store's catalog when the document's media live in a store
    /// rather than its own catalog (the pipeline's stage 2 does this).
    pub fn check_resolved(
        &self,
        doc: &Document,
        resolver: &dyn cmif_core::descriptor::DescriptorResolver,
    ) -> LintReport {
        let ctx = LintContext::with_resolver(doc, resolver, &self.options, &self.limits);
        if let Some(constraints) = ctx.constraints() {
            let fixpoint = self
                .cache
                .lookup_or_compute(doc, &self.options, constraints);
            ctx.install_fixpoint(fixpoint);
        }
        let mut raw = Vec::new();
        for pass in passes::registry() {
            pass.run(&ctx, &mut raw);
        }
        let diagnostics = raw
            .into_iter()
            .filter_map(|diag| match self.config.severity_of(diag.code) {
                Severity::Allow => None,
                severity => Some(diag.with_severity(severity)),
            })
            .collect();
        LintReport { diagnostics }
    }
}

/// The outcome of one lint run: every graded finding, in pass order.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct LintReport {
    diagnostics: Vec<Diagnostic>,
}

impl LintReport {
    /// Every finding, in pass order.
    pub fn diagnostics(&self) -> &[Diagnostic] {
        &self.diagnostics
    }

    /// Consumes the report, yielding the findings.
    pub fn into_diagnostics(self) -> Vec<Diagnostic> {
        self.diagnostics
    }

    /// True when no pass found anything (at warn level or above).
    pub fn is_clean(&self) -> bool {
        self.diagnostics.is_empty()
    }

    /// True when at least one finding is deny-severity.
    pub fn has_deny(&self) -> bool {
        self.diagnostics.iter().any(Diagnostic::is_deny)
    }

    /// The deny-severity findings only.
    pub fn denials(&self) -> impl Iterator<Item = &Diagnostic> {
        self.diagnostics.iter().filter(|d| d.is_deny())
    }

    /// Renders every finding, rustc-style, against the given source map
    /// (usually `doc.sources.as_deref()`).
    pub fn render(&self, sources: Option<&SourceMap>) -> String {
        cmif_core::diag::render_all(&self.diagnostics, sources)
    }
}

/// Packages a linter as an engine admission gate
/// ([`cmif_scheduler::EngineConfig::lint_gate`]).
///
/// A submission's `LintPolicy::Configured` severity config replaces the
/// linter's own for that document; `LintPolicy::Default` uses the linter as
/// given (and `LintPolicy::Skip` never reaches the closure).
pub fn admission_gate(linter: Linter) -> LintGate {
    LintGate::new(move |doc, config| {
        let run = match config {
            Some(config) => linter.clone().with_config(config.clone()),
            None => linter.clone(),
        };
        run.check(doc).into_diagnostics()
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use cmif_core::arc::SyncArc;
    use cmif_core::attr::AttrName;
    use cmif_core::channel::{ChannelDef, MediaKind};
    use cmif_core::descriptor::DataDescriptor;
    use cmif_core::diag::codes;
    use cmif_core::node::NodeKind;
    use cmif_core::style::StyleDef;
    use cmif_core::time::{MediaTime, TimeMs};
    use cmif_core::value::AttrValue;

    fn valid_doc() -> Document {
        let mut doc = Document::with_root(NodeKind::Seq);
        let root = doc.root().unwrap();
        doc.channels
            .define(ChannelDef::new("audio", MediaKind::Audio))
            .unwrap();
        doc.catalog
            .register(
                DataDescriptor::new("clip", MediaKind::Audio, "pcm8")
                    .with_duration(TimeMs::from_secs(4)),
            )
            .unwrap();
        let leaf = doc.add_ext(root).unwrap();
        doc.set_attr(leaf, AttrName::Name, AttrValue::Id("voice".into()))
            .unwrap();
        doc.set_attr(leaf, AttrName::Channel, AttrValue::Id("audio".into()))
            .unwrap();
        doc.set_attr(leaf, AttrName::File, AttrValue::Str("clip".into()))
            .unwrap();
        doc
    }

    fn codes_of(report: &LintReport) -> Vec<&'static str> {
        report
            .diagnostics()
            .iter()
            .map(|d| d.code.as_str())
            .collect()
    }

    #[test]
    fn a_valid_document_is_clean() {
        let report = Linter::new().check(&valid_doc());
        assert!(report.is_clean(), "{}", report.render(None));
    }

    #[test]
    fn an_empty_document_reports_l001() {
        let report = Linter::new().check(&Document::new());
        assert_eq!(codes_of(&report), ["L001"]);
        assert!(report.has_deny());
    }

    #[test]
    fn every_migrated_structural_rule_has_a_coded_pass() {
        let mut doc = valid_doc();
        let root = doc.root().unwrap();
        // L002: duplicate sibling name.
        let dup = doc.add_imm_text(root, "x").unwrap();
        doc.set_attr(dup, AttrName::Name, AttrValue::Id("voice".into()))
            .unwrap();
        doc.set_attr(dup, AttrName::Channel, AttrValue::Id("audio".into()))
            .unwrap();
        // L005 + L006: a style cycle plus a dangling style reference.
        doc.styles
            .define(StyleDef::new("a").with_parent("b"))
            .unwrap();
        doc.styles
            .define(StyleDef::new("b").with_parent("a"))
            .unwrap();
        doc.set_attr(dup, AttrName::Style, AttrValue::Id("missing".into()))
            .unwrap();
        // L007: external node without a file; L008 is covered by a bare leaf.
        let bare_ext = doc.add_ext(root).unwrap();
        doc.set_attr(bare_ext, AttrName::Channel, AttrValue::Id("audio".into()))
            .unwrap();
        doc.add_imm_text(root, "orphan").unwrap();
        // L201: undefined channel.
        let misrouted = doc.add_imm_text(root, "y").unwrap();
        doc.set_attr(misrouted, AttrName::Channel, AttrValue::Id("video".into()))
            .unwrap();

        let report = Linter::new().check(&doc);
        let found = codes_of(&report);
        for expected in ["L002", "L005", "L006", "L007", "L008", "L201"] {
            assert!(found.contains(&expected), "missing {expected} in {found:?}");
        }
    }

    #[test]
    fn arc_cycles_are_reported_with_their_route() {
        let mut doc = valid_doc();
        let root = doc.root().unwrap();
        let line = doc.add_imm_text(root, "caption line").unwrap();
        doc.set_attr(line, AttrName::Name, AttrValue::Id("line".into()))
            .unwrap();
        doc.set_attr(line, AttrName::Channel, AttrValue::Id("audio".into()))
            .unwrap();
        let voice = doc.find("/voice").unwrap();
        doc.add_arc(
            line,
            SyncArc::hard_start("../voice", "").with_offset(MediaTime::seconds(1)),
        )
        .unwrap();
        doc.add_arc(
            voice,
            SyncArc::hard_start("../line", "").with_offset(MediaTime::seconds(1)),
        )
        .unwrap();

        let report = Linter::new().check(&doc);
        let cycle = report
            .diagnostics()
            .iter()
            .find(|d| d.code == codes::ARC_CYCLE)
            .expect("cycle diagnostic");
        assert!(cycle.is_deny());
        // The route names both nodes by path, and the related entries name
        // the explicit arcs that close the loop.
        assert!(cycle.message.contains("/voice"), "{}", cycle.message);
        assert!(cycle.message.contains("/line"), "{}", cycle.message);
        assert!(
            cycle
                .related
                .iter()
                .any(|r| r.message.contains("explicit arc")),
            "{:?}",
            cycle.related
        );
    }

    #[test]
    fn conflicting_windows_on_one_event_pair_are_reported() {
        use cmif_core::time::{DelayMs, MaxDelay};
        let mut doc = valid_doc();
        let root = doc.root().unwrap();
        let line = doc.add_imm_text(root, "caption line").unwrap();
        doc.set_attr(line, AttrName::Name, AttrValue::Id("line".into()))
            .unwrap();
        doc.set_attr(line, AttrName::Channel, AttrValue::Id("audio".into()))
            .unwrap();
        // Two arcs over the same pair: one demands ≥ 2 s, the other ≤ 0.5 s.
        doc.add_arc(
            line,
            SyncArc::hard_start("../voice", "").with_offset(MediaTime::seconds(2)),
        )
        .unwrap();
        doc.add_arc(
            line,
            SyncArc::hard_start("../voice", "")
                .with_window(DelayMs::ZERO, MaxDelay::Bounded(DelayMs::from_millis(500))),
        )
        .unwrap();

        let report = Linter::new().check(&doc);
        assert!(
            codes_of(&report).contains(&"L104"),
            "{}",
            report.render(None)
        );
    }

    #[test]
    fn double_booked_channels_warn_but_do_not_deny() {
        let mut doc = valid_doc();
        let root = doc.root().unwrap();
        let par = doc.add_par(root).unwrap();
        for name in ["first", "second"] {
            let leaf = doc.add_imm_text(par, "text").unwrap();
            doc.set_attr(leaf, AttrName::Name, AttrValue::Id(name.into()))
                .unwrap();
            doc.set_attr(leaf, AttrName::Channel, AttrValue::Id("audio".into()))
                .unwrap();
        }
        let report = Linter::new().check(&doc);
        let booking = report
            .diagnostics()
            .iter()
            .find(|d| d.code == codes::CHANNEL_DOUBLE_BOOKING)
            .expect("double-booking diagnostic");
        assert!(!booking.is_deny());
        assert!(!report.has_deny(), "{}", report.render(None));
    }

    #[test]
    fn unreachable_nodes_and_dangling_descriptors_are_found() {
        let mut doc = valid_doc();
        // Orphan the whole original tree by installing a fresh root…
        let new_root = doc.set_root(NodeKind::Seq);
        // …and hang a leaf with a descriptor the catalog does not know.
        let leaf = doc.add_ext(new_root).unwrap();
        doc.set_attr(leaf, AttrName::Channel, AttrValue::Id("audio".into()))
            .unwrap();
        doc.set_attr(leaf, AttrName::File, AttrValue::Str("nowhere".into()))
            .unwrap();

        let report = Linter::new().check(&doc);
        let found = codes_of(&report);
        assert!(found.contains(&"L009"), "{found:?}");
        assert!(found.contains(&"L202"), "{found:?}");
    }

    #[test]
    fn limits_gate_depth_and_size() {
        let doc = valid_doc();
        let tight = Limits {
            max_depth: 0,
            max_nodes: 1,
        };
        let report = Linter::new().with_limits(tight).check(&doc);
        let found = codes_of(&report);
        assert!(found.contains(&"L204"), "{found:?}");
        assert!(found.contains(&"L205"), "{found:?}");
    }

    #[test]
    fn severity_config_regrades_and_drops_findings() {
        let mut doc = valid_doc();
        let root = doc.root().unwrap();
        doc.add_imm_text(root, "orphan").unwrap(); // L008, deny by default

        let allowed =
            Linter::new().with_config(SeverityConfig::new().allow(codes::MISSING_CHANNEL));
        assert!(allowed.check(&doc).is_clean());

        let warned = Linter::new().with_config(SeverityConfig::new().warn(codes::MISSING_CHANNEL));
        let report = warned.check(&doc);
        assert!(!report.is_clean());
        assert!(!report.has_deny());
    }

    #[test]
    fn parsed_documents_get_spans_on_their_diagnostics() {
        let source = "\
(cmif
  (channels (channel audio audio))
  (seq (name news)
    (ext (name voice) (channel audio) (file \"missing-clip\"))))";
        let doc = cmif_format::parse_document(source).expect("document parses");
        let report = Linter::new().check(&doc);
        let dangling = report
            .diagnostics()
            .iter()
            .find(|d| d.code == codes::DANGLING_DESCRIPTOR)
            .expect("L202 diagnostic");
        let span = dangling.span.expect("parsed docs carry spans");
        let text = span.text(source).expect("span lies inside the source");
        assert!(text.contains("missing-clip"), "{text}");
        // The rendered form underlines the offending bytes.
        let rendered = dangling.render(doc.sources.as_deref());
        assert!(rendered.contains('^'), "{rendered}");
    }

    #[test]
    fn the_admission_gate_refuses_deny_documents() {
        use cmif_scheduler::{LintPolicy, SchedulerError};
        let gate = admission_gate(Linter::new());
        let mut doc = valid_doc();
        let root = doc.root().unwrap();
        doc.add_imm_text(root, "orphan").unwrap(); // L008

        let err = gate
            .inspect(&doc, &LintPolicy::Default)
            .expect_err("deny finding refuses admission");
        assert!(matches!(err, SchedulerError::LintRejected { .. }));

        assert!(gate.inspect(&doc, &LintPolicy::Skip).is_ok());
        let relaxed = LintPolicy::Configured(SeverityConfig::new().allow(codes::MISSING_CHANNEL));
        assert!(gate.inspect(&doc, &relaxed).is_ok());
        assert!(gate.inspect(&valid_doc(), &LintPolicy::Default).is_ok());
    }

    #[test]
    fn the_fixpoint_cache_hits_on_an_unchanged_revision() {
        let linter = Linter::new();
        let doc = valid_doc();
        assert!(linter.check(&doc).is_clean());
        assert_eq!(linter.cache_stats(), (0, 1), "cold run must miss");

        // An unmutated clone shares the revision id, so the second run hits.
        assert!(linter.check(&doc.clone()).is_clean());
        assert_eq!(linter.cache_stats(), (1, 1));

        // Any mutation mints a fresh revision id: back to a miss.
        let mut edited = doc.clone();
        let root = edited.root().unwrap();
        let extra = edited.add_imm_text(root, "more").unwrap();
        edited
            .set_attr(extra, AttrName::Name, AttrValue::Id("more".into()))
            .unwrap();
        edited
            .set_attr(extra, AttrName::Channel, AttrValue::Id("audio".into()))
            .unwrap();
        assert!(linter.check(&edited).is_clean());
        assert_eq!(linter.cache_stats(), (1, 2));

        // Clones of the linter share the cache (the admission gate relies
        // on this — it clones per inspection).
        assert!(linter.clone().check(&doc).is_clean());
        assert_eq!(linter.cache_stats(), (2, 2));
    }

    #[test]
    fn cached_and_cold_cycle_reports_are_identical() {
        let mut doc = valid_doc();
        let root = doc.root().unwrap();
        let line = doc.add_imm_text(root, "caption line").unwrap();
        doc.set_attr(line, AttrName::Name, AttrValue::Id("line".into()))
            .unwrap();
        doc.set_attr(line, AttrName::Channel, AttrValue::Id("audio".into()))
            .unwrap();
        let voice = doc.find("/voice").unwrap();
        doc.add_arc(
            line,
            SyncArc::hard_start("../voice", "").with_offset(MediaTime::seconds(1)),
        )
        .unwrap();
        doc.add_arc(
            voice,
            SyncArc::hard_start("../line", "").with_offset(MediaTime::seconds(1)),
        )
        .unwrap();

        let linter = Linter::new();
        let cold = linter.check(&doc);
        let warm = linter.check(&doc);
        assert_eq!(linter.cache_stats(), (1, 1));
        assert_eq!(cold, warm, "a cached fixpoint must not change findings");
        assert!(cold
            .diagnostics()
            .iter()
            .any(|d| d.code == codes::ARC_CYCLE));
    }

    #[test]
    fn the_registry_runs_at_least_eight_passes_with_unique_codes() {
        let registry = passes::registry();
        assert!(registry.len() >= 8, "only {} passes", registry.len());
        let mut seen = std::collections::BTreeSet::new();
        for pass in registry {
            assert!(seen.insert(pass.code), "duplicate code {}", pass.code);
            assert!(!pass.name.is_empty());
        }
    }
}
