//! The pass registry: every analysis the linter runs, one diagnostic code
//! each.
//!
//! The L0xx passes are the structural rules that used to live inside
//! `cmif_core::validate::validate_all`, split into individually coded,
//! individually configurable analyses. The L1xx passes consult the *derived*
//! constraint graph (`cmif_scheduler::derive_constraints`), so they catch
//! timing contradictions — positive synchronization cycles, empty delay
//! windows — statically, before a document ever costs an engine worker. The
//! L2xx passes cover channels and resources.

use std::cell::OnceCell;
use std::collections::{BTreeSet, HashMap, HashSet};
use std::sync::Arc;

use cmif_core::attr::AttrName;
use cmif_core::descriptor::DescriptorResolver;
use cmif_core::diag::{codes, Code, Diagnostic, Related};
use cmif_core::error::CoreError;
use cmif_core::node::{NodeId, NodeKind};
use cmif_core::span::Span;
use cmif_core::style::style_names;
use cmif_core::time::TimeMs;
use cmif_core::tree::{unassigned_channel, Document};
use cmif_core::value::AttrValue;
use cmif_scheduler::{
    derive_constraints, Constraint, ConstraintOrigin, EventPoint, PointTimes, ScheduleOptions,
};

use crate::Limits;

/// The relaxed ASAP fixpoint of one document revision's derived constraint
/// set — or the positive cycle that prevents one.
///
/// Computed at most once per lint run and shared by every timing pass
/// (L101 consumes the cycle trace, L203 the event times), so no pass runs
/// its own relaxation. The [`crate::Linter`] additionally caches entries
/// per document revision, so re-linting an unchanged revision — the hot
/// path of a live authoring loop, where every accepted edit triggers a
/// fresh lint — skips relaxation entirely.
#[derive(Debug)]
pub struct Fixpoint {
    /// The constraints the fixpoint was computed from, in derivation
    /// order. Cache validation compares these on a revision-id hit: a
    /// changed resolver or catalog changes the derived set even when the
    /// tree itself is untouched.
    constraints: Vec<Constraint>,
    /// Event times at the fixpoint; empty when relaxation diverged.
    times: PointTimes,
    /// The recovered cycle when relaxation diverged.
    cycle: Option<CycleTrace>,
}

/// The positive cycle recovered from a diverging relaxation: constraint
/// indices along the loop, the point the loop closes on, and the size of
/// the event-point graph (for the fallback message when recovery failed).
#[derive(Debug)]
struct CycleTrace {
    route: Vec<usize>,
    start: Option<EventPoint>,
    points: usize,
}

impl Fixpoint {
    /// Longest-path relaxation with predecessor tracking: a graph that is
    /// still raising bounds after `|points| + 1` full passes contains a
    /// positive cycle (Bellman–Ford), and the predecessor chain recovers
    /// the arcs that form it.
    pub(crate) fn compute(doc: &Document, constraints: Vec<Constraint>) -> Fixpoint {
        let nodes = doc.preorder();
        let mut times: HashMap<EventPoint, i64> = HashMap::with_capacity(nodes.len() * 2);
        for node in &nodes {
            times.insert(EventPoint::begin(*node), 0);
            times.insert(EventPoint::end(*node), 0);
        }
        let mut pred: HashMap<EventPoint, usize> = HashMap::new();
        let mut last_raised = None;
        let max_passes = times.len() + 1;
        let mut converged = false;
        for _ in 0..max_passes {
            let mut changed = false;
            for (i, constraint) in constraints.iter().enumerate() {
                let Some(&source_time) = times.get(&constraint.source) else {
                    continue;
                };
                let bound = source_time
                    .saturating_add(constraint.offset_ms)
                    .saturating_add(constraint.min_delay_ms);
                let entry = times.entry(constraint.target).or_insert(0);
                if bound > *entry {
                    *entry = bound;
                    pred.insert(constraint.target, i);
                    last_raised = Some(constraint.target);
                    changed = true;
                }
            }
            if !changed {
                converged = true; // reached the fixpoint: no positive cycle
                break;
            }
        }
        if converged {
            let times = times
                .into_iter()
                .map(|(point, t)| (point, TimeMs::from_millis(t)))
                .collect();
            return Fixpoint {
                constraints,
                times,
                cycle: None,
            };
        }

        // Still diverging: walk the predecessor chain |points| steps back
        // from the last raised point to land inside a cycle, then collect
        // it.
        let points = times.len();
        let mut route: Vec<usize> = Vec::new();
        let mut start = None;
        if let Some(mut probe) = last_raised {
            for _ in 0..points {
                match pred.get(&probe) {
                    Some(&i) => probe = constraints[i].source,
                    None => break,
                }
            }
            let anchor = probe;
            let mut cursor = probe;
            loop {
                let Some(&i) = pred.get(&cursor) else {
                    route.clear();
                    break;
                };
                route.push(i);
                cursor = constraints[i].source;
                if cursor == anchor {
                    break;
                }
                if route.len() > points {
                    route.clear();
                    break;
                }
            }
            route.reverse();
            start = Some(anchor);
        }
        Fixpoint {
            constraints,
            times: PointTimes::new(),
            cycle: Some(CycleTrace {
                route,
                start,
                points,
            }),
        }
    }

    /// The event times at the fixpoint; `None` when relaxation diverged.
    pub(crate) fn times(&self) -> Option<&PointTimes> {
        if self.cycle.is_some() {
            None
        } else {
            Some(&self.times)
        }
    }

    /// Whether this fixpoint was computed from exactly `other`.
    pub(crate) fn constraints_match(&self, other: &[Constraint]) -> bool {
        self.constraints.as_slice() == other
    }
}

/// Everything a pass may look at: the document, the derivation policy, the
/// resource ceilings, and the pre-derived constraint set (shared by the
/// L1xx/L2xx passes so derivation runs once per lint, not once per pass).
pub struct LintContext<'a> {
    /// The document under analysis.
    pub doc: &'a Document,
    /// Derivation policy used when consulting the constraint graph.
    pub options: &'a ScheduleOptions,
    /// Resource ceilings enforced by L204/L205.
    pub limits: &'a Limits,
    /// The derived constraint set, `None` when derivation itself failed
    /// (dangling endpoints and the like — reported by their own passes).
    constraints: Option<Vec<Constraint>>,
    /// Where external data references resolve: the document's own catalog
    /// by default, a block store's catalog when the pipeline lints a
    /// store-backed document. Consulted by L202 and by derivation (leaf
    /// durations come from descriptors).
    resolver: &'a dyn DescriptorResolver,
    /// The shared relaxation fixpoint, computed lazily on first use — or
    /// installed up front from the linter's per-revision cache.
    fixpoint: OnceCell<Option<Arc<Fixpoint>>>,
}

impl<'a> LintContext<'a> {
    /// Prepares a context resolving descriptors against the document's own
    /// catalog (self-contained documents).
    pub fn new(doc: &'a Document, options: &'a ScheduleOptions, limits: &'a Limits) -> Self {
        LintContext::with_resolver(doc, &doc.catalog, options, limits)
    }

    /// Prepares a context with an external descriptor resolver (e.g. a
    /// block store's catalog), deriving the constraint set once up front.
    pub fn with_resolver(
        doc: &'a Document,
        resolver: &'a dyn DescriptorResolver,
        options: &'a ScheduleOptions,
        limits: &'a Limits,
    ) -> Self {
        let constraints = derive_constraints(doc, resolver, options).ok();
        LintContext {
            doc,
            options,
            limits,
            constraints,
            resolver,
            fixpoint: OnceCell::new(),
        }
    }

    /// The derived constraint set, when derivation succeeded.
    pub(crate) fn constraints(&self) -> Option<&[Constraint]> {
        self.constraints.as_deref()
    }

    /// Installs a precomputed (cached) fixpoint. A no-op when one was
    /// already computed for this context.
    pub(crate) fn install_fixpoint(&self, fixpoint: Arc<Fixpoint>) {
        let _ = self.fixpoint.set(Some(fixpoint));
    }

    /// The shared relaxation fixpoint, computed on first use when the
    /// linter did not install a cached one. `None` when constraint
    /// derivation failed (dangling endpoints and the like — reported by
    /// their own passes).
    fn fixpoint(&self) -> Option<&Fixpoint> {
        self.fixpoint
            .get_or_init(|| {
                self.constraints
                    .as_ref()
                    .map(|c| Arc::new(Fixpoint::compute(self.doc, c.clone())))
            })
            .as_deref()
    }

    fn node_span(&self, node: NodeId) -> Option<Span> {
        self.doc.sources.as_ref().and_then(|s| s.node_span(node))
    }

    fn arc_span(&self, index: usize) -> Option<Span> {
        self.doc.sources.as_ref().and_then(|s| s.arc_span(index))
    }

    fn path_str(&self, node: NodeId) -> String {
        self.doc
            .path_of(node)
            .map(|p| p.to_string())
            .unwrap_or_else(|_| node.to_string())
    }

    fn point_str(&self, point: &EventPoint) -> String {
        format!("{}({})", point.anchor, self.path_str(point.node))
    }

    /// Anchors a diagnostic on a node: its path plus, when the document was
    /// parsed from text, its source span.
    fn at_node(&self, diag: Diagnostic, node: NodeId) -> Diagnostic {
        let diag = diag.at_path(self.path_str(node));
        match self.node_span(node) {
            Some(span) => diag.with_span(span),
            None => diag,
        }
    }

    /// Anchors a diagnostic on an explicit arc: the carrier's path plus the
    /// arc's own source span.
    fn at_arc(&self, diag: Diagnostic, carrier: NodeId, index: usize) -> Diagnostic {
        let diag = diag.at_path(self.path_str(carrier));
        match self.arc_span(index) {
            Some(span) => diag.with_span(span),
            None => diag,
        }
    }

    /// One human-readable line for a constraint, naming explicit arcs by
    /// carrier and index and default arcs by their structural origin.
    fn describe_constraint(&self, constraint: &Constraint) -> Related {
        let window = match constraint.max_delay_ms {
            Some(max) => format!("[{}, {}]ms", constraint.min_delay_ms, max),
            None => format!("[{}, inf]ms", constraint.min_delay_ms),
        };
        let ends = format!(
            "{} -> {} (+{}ms, window {window})",
            self.point_str(&constraint.source),
            self.point_str(&constraint.target),
            constraint.offset_ms,
        );
        match constraint.origin {
            ConstraintOrigin::Explicit { carrier, index } => {
                let related = Related::new(format!(
                    "explicit arc #{index} carried by {}: {ends}",
                    self.path_str(carrier)
                ))
                .at_path(self.path_str(carrier));
                match self.arc_span(index) {
                    Some(span) => related.with_span(span),
                    None => related,
                }
            }
            ConstraintOrigin::SequentialOrder => {
                Related::new(format!("implicit sequential-order constraint: {ends}"))
            }
            ConstraintOrigin::ParallelFork => {
                Related::new(format!("implicit parallel-fork constraint: {ends}"))
            }
            ConstraintOrigin::ParallelJoin => {
                Related::new(format!("implicit parallel-join constraint: {ends}"))
            }
            ConstraintOrigin::LeafDuration => {
                Related::new(format!("intrinsic leaf-duration constraint: {ends}"))
            }
        }
    }
}

/// One registered analysis: a code, a short name, and the function that
/// appends its findings to the diagnostic list.
pub struct Pass {
    /// The diagnostic code this pass emits.
    pub code: Code,
    /// Short kebab-case name, for `--pass` style selection and reports.
    pub name: &'static str,
    run: fn(&LintContext<'_>, &mut Vec<Diagnostic>),
}

impl Pass {
    /// Runs the pass, appending findings to `out`.
    pub fn run(&self, ctx: &LintContext<'_>, out: &mut Vec<Diagnostic>) {
        (self.run)(ctx, out);
    }
}

/// Every registered pass, in execution (and code) order.
pub fn registry() -> &'static [Pass] {
    PASSES
}

static PASSES: &[Pass] = &[
    Pass {
        code: codes::EMPTY_DOCUMENT,
        name: "empty-document",
        run: empty_document,
    },
    Pass {
        code: codes::DUPLICATE_SIBLING_NAME,
        name: "duplicate-sibling-names",
        run: duplicate_sibling_names,
    },
    Pass {
        code: codes::ROOT_ONLY_ATTRIBUTE,
        name: "root-only-attributes",
        run: root_only_attributes,
    },
    Pass {
        code: codes::DUPLICATE_ATTRIBUTE,
        name: "duplicate-attributes",
        run: duplicate_attributes,
    },
    Pass {
        code: codes::UNKNOWN_STYLE,
        name: "unknown-styles",
        run: unknown_styles,
    },
    Pass {
        code: codes::STYLE_CYCLE,
        name: "style-cycles",
        run: style_cycles,
    },
    Pass {
        code: codes::MISSING_FILE,
        name: "missing-files",
        run: missing_files,
    },
    Pass {
        code: codes::MISSING_CHANNEL,
        name: "missing-channels",
        run: missing_channels,
    },
    Pass {
        code: codes::UNREACHABLE_NODE,
        name: "unreachable-nodes",
        run: unreachable_nodes,
    },
    Pass {
        code: codes::ARC_CYCLE,
        name: "arc-cycles",
        run: arc_cycles,
    },
    Pass {
        code: codes::INVALID_DELAY_WINDOW,
        name: "invalid-delay-windows",
        run: invalid_delay_windows,
    },
    Pass {
        code: codes::UNRESOLVED_ARC_ENDPOINT,
        name: "unresolved-arc-endpoints",
        run: unresolved_arc_endpoints,
    },
    Pass {
        code: codes::CONFLICTING_WINDOWS,
        name: "conflicting-windows",
        run: conflicting_windows,
    },
    Pass {
        code: codes::UNKNOWN_CHANNEL,
        name: "unknown-channels",
        run: unknown_channels,
    },
    Pass {
        code: codes::DANGLING_DESCRIPTOR,
        name: "dangling-descriptors",
        run: dangling_descriptors,
    },
    Pass {
        code: codes::CHANNEL_DOUBLE_BOOKING,
        name: "channel-double-booking",
        run: channel_double_booking,
    },
    Pass {
        code: codes::DEPTH_LIMIT,
        name: "depth-limit",
        run: depth_limit,
    },
    Pass {
        code: codes::NODE_LIMIT,
        name: "node-limit",
        run: node_limit,
    },
];

// ---------------------------------------------------------------------------
// L0xx — structure
// ---------------------------------------------------------------------------

fn empty_document(ctx: &LintContext<'_>, out: &mut Vec<Diagnostic>) {
    if ctx.doc.root().is_err() {
        out.push(
            Diagnostic::new(
                codes::EMPTY_DOCUMENT,
                "the document has no root node, so there is nothing to present",
            )
            .with_help("give the document a seq or par root"),
        );
    }
}

fn duplicate_sibling_names(ctx: &LintContext<'_>, out: &mut Vec<Diagnostic>) {
    let name_of = |id: NodeId| ctx.doc.node(id).ok().and_then(|n| n.name_symbol());
    for id in ctx.doc.preorder() {
        let Ok(node) = ctx.doc.node(id) else { continue };
        if !node.kind.is_composite() {
            continue;
        }
        for (i, child) in node.children.iter().enumerate() {
            let Some(name) = name_of(*child) else {
                continue;
            };
            if node.children[..i].iter().any(|o| name_of(*o) == Some(name)) {
                out.push(
                    ctx.at_node(
                        Diagnostic::new(
                            codes::DUPLICATE_SIBLING_NAME,
                            format!(
                                "the name `{name}` is used by more than one child of {}",
                                ctx.path_str(id)
                            ),
                        )
                        .with_help("sibling names must be unique so paths resolve unambiguously"),
                        *child,
                    ),
                );
            }
        }
    }
}

fn root_only_attributes(ctx: &LintContext<'_>, out: &mut Vec<Diagnostic>) {
    let Ok(root) = ctx.doc.root() else { return };
    for id in ctx.doc.preorder() {
        if id == root {
            continue;
        }
        let Ok(node) = ctx.doc.node(id) else { continue };
        for attr in node.attrs.iter() {
            if attr.name.is_root_only() {
                out.push(ctx.at_node(
                    Diagnostic::new(
                        codes::ROOT_ONLY_ATTRIBUTE,
                        format!(
                            "attribute `{}` may only appear on the root, not on {}",
                            attr.name,
                            ctx.path_str(id)
                        ),
                    ),
                    id,
                ));
            }
        }
    }
}

fn duplicate_attributes(ctx: &LintContext<'_>, out: &mut Vec<Diagnostic>) {
    for id in ctx.doc.preorder() {
        let Ok(node) = ctx.doc.node(id) else { continue };
        if let Err(e) = node.attrs.validate_unique(id) {
            let message = match e {
                CoreError::DuplicateAttribute { name, .. } => format!(
                    "attribute `{name}` occurs more than once on {}",
                    ctx.path_str(id)
                ),
                other => other.to_string(),
            };
            out.push(ctx.at_node(Diagnostic::new(codes::DUPLICATE_ATTRIBUTE, message), id));
        }
    }
}

fn unknown_styles(ctx: &LintContext<'_>, out: &mut Vec<Diagnostic>) {
    for def in ctx.doc.styles.iter() {
        for parent in &def.parents {
            if !ctx.doc.styles.contains(parent) {
                out.push(Diagnostic::new(
                    codes::UNKNOWN_STYLE,
                    format!(
                        "style `{}` builds on `{parent}`, which is not defined",
                        def.name
                    ),
                ));
            }
        }
    }
    for id in ctx.doc.preorder() {
        let Ok(node) = ctx.doc.node(id) else { continue };
        let Some(value) = node.attrs.get(&AttrName::Style) else {
            continue;
        };
        let Ok(names) = style_names(value) else {
            continue;
        };
        for name in names {
            if !ctx.doc.styles.contains(name.as_str()) {
                out.push(ctx.at_node(
                    Diagnostic::new(
                        codes::UNKNOWN_STYLE,
                        format!(
                            "{} references style `{name}`, which is not defined",
                            ctx.path_str(id)
                        ),
                    ),
                    id,
                ));
            }
        }
    }
}

fn style_cycles(ctx: &LintContext<'_>, out: &mut Vec<Diagnostic>) {
    let mut reported = BTreeSet::new();
    for def in ctx.doc.styles.iter() {
        if let Err(CoreError::StyleCycle { style }) = ctx.doc.styles.nesting_depth(&def.name) {
            if reported.insert(style.clone()) {
                out.push(
                    Diagnostic::new(
                        codes::STYLE_CYCLE,
                        format!("style `{style}` is part of a definition cycle"),
                    )
                    .with_help("style expansion would recurse forever; break the parent loop"),
                );
            }
        }
    }
}

fn missing_files(ctx: &LintContext<'_>, out: &mut Vec<Diagnostic>) {
    for id in ctx.doc.preorder() {
        let Ok(node) = ctx.doc.node(id) else { continue };
        if node.kind != NodeKind::Ext {
            continue;
        }
        if matches!(ctx.doc.file_of(id), Ok(None)) {
            out.push(ctx.at_node(
                Diagnostic::new(
                    codes::MISSING_FILE,
                    format!(
                        "external node {} has no file attribute, own or inherited",
                        ctx.path_str(id)
                    ),
                ),
                id,
            ));
        }
    }
}

fn missing_channels(ctx: &LintContext<'_>, out: &mut Vec<Diagnostic>) {
    for id in ctx.doc.preorder() {
        let Ok(node) = ctx.doc.node(id) else { continue };
        if !node.kind.is_leaf() {
            continue;
        }
        if matches!(ctx.doc.channel_of(id), Ok(None)) {
            out.push(ctx.at_node(
                Diagnostic::new(
                    codes::MISSING_CHANNEL,
                    format!(
                        "leaf {} has no channel, so no output device would play it",
                        ctx.path_str(id)
                    ),
                ),
                id,
            ));
        }
    }
}

fn unreachable_nodes(ctx: &LintContext<'_>, out: &mut Vec<Diagnostic>) {
    if ctx.doc.root().is_err() {
        return;
    }
    let reachable: HashSet<NodeId> = ctx.doc.preorder().into_iter().collect();
    for index in 0..ctx.doc.node_count() {
        let id = NodeId::from_index(index as u32);
        if reachable.contains(&id) {
            continue;
        }
        let kind = ctx.doc.node(id).map(|n| n.kind.keyword()).unwrap_or("node");
        out.push(
            ctx.at_node(
                Diagnostic::new(
                    codes::UNREACHABLE_NODE,
                    format!("{kind} node {id} is not reachable from the root"),
                )
                .with_help("the node was detached (or orphaned by set_root) and will never play"),
                id,
            ),
        );
    }
}

// ---------------------------------------------------------------------------
// L1xx — timing and synchronization
// ---------------------------------------------------------------------------

/// Reports the positive cycle recovered by the shared [`Fixpoint`]
/// relaxation (computed once per lint run — or reused from the linter's
/// per-revision cache — instead of per check).
fn arc_cycles(ctx: &LintContext<'_>, out: &mut Vec<Diagnostic>) {
    if ctx.doc.root().is_err() {
        return;
    }
    let Some(fixpoint) = ctx.fixpoint() else {
        return;
    };
    let Some(trace) = &fixpoint.cycle else {
        return; // reached the fixpoint: no positive cycle
    };
    let constraints = &fixpoint.constraints;
    let mut diag = match &trace.start {
        Some(start) if !trace.route.is_empty() => {
            let mut route: Vec<String> = trace
                .route
                .iter()
                .map(|&i| ctx.point_str(&constraints[i].source))
                .collect();
            route.push(ctx.point_str(start));
            let mut diag = Diagnostic::new(
                codes::ARC_CYCLE,
                format!(
                    "synchronization arcs force these events ever later: {}",
                    route.join(" -> ")
                ),
            );
            let mut anchored = false;
            for &i in &trace.route {
                let constraint = &constraints[i];
                if let ConstraintOrigin::Explicit { carrier, index } = constraint.origin {
                    if !anchored {
                        diag = ctx.at_arc(diag, carrier, index);
                        anchored = true;
                    }
                }
                diag = diag.with_related(ctx.describe_constraint(constraint));
            }
            diag
        }
        _ => Diagnostic::new(
            codes::ARC_CYCLE,
            format!(
                "the derived synchronization constraints contain a positive cycle \
                 over {} event points",
                trace.points
            ),
        ),
    };
    diag = diag.with_help(
        "a loop of positive offsets and delays is unsatisfiable (§5.3.3, conflict \
         class 1); remove or relax one of the listed arcs",
    );
    out.push(diag);
}

fn invalid_delay_windows(ctx: &LintContext<'_>, out: &mut Vec<Diagnostic>) {
    for (index, (carrier, arc)) in ctx.doc.arcs().iter().enumerate() {
        if let Err(e) = arc.validate() {
            out.push(ctx.at_arc(
                Diagnostic::new(
                    codes::INVALID_DELAY_WINDOW,
                    format!("arc #{index} carried by {}: {e}", ctx.path_str(*carrier)),
                ),
                *carrier,
                index,
            ));
        }
    }
}

fn unresolved_arc_endpoints(ctx: &LintContext<'_>, out: &mut Vec<Diagnostic>) {
    for (index, (carrier, arc)) in ctx.doc.arcs().iter().enumerate() {
        for (role, path) in [("source", &arc.source), ("destination", &arc.destination)] {
            if ctx.doc.resolve_path(*carrier, path).is_err() {
                out.push(
                    ctx.at_arc(
                        Diagnostic::new(
                            codes::UNRESOLVED_ARC_ENDPOINT,
                            format!(
                                "arc #{index} carried by {}: {role} `{path}` does not \
                             resolve to a node",
                                ctx.path_str(*carrier)
                            ),
                        )
                        .with_help("arc endpoints are resolved relative to the carrier node"),
                        *carrier,
                        index,
                    ),
                );
            }
        }
    }
}

fn conflicting_windows(ctx: &LintContext<'_>, out: &mut Vec<Diagnostic>) {
    let Some(constraints) = &ctx.constraints else {
        return;
    };
    let mut groups: HashMap<(EventPoint, EventPoint), Vec<&Constraint>> = HashMap::new();
    for constraint in constraints {
        groups
            .entry((constraint.source, constraint.target))
            .or_default()
            .push(constraint);
    }
    let mut keys: Vec<&(EventPoint, EventPoint)> = groups.keys().collect();
    keys.sort_by_key(|(s, t)| (s.node, s.anchor.as_str(), t.node, t.anchor.as_str()));
    for key in keys {
        let group = &groups[key];
        if group.len() < 2 {
            continue;
        }
        // All windows in a group are relative to the same reference point, so
        // their intersection is directly comparable: the largest lower bound
        // against the smallest bounded upper bound.
        let Some(lowest) = group.iter().max_by_key(|c| c.offset_ms + c.min_delay_ms) else {
            continue;
        };
        let highest = group
            .iter()
            .filter_map(|c| c.max_delay_ms.map(|max| (c, c.offset_ms + max)))
            .min_by_key(|(_, upper)| *upper);
        let Some((tightest, upper)) = highest else {
            continue;
        };
        let lower = lowest.offset_ms + lowest.min_delay_ms;
        if lower > upper {
            let (source, target) = key;
            out.push(
                Diagnostic::new(
                    codes::CONFLICTING_WINDOWS,
                    format!(
                        "no delay satisfies every window between {} and {}: one \
                         constraint requires at least {lower}ms, another at most {upper}ms",
                        ctx.point_str(source),
                        ctx.point_str(target),
                    ),
                )
                .with_related(ctx.describe_constraint(lowest))
                .with_related(ctx.describe_constraint(tightest))
                .with_help("the windows have an empty intersection; widen one of them"),
            );
        }
    }
}

// ---------------------------------------------------------------------------
// L2xx — channels and resources
// ---------------------------------------------------------------------------

fn unknown_channels(ctx: &LintContext<'_>, out: &mut Vec<Diagnostic>) {
    for id in ctx.doc.preorder() {
        let Ok(node) = ctx.doc.node(id) else { continue };
        let Some(channel) = node
            .attrs
            .get(&AttrName::Channel)
            .and_then(AttrValue::as_symbol)
        else {
            continue;
        };
        if !ctx.doc.channels.contains_symbol(channel) {
            out.push(
                ctx.at_node(
                    Diagnostic::new(
                        codes::UNKNOWN_CHANNEL,
                        format!(
                            "{} references channel `{channel}`, which is not declared",
                            ctx.path_str(id)
                        ),
                    )
                    .with_help("declare the channel in the document's channel dictionary"),
                    id,
                ),
            );
        }
    }
}

fn dangling_descriptors(ctx: &LintContext<'_>, out: &mut Vec<Diagnostic>) {
    for id in ctx.doc.preorder() {
        let Ok(node) = ctx.doc.node(id) else { continue };
        if node.kind != NodeKind::Ext {
            continue;
        }
        let Ok(Some(key)) = ctx.doc.file_of(id) else {
            continue;
        };
        if ctx.resolver.resolve_symbol(key).is_none() {
            out.push(
                ctx.at_node(
                    Diagnostic::new(
                        codes::DANGLING_DESCRIPTOR,
                        format!(
                            "external node {} names data `{key}`, which has no descriptor \
                         in the catalog",
                            ctx.path_str(id)
                        ),
                    )
                    .with_help(
                        "without a descriptor the scheduler knows neither duration nor \
                     resource needs and falls back to defaults",
                    ),
                    id,
                ),
            );
        }
    }
}

fn channel_double_booking(ctx: &LintContext<'_>, out: &mut Vec<Diagnostic>) {
    // A diverging graph is L101's report; without a fixpoint there are no
    // times to compare. The times come from the shared (possibly cached)
    // relaxation — this pass no longer builds and relaxes its own graph.
    let Some(times) = ctx.fixpoint().and_then(Fixpoint::times) else {
        return;
    };
    let Ok(by_channel) = ctx.doc.leaves_by_channel() else {
        return;
    };
    for (channel, leaves) in by_channel {
        if channel == unassigned_channel() {
            continue; // channel-less leaves are L008's report
        }
        let mut intervals: Vec<(i64, i64, NodeId)> = leaves
            .iter()
            .filter_map(|leaf| {
                let begin = times.get(&EventPoint::begin(*leaf))?.as_millis();
                let end = times.get(&EventPoint::end(*leaf))?.as_millis();
                Some((begin, end, *leaf))
            })
            .collect();
        intervals.sort_unstable();
        for pair in intervals.windows(2) {
            let (begin_a, end_a, a) = pair[0];
            let (begin_b, _, b) = pair[1];
            if begin_b < end_a {
                let related = Related::new(format!(
                    "{} also plays on `{channel}` from {begin_a}ms to {end_a}ms",
                    ctx.path_str(a)
                ));
                let related = match ctx.node_span(a) {
                    Some(span) => related.with_span(span),
                    None => related.at_path(ctx.path_str(a)),
                };
                out.push(
                    ctx.at_node(
                        Diagnostic::new(
                            codes::CHANNEL_DOUBLE_BOOKING,
                            format!(
                                "channel `{channel}` is double-booked: {} starts at \
                                 {begin_b}ms while {} still plays (until {end_a}ms)",
                                ctx.path_str(b),
                                ctx.path_str(a),
                            ),
                        )
                        .with_related(related)
                        .with_help(
                            "one channel presents one thing at a time; resequence the \
                             leaves or move one to another channel",
                        ),
                        b,
                    ),
                );
            }
        }
    }
}

fn depth_limit(ctx: &LintContext<'_>, out: &mut Vec<Diagnostic>) {
    let depth = ctx.doc.depth();
    if depth > ctx.limits.max_depth {
        out.push(
            Diagnostic::new(
                codes::DEPTH_LIMIT,
                format!(
                    "the tree is {depth} levels deep, above the configured limit of {}",
                    ctx.limits.max_depth
                ),
            )
            .with_help("deep nesting usually indicates a generator bug; raise Limits::max_depth if intended"),
        );
    }
}

fn node_limit(ctx: &LintContext<'_>, out: &mut Vec<Diagnostic>) {
    let count = ctx.doc.node_count();
    if count > ctx.limits.max_nodes {
        out.push(
            Diagnostic::new(
                codes::NODE_LIMIT,
                format!(
                    "the document holds {count} nodes, above the configured limit of {}",
                    ctx.limits.max_nodes
                ),
            )
            .with_help("raise Limits::max_nodes if a document this large is intended"),
        );
    }
}
